//! The `hoyan` command-line tool: the operator-facing frontend (§4's
//! "user-friendly interfaces for our operators").
//!
//! ```text
//! hoyan gen <dir> [--size tiny|small|medium|reference|wan-large|wan-paper] [--seed N]
//! hoyan verify <dir> --prefix 10.0.0.0/24 --device CR1x0 [--k 2]
//! hoyan packet <dir> --prefix 10.0.0.0/24 --from MAN1x0 [--k 2] [--proto tcp|udp]
//! hoyan scope  <dir> --prefix 10.0.0.0/24
//! hoyan racing <dir> --prefix 10.0.0.0/24
//! hoyan routers <dir> --prefix 10.0.0.0/24 --device CR1x0
//! hoyan equiv  <dir> --a CR0x0 --b CR0x1
//! hoyan sweep  <dir> [--k 1] [--baseline <dirA>] [--fail-fast]
//!              [--family-node-budget N] [--family-op-budget N]
//!              [--family-deadline-ms MS]
//!              [--modular] [--abstraction off|prove-only|full]
//!              [--schedule roundrobin|deps] [--stream]
//! hoyan diff   <dirA> <dirB> [--k 1]
//! hoyan audit  <before-dir> <after-dir> [--k 1] [--prefix P]...
//! hoyan tune   <dir>
//! hoyan serve  <dir> [--addr 127.0.0.1:7411] [--k 1] [--workers N] [--queue N]
//!              [--family-node-budget N] [--family-op-budget N]
//!              [--family-deadline-ms MS]
//! ```
//!
//! `diff` prints the snapshot delta between two directories and classifies
//! every prefix family as dirty (must re-simulate) or clean (cached reports
//! still valid). `sweep --baseline` runs the incremental pipeline: sweep
//! the baseline once, then re-verify only the dirty families — output is
//! identical to a from-scratch sweep of the target directory.
//!
//! `sweep` quarantines families that fail (a simulation error, a budget
//! breach, a panic): the rest of the sweep completes and quarantined
//! families are listed after the report. `--fail-fast` restores the old
//! abort-on-first-error behavior; the surfaced error is the lowest-index
//! failing family regardless of `--threads`. The per-family budgets are
//! operation-counted and deterministic; `--family-deadline-ms` is the one
//! wall-clock (hence non-deterministic) guard and is opt-in only.
//!
//! `sweep --schedule deps` groups prefix families whose origin devices
//! overlap into batches run back-to-back on one warm BDD arena (shared ITE
//! cache and unique table), with whole-batch work stealing between workers
//! — reports are byte-identical to the default `roundrobin` schedule at
//! any thread count; only the `bdd.*` bill shrinks. `sweep --stream`
//! prints per-family outcomes as workers finish them and keeps only
//! running aggregates in memory (peak report memory O(threads), not
//! O(families)); it does not combine with `--baseline`.
//!
//! `serve` starts the resident verification daemon: it compiles the
//! directory once, runs the warm-up sweep, then answers `reach` / `equiv` /
//! `whatif` / `stats` / `shutdown` requests over a line-delimited JSON
//! protocol (see `hoyan::core::serve` and the README's "Resident daemon"
//! section). The `--family-*-budget` flags become the per-request admission
//! caps; `--workers` and `--queue` bound concurrency.
//!
//! `sweep --modular` runs the three-stage modular pipeline: partition the
//! topology into role-derived regions, try the abstract (route-
//! nondeterminism) first pass per prefix family, and fall through to the
//! exact conditioned simulation where the abstraction is inconclusive.
//! `--abstraction` picks what the first pass may decide: `prove-only` (the
//! default) keeps reports byte-identical to a monolithic sweep and uses the
//! pass for provenance/counters only; `full` lets proved families skip the
//! exact stage; `off` disables the pass.
//!
//! Global flags (any subcommand): `--stats` prints a span-tree/metrics
//! table, `--stats-json PATH` writes the metrics registry as deterministic
//! JSON, `--attribution` prints the per-family cost table recorded by the
//! sweep flight recorder, `--trace PATH` writes a chrome://tracing /
//! Perfetto-loadable timeline of the sweep, `--timing` opts into wall-clock
//! timestamps (non-deterministic outputs), and `--quiet` suppresses
//! degradation warnings on stderr.
//!
//! The `HOYAN_FAULTS` environment variable arms the seeded fault-injection
//! plan (`site@index[,index...]=error|panic|overbudget` or
//! `site@~permille/seed=...`; `;`-separated rules) — see `hoyan::rt::fault`.
//!
//! A configuration directory holds one `<hostname>.cfg` per device in the
//! dialect of `hoyan::config` (see `hoyan gen` for samples).

use std::path::Path;
use std::process::ExitCode;

use hoyan::config::{parse_config, ConfigSnapshot, DeviceConfig};
use hoyan::core::{
    AbstractionMode, FamilyBudget, FamilyOutcome, StreamedFamily, SweepOptions, SweepReport,
    SweepSchedule, Verifier,
};
use hoyan::device::{Packet, VsbProfile};
use hoyan::nettypes::Ipv4Prefix;
use hoyan::topogen::WanSpec;
use hoyan::tuner::{ModelRegistry, Validator};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags, valid on every subcommand; stripped before dispatch so
    // positional arguments keep their places.
    let stats = take_flag(&mut args, "--stats");
    let stats_json = take_value_flag(&mut args, "--stats-json");
    let trace = take_value_flag(&mut args, "--trace");
    let attribution = take_flag(&mut args, "--attribution");
    let timing = take_flag(&mut args, "--timing");
    hoyan::obs::set_quiet(take_flag(&mut args, "--quiet"));
    // Seeded fault injection, for drills and tests: disarmed (the default)
    // the hooks are a single relaxed atomic load.
    if let Ok(spec) = std::env::var("HOYAN_FAULTS") {
        if !spec.is_empty() {
            match hoyan::rt::fault::FaultPlan::parse(&spec) {
                Ok(plan) => hoyan::rt::fault::install(plan),
                Err(e) => {
                    eprintln!("error: bad HOYAN_FAULTS: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if stats || stats_json.is_some() || trace.is_some() || attribution {
        hoyan::obs::set_enabled(true);
        // Pin the export schema: all standard metrics present (zeroed) even
        // when this subcommand never exercises their subsystem.
        hoyan::obs::register_default_metrics();
        // Arm the flight recorder: any consumer of events or per-family
        // costs turns recording on for all of them.
        hoyan::obs::set_events_enabled(true);
    }
    // `--timing` swaps the recorder's deterministic logical clock for wall
    // time: richer traces and wall_ns/wall_ms columns, at the price of
    // run-to-run (and thread-count) variation in the outputs.
    hoyan::obs::set_timing(timing);
    let outcome = run(&args);
    // Sinks run even when the command failed: the stats explain the failure.
    if stats {
        print!("{}", hoyan::obs::render_table());
    }
    if attribution {
        print!("{}", hoyan::obs::render_attribution(20));
    }
    if let Some(path) = stats_json {
        if let Err(e) = std::fs::write(&path, hoyan::obs::export_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = trace {
        if let Err(e) = std::fs::write(&path, hoyan::obs::export_chrome_trace()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        // Usage errors (bad flag values, missing operands) exit with 2,
        // the conventional "wrong invocation" code; runtime failures
        // (bad configs, failed verifications) keep exit code 1.
        Err(CliError::Usage(e)) => {
            eprintln!("usage error: {e}");
            ExitCode::from(2)
        }
        Err(CliError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failure, split by exit code: `Usage` exits 2 (the invocation is
/// wrong), `Run` exits 1 (the invocation was fine; the work failed).
enum CliError {
    Usage(String),
    Run(String),
}

impl From<String> for CliError {
    fn from(e: String) -> CliError {
        CliError::Run(e)
    }
}

impl From<&str> for CliError {
    fn from(e: &str) -> CliError {
        CliError::Run(e.to_string())
    }
}

fn usage(e: impl Into<String>) -> CliError {
    CliError::Usage(e.into())
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

fn take_value_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        None
    }
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    // Both spellings are accepted: `--flag value` and `--flag=value`. A
    // flag that is present but valueless (`sweep d --threads`, or
    // `--threads --fail-fast`) is a usage error, not a silent
    // fall-through to the default.
    if let Some(v) = args
        .iter()
        .find_map(|a| a.strip_prefix(name)?.strip_prefix('=').map(String::from))
    {
        return Ok(Some(v));
    }
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(usage(format!("{name} needs a value"))),
        },
    }
}

fn flags(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn load_dir(dir: &str) -> Result<Vec<DeviceConfig>, String> {
    let mut configs = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "cfg").unwrap_or(false))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .cfg files in {dir}"));
    }
    // A bulk snapshot typically has more than one problem; aborting on the
    // first bad file hides the rest, so collect everything and report once.
    let mut errors = Vec::new();
    for p in paths {
        match std::fs::read_to_string(&p) {
            Err(e) => errors.push(format!("{}: {e}", p.display())),
            Ok(text) => match parse_config(&text) {
                Err(e) => errors.push(format!("{}: {e}", p.display())),
                Ok(cfg) => configs.push(cfg),
            },
        }
    }
    if !errors.is_empty() {
        return Err(format!(
            "{} bad config file(s) in {dir}:\n{}",
            errors.len(),
            errors.join("\n")
        ));
    }
    Ok(configs)
}

fn verifier_for(dir: &str, k: u32) -> Result<Verifier, String> {
    verifier_for_ordered(dir, k, hoyan::logic::BddOrdering::Registration)
}

fn verifier_for_ordered(
    dir: &str,
    k: u32,
    ordering: hoyan::logic::BddOrdering,
) -> Result<Verifier, String> {
    let configs = load_dir(dir)?;
    Verifier::new_ordered(configs, VsbProfile::ground_truth, Some(k.max(3)), ordering)
        .map_err(|e| format!("model construction failed: {e}"))
}

fn get_bdd_order(args: &[String]) -> Result<hoyan::logic::BddOrdering, CliError> {
    match flag(args, "--bdd-order")? {
        None => Ok(hoyan::logic::BddOrdering::Registration),
        Some(v) => hoyan::logic::BddOrdering::parse(&v)
            .ok_or_else(|| usage(format!("bad --bdd-order `{v}` (want registration, dfs or bfs)"))),
    }
}

fn parse_prefix(s: &str) -> Result<Ipv4Prefix, CliError> {
    s.parse().map_err(|_| usage(format!("bad prefix `{s}`")))
}

fn get_k(args: &[String]) -> Result<u32, CliError> {
    match flag(args, "--k")? {
        None => Ok(1),
        Some(v) => v.parse().map_err(|_| usage(format!("bad --k `{v}`"))),
    }
}

fn get_threads(args: &[String]) -> Result<usize, CliError> {
    match flag(args, "--threads")? {
        None => Ok(std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)),
        Some(t) => t
            .parse()
            .map_err(|_| usage(format!("bad --threads `{t}`"))),
    }
}

/// Parses one optional numeric flag; an unparsable value is a usage error
/// (exit 2), never a silent fall-back to the default.
fn num_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match flag(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| usage(format!("bad {name} `{v}`"))),
    }
}

fn get_sweep_options(args: &[String]) -> Result<SweepOptions, CliError> {
    let num = |name: &str| num_flag(args, name);
    let abstraction = match flag(args, "--abstraction")?.as_deref() {
        None | Some("prove-only") => AbstractionMode::ProveOnly,
        Some("off") => AbstractionMode::Off,
        Some("full") => AbstractionMode::Full,
        Some(other) => {
            return Err(usage(format!(
                "unknown --abstraction `{other}` (off|prove-only|full)"
            )))
        }
    };
    let schedule = match flag(args, "--schedule")?.as_deref() {
        None | Some("roundrobin") => SweepSchedule::RoundRobin,
        Some("deps") => SweepSchedule::Deps,
        Some(other) => {
            return Err(usage(format!(
                "unknown --schedule `{other}` (roundrobin|deps)"
            )))
        }
    };
    Ok(SweepOptions {
        fail_fast: has_flag(args, "--fail-fast"),
        budget: FamilyBudget {
            max_live_nodes: num("--family-node-budget")?.map(|v| v as usize),
            max_ite_ops: num("--family-op-budget")?,
            deadline_ms: num("--family-deadline-ms")?,
        },
        modular: has_flag(args, "--modular"),
        abstraction,
        schedule,
    })
}

fn print_delta(delta: &hoyan::config::SnapshotDelta, snap_b: &ConfigSnapshot) {
    println!(
        "delta: {} device(s) changed, {} link(s) added, {} link(s) removed{}",
        delta.device_count(),
        delta.links_added.len(),
        delta.links_removed.len(),
        if delta.igp_affecting {
            " [IGP-affecting]"
        } else {
            ""
        }
    );
    // Added/removed devices are surfaced explicitly. A device absent from
    // the target snapshot must never collapse to `hash 0` — that made a
    // rename look like a modification of a hash-0 device.
    for d in &delta.added {
        match snap_b.device_hash(&d.hostname) {
            Some(h) => println!("  + {} (added, hash {h:016x})", d.hostname),
            None => println!("  + {} (added, missing from target snapshot)", d.hostname),
        }
    }
    for d in &delta.removed {
        println!("  - {} (removed)", d.hostname);
    }
    for m in &delta.modified {
        match snap_b.device_hash(&m.hostname) {
            Some(h) => println!("  ~ {} [{}] (hash {h:016x})", m.hostname, m.kinds()),
            None => println!(
                "  ~ {} [{}] (missing from target snapshot)",
                m.hostname,
                m.kinds()
            ),
        }
    }
    for (a, b) in &delta.links_added {
        println!("  + link {a}-{b}");
    }
    for (a, b) in &delta.links_removed {
        println!("  - link {a}-{b}");
    }
}

fn fam_label(fam: &[Ipv4Prefix]) -> String {
    match fam.len() {
        0 => "<empty>".to_string(),
        1 => fam[0].to_string(),
        n => format!("{} (+{} more)", fam[0], n - 1),
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    match cmd {
        "gen" => {
            let dir = args.get(1).ok_or_else(|| usage("gen needs a target directory"))?;
            let seed: u64 = flag(args, "--seed")?
                .map(|s| s.parse().map_err(|_| usage(format!("bad --seed `{s}`"))))
                .transpose()?
                .unwrap_or(7);
            let spec = match flag(args, "--size")?.as_deref() {
                None | Some("small") => WanSpec::small(seed),
                Some("tiny") => WanSpec::tiny(seed),
                Some("medium") => WanSpec::medium(seed),
                Some("reference") => WanSpec::reference(seed),
                Some("wan-large") => WanSpec::wan_large(seed),
                Some("wan-paper") => WanSpec::wan_paper(seed),
                Some(other) => return Err(usage(format!("unknown --size `{other}`"))),
            };
            let wan = spec.build();
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            for (cfg, text) in wan.configs.iter().zip(&wan.texts) {
                let path = Path::new(dir).join(format!("{}.cfg", cfg.hostname));
                std::fs::write(&path, text).map_err(|e| e.to_string())?;
            }
            println!(
                "wrote {} device configs to {dir} ({} customer prefixes, e.g. {})",
                wan.configs.len(),
                wan.customer_prefixes.len(),
                wan.customer_prefixes[0]
            );
            Ok(())
        }
        "verify" => {
            let dir = args.get(1).ok_or_else(|| usage("verify needs a config directory"))?;
            let prefix = parse_prefix(&flag(args, "--prefix")?.ok_or_else(|| usage("--prefix required"))?)?;
            let device = flag(args, "--device")?.ok_or_else(|| usage("--device required"))?;
            let k = get_k(args)?;
            let v = verifier_for(dir, k)?;
            let r = v
                .route_reachability(prefix, &device, k)
                .map_err(|e| e.to_string())?;
            println!("route {prefix} -> {device}:");
            println!("  reachable now:          {}", r.reachable_now);
            println!("  resilient to {k} failures: {}", r.resilient);
            match r.witness {
                Some(w) => println!("  minimal breaking cut:   {w:?}"),
                None => println!("  minimal breaking cut:   none within budget"),
            }
            Ok(())
        }
        "packet" => {
            let dir = args.get(1).ok_or_else(|| usage("packet needs a config directory"))?;
            let prefix = parse_prefix(&flag(args, "--prefix")?.ok_or_else(|| usage("--prefix required"))?)?;
            let from = flag(args, "--from")?.ok_or_else(|| usage("--from required"))?;
            let k = get_k(args)?;
            let proto = match flag(args, "--proto")?.as_deref() {
                None | Some("tcp") => hoyan::config::AclProto::Tcp,
                Some("udp") => hoyan::config::AclProto::Udp,
                Some("ip") => hoyan::config::AclProto::Ip,
                Some(other) => return Err(usage(format!("unknown --proto `{other}`"))),
            };
            let v = verifier_for(dir, k)?;
            let packet = Packet {
                src: "192.0.2.1".parse().expect("literal address"),
                dst: prefix.network(),
                proto,
            };
            let r = v
                .packet_reachability(&from, prefix, packet, k)
                .map_err(|e| e.to_string())?;
            println!("packet {from} -> {prefix}:");
            println!("  delivered now:          {}", r.reachable_now);
            println!("  resilient to {k} failures: {}", r.resilient);
            if let Some(w) = r.witness {
                println!("  minimal breaking cut:   {w:?}");
            }
            Ok(())
        }
        "scope" => {
            let dir = args.get(1).ok_or_else(|| usage("scope needs a config directory"))?;
            let prefix = parse_prefix(&flag(args, "--prefix")?.ok_or_else(|| usage("--prefix required"))?)?;
            let v = verifier_for(dir, 0)?;
            let scope = v.propagation_scope(prefix).map_err(|e| e.to_string())?;
            println!("{} devices hold a route for {prefix}:", scope.len());
            for n in scope {
                println!("  {}", v.net.topology.name(n));
            }
            Ok(())
        }
        "routers" => {
            let dir = args.get(1).ok_or_else(|| usage("routers needs a config directory"))?;
            let prefix = parse_prefix(&flag(args, "--prefix")?.ok_or_else(|| usage("--prefix required"))?)?;
            let device = flag(args, "--device")?.ok_or_else(|| usage("--device required"))?;
            let v = verifier_for(dir, 4)?;
            let fatal = v
                .router_failure_tolerance(prefix, &device)
                .map_err(|e| e.to_string())?;
            if fatal.is_empty() {
                println!("{prefix} at {device} survives any single router failure");
            } else {
                println!(
                    "{prefix} at {device}: single points of failure: {fatal:?}"
                );
            }
            Ok(())
        }
        "racing" => {
            let dir = args.get(1).ok_or_else(|| usage("racing needs a config directory"))?;
            let prefix = parse_prefix(&flag(args, "--prefix")?.ok_or_else(|| usage("--prefix required"))?)?;
            let v = verifier_for(dir, 0)?;
            let r = v.racing(prefix);
            println!(
                "racing analysis for {prefix}: candidates={} solutions={} ambiguous={}",
                r.candidates, r.solutions, r.ambiguous
            );
            if r.ambiguous {
                println!("  convergence depends on route-update arrival order — fix before deploying");
            }
            Ok(())
        }
        "equiv" => {
            let dir = args.get(1).ok_or_else(|| usage("equiv needs a config directory"))?;
            let a = flag(args, "--a")?.ok_or_else(|| usage("--a required"))?;
            let b = flag(args, "--b")?.ok_or_else(|| usage("--b required"))?;
            let v = verifier_for(dir, 1)?;
            let r = v.role_equivalence(&a, &b).map_err(|e| e.to_string())?;
            println!(
                "{a} ~ {b}: {}{}",
                if r.equivalent { "equivalent" } else { "NOT equivalent" },
                r.first_difference
                    .map(|p| format!(" (first differs on {p})"))
                    .unwrap_or_default()
            );
            Ok(())
        }
        "sweep" => {
            let dir = args.get(1).ok_or_else(|| usage("sweep needs a config directory"))?;
            let k = get_k(args)?;
            let threads = get_threads(args)?;
            let opts = get_sweep_options(args)?;
            let ordering = get_bdd_order(args)?;
            let t0 = std::time::Instant::now();
            if has_flag(args, "--stream") {
                // Streaming path: per-family outcomes print as workers
                // finish them (arrival order) and only running aggregates
                // stay in memory — peak report memory is O(threads), not
                // O(families), so paper-scale sweeps don't accumulate.
                if flag(args, "--baseline")?.is_some() {
                    return Err(usage("--stream does not combine with --baseline"));
                }
                let v = verifier_for_ordered(dir, k, ordering)?;
                let mut fragile: Vec<(Ipv4Prefix, Vec<String>)> = Vec::new();
                let mut sink = |item: StreamedFamily| match item {
                    StreamedFamily::Done { reports, cost, .. } => {
                        let Some(head) = reports.first() else { return };
                        println!(
                            "  family {} ({} prefix(es)): {} ops",
                            head.prefix,
                            reports.len(),
                            cost.ops
                        );
                        for r in &reports {
                            if !r.fragile.is_empty() {
                                let names = r
                                    .fragile
                                    .iter()
                                    .map(|n| v.net.topology.name(*n).to_string())
                                    .collect();
                                fragile.push((r.prefix, names));
                            }
                        }
                    }
                    StreamedFamily::Quarantined(q) => {
                        println!("  QUARANTINED {}: {}", fam_label(&q.prefixes), q.outcome);
                    }
                };
                let summary = v
                    .verify_all_routes_streaming(k, threads, &opts, &mut sink)
                    .map_err(|e| e.to_string())?;
                println!(
                    "swept {} prefixes ({} family(ies), {} quarantined) at k={k} in {:?} [streaming]",
                    summary.prefixes,
                    summary.families,
                    summary.quarantined,
                    t0.elapsed()
                );
                fragile.sort();
                for (p, names) in &fragile {
                    println!("  {p}: not {k}-failure resilient at {names:?}");
                }
                return Ok(());
            }
            let (v, swept) = match flag(args, "--baseline")? {
                None => {
                    let v = verifier_for_ordered(dir, k, ordering)?;
                    let swept = v
                        .verify_all_routes_opts(k, threads, &opts)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "swept {} prefixes at k={k} in {:?}",
                        swept.reports.len(),
                        t0.elapsed()
                    );
                    (v, swept)
                }
                Some(base_dir) => {
                    // Incremental path: sweep the baseline once (building the
                    // dependency-indexed cache), diff, then re-simulate only
                    // the dirty families of the target directory.
                    let base_snap = ConfigSnapshot::new(load_dir(&base_dir)?);
                    let new_snap = ConfigSnapshot::new(load_dir(dir)?);
                    let delta = base_snap.diff(&new_snap);
                    let v_base = Verifier::new_ordered(
                        base_snap.into_devices(),
                        VsbProfile::ground_truth,
                        Some(k.max(3)),
                        ordering,
                    )
                    .map_err(|e| format!("baseline model construction failed: {e}"))?;
                    let (_, cache) = v_base
                        .verify_all_routes_cached(k, threads)
                        .map_err(|e| e.to_string())?;
                    let v = Verifier::new_ordered(
                        new_snap.into_devices(),
                        VsbProfile::ground_truth,
                        Some(k.max(3)),
                        ordering,
                    )
                    .map_err(|e| format!("model construction failed: {e}"))?;
                    let outcome = v
                        .reverify_opts(&delta, &cache, k, threads, &opts)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "incremental sweep of {} prefixes at k={k} in {:?}: {} family(ies) recomputed, {} reused",
                        outcome.reports.len(),
                        t0.elapsed(),
                        outcome.recomputed,
                        outcome.reused
                    );
                    (
                        v,
                        SweepReport {
                            reports: outcome.reports,
                            quarantined: outcome.quarantined,
                            provenance: Vec::new(),
                        },
                    )
                }
            };
            if !swept.provenance.is_empty() {
                let proved = swept
                    .provenance
                    .iter()
                    .filter(|p| matches!(p.outcome, FamilyOutcome::ProvedAbstract))
                    .count();
                println!(
                    "modular pipeline: {proved} family(ies) proved by abstract pass, {} refined exactly",
                    swept.provenance.len() - proved
                );
            }
            if !swept.quarantined.is_empty() {
                println!(
                    "{} family(ies) quarantined (reports above exclude them):",
                    swept.quarantined.len()
                );
                for q in &swept.quarantined {
                    println!("  QUARANTINED {}: {}", fam_label(&q.prefixes), q.outcome);
                }
            }
            for r in swept.reports.iter().filter(|r| !r.fragile.is_empty()) {
                let names: Vec<&str> = r
                    .fragile
                    .iter()
                    .map(|n| v.net.topology.name(*n))
                    .collect();
                println!("  {}: not {k}-failure resilient at {:?}", r.prefix, names);
            }
            Ok(())
        }
        "diff" => {
            let dir_a = args.get(1).ok_or_else(|| usage("diff needs <dirA> <dirB>"))?;
            let dir_b = args.get(2).ok_or_else(|| usage("diff needs <dirA> <dirB>"))?;
            let k = get_k(args)?;
            let threads = get_threads(args)?;
            let snap_a = ConfigSnapshot::new(load_dir(dir_a)?);
            let snap_b = ConfigSnapshot::new(load_dir(dir_b)?);
            let delta = snap_a.diff(&snap_b);
            print_delta(&delta, &snap_b);
            if delta.is_empty() {
                println!("families: all clean (no config changes)");
                return Ok(());
            }
            let v_a = Verifier::new(
                snap_a.into_devices(),
                VsbProfile::ground_truth,
                Some(k.max(3)),
            )
            .map_err(|e| format!("model construction failed for {dir_a}: {e}"))?;
            let (_, cache) = v_a
                .verify_all_routes_cached(k, threads)
                .map_err(|e| e.to_string())?;
            let v_b = Verifier::new(
                snap_b.into_devices(),
                VsbProfile::ground_truth,
                Some(k.max(3)),
            )
            .map_err(|e| format!("model construction failed for {dir_b}: {e}"))?;
            let classes = v_b.classify_families(&delta, &cache, k);
            let dirty = classes.iter().filter(|(_, r)| r.is_some()).count();
            println!(
                "families: {} total, {} dirty, {} clean",
                classes.len(),
                dirty,
                classes.len() - dirty
            );
            for (fam, reason) in &classes {
                match reason {
                    Some(r) => println!("  DIRTY {}: {r}", fam_label(fam)),
                    None => println!("  clean {}", fam_label(fam)),
                }
            }
            Ok(())
        }
        "audit" => {
            let before_dir = args.get(1).ok_or_else(|| usage("audit needs <before-dir> <after-dir>"))?;
            let after_dir = args.get(2).ok_or_else(|| usage("audit needs <before-dir> <after-dir>"))?;
            let k = get_k(args)?;
            let before = load_dir(before_dir)?;
            let after = load_dir(after_dir)?;
            let mut focus: Vec<Ipv4Prefix> = Vec::new();
            for p in flags(args, "--prefix") {
                focus.push(parse_prefix(&p)?);
            }
            if focus.is_empty() {
                // Default: every prefix whose origin set changed plus all
                // announced prefixes (bounded).
                let all: std::collections::BTreeSet<Ipv4Prefix> = after
                    .iter()
                    .chain(before.iter())
                    .filter_map(|c| c.bgp.as_ref())
                    .flat_map(|b| b.networks.iter().copied())
                    .collect();
                focus = all.into_iter().collect();
            }
            let report = hoyan::audit::audit_update(&before, &after, &focus, &[], k)
                .map_err(|e| e.to_string())?;
            if report.passed() {
                println!("audit PASSED: no findings on {} focus prefixes", focus.len());
            } else {
                println!("audit FAILED: {} finding(s)", report.findings.len());
                for f in &report.findings {
                    println!("  {f:?}");
                }
                return Err("update rejected".into());
            }
            Ok(())
        }
        "tune" => {
            let dir = args.get(1).ok_or_else(|| usage("tune needs a config directory"))?;
            let configs = load_dir(dir)?;
            let validator = Validator::new(configs.clone()).map_err(|e| e.to_string())?;
            let mut registry = ModelRegistry::naive();
            let prefixes: Vec<Vec<Ipv4Prefix>> = configs
                .iter()
                .filter_map(|c| c.bgp.as_ref())
                .flat_map(|b| b.networks.iter().map(|p| vec![*p]))
                .collect();
            let outcome = validator
                .tune(&mut registry, &prefixes, 64)
                .map_err(|e| e.to_string())?;
            println!(
                "tuner: {} patches over {} rounds",
                outcome.localizations.len(),
                outcome.rounds
            );
            for l in &outcome.localizations {
                println!(
                    "  {} on {} (vendor {}): ~{} config lines implicated",
                    l.vsb.name(),
                    l.hostname,
                    l.vendor.letter(),
                    l.config_lines
                );
            }
            let avg = |v: &[(Ipv4Prefix, f64)]| {
                100.0 * v.iter().map(|(_, a)| a).sum::<f64>() / v.len().max(1) as f64
            };
            println!(
                "accuracy: {:.1}% -> {:.1}%",
                avg(&outcome.accuracy_before),
                avg(&outcome.accuracy_after)
            );
            Ok(())
        }
        "serve" => {
            let dir = args.get(1).ok_or_else(|| usage("serve needs a config directory"))?;
            let addr = flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7411".to_string());
            let k = get_k(args)?;
            let workers = match num_flag(args, "--workers")? {
                Some(0) => return Err(usage("--workers must be at least 1")),
                Some(n) => n as usize,
                None => 4,
            };
            let queue_cap = num_flag(args, "--queue")?.unwrap_or(64) as usize;
            let sweep_opts = get_sweep_options(args)?;
            let configs = load_dir(dir)?;
            let server = hoyan::core::Server::bind(
                configs,
                &addr,
                hoyan::core::ServeOptions {
                    workers,
                    queue_cap,
                    k,
                    sweep_threads: get_threads(args)?,
                    budget: sweep_opts.budget,
                    retry_after_ms: 100,
                },
            )
            .map_err(|e| e.to_string())?;
            // The "listening on" line is the startup handshake: scripts
            // bind port 0 and scrape the resolved ephemeral port from it.
            println!(
                "hoyan serve: {} device(s), {} resident family(ies) at k={k}; listening on {}",
                server.device_count(),
                server.family_count(),
                server.local_addr()
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let summary = server.run();
            println!(
                "hoyan serve: drained after {} request(s) ({} connection(s) rejected)",
                summary.requests, summary.rejected
            );
            Ok(())
        }
        _ => {
            println!(
                "hoyan — configuration verifier (SIGCOMM'20 reproduction)\n\
                 \n\
                 usage:\n\
                 \x20 hoyan gen <dir> [--size tiny|small|medium|reference|wan-large|wan-paper] [--seed N]\n\
                 \x20 hoyan verify <dir> --prefix P --device D [--k K]\n\
                 \x20 hoyan packet <dir> --prefix P --from D [--k K] [--proto tcp|udp|ip]\n\
                 \x20 hoyan scope  <dir> --prefix P\n\
                 \x20 hoyan racing <dir> --prefix P\n\
                 \x20 hoyan routers <dir> --prefix P --device D\n\
                 \x20 hoyan equiv  <dir> --a D1 --b D2\n\
                 \x20 hoyan sweep  <dir> [--k K] [--threads N] [--baseline <dirA>] [--fail-fast]\n\
                 \x20              [--family-node-budget N] [--family-op-budget N] [--family-deadline-ms MS]\n\
                 \x20              [--bdd-order registration|dfs|bfs]\n\
                 \x20              [--modular] [--abstraction off|prove-only|full]\n\
                 \x20 hoyan diff   <dirA> <dirB> [--k K] [--threads N]\n\
                 \x20 hoyan audit  <before-dir> <after-dir> [--k K] [--prefix P ...]\n\
                 \x20 hoyan tune   <dir>\n\
                 \x20 hoyan serve  <dir> [--addr A:P] [--k K] [--workers N] [--queue N]\n\
                 \x20              [--family-node-budget N] [--family-op-budget N] [--family-deadline-ms MS]\n\
                 \n\
                 global flags (any subcommand):\n\
                 \x20 --stats            print a span-tree/metrics table after the command\n\
                 \x20 --stats-json PATH  write the metrics registry as deterministic JSON\n\
                 \x20 --attribution      print the per-family cost attribution table (top 20)\n\
                 \x20 --trace PATH       write a chrome://tracing / Perfetto timeline JSON\n\
                 \x20 --timing           record wall-clock times (non-deterministic outputs)\n\
                 \x20 --quiet            suppress degradation warnings on stderr"
            );
            Ok(())
        }
    }
}
