#![warn(missing_docs)]

//! # Hoyan
//!
//! A configuration verifier for global WANs, reproducing the system described
//! in *"Accuracy, Scalability, Coverage: A Practical Configuration Verifier on
//! a Global WAN"* (SIGCOMM 2020).
//!
//! This façade crate re-exports every subsystem so applications can depend on
//! a single crate:
//!
//! - [`nettypes`] — prefixes, AS paths, communities, route attributes.
//! - [`logic`] — the topology-condition engine (BDDs) and a CDCL SAT solver.
//! - [`config`] — the router-configuration dialect, parser and emitter.
//! - [`device`] — per-device behavior models and vendor-specific behavior
//!   (VSB) profiles.
//! - [`core`] — the global simulator with local formal modeling: route and
//!   packet reachability under `k` failures, role equivalence, and
//!   route-update-racing detection.
//! - [`tuner`] — the behavior-model tuner that discovers and localizes VSBs.
//! - [`baselines`] — Batfish-, Minesweeper- and Plankton-style verifiers used
//!   for the performance comparisons.
//! - [`topogen`] — seeded generators for WAN topologies, configurations and
//!   fault/error-injection workloads.
//! - [`obs`] — hermetic tracing spans and the process-wide metrics registry
//!   behind the CLI's `--stats`/`--stats-json` output.
//! - [`rt`] — the hermetic runtime kit: seeded PRNGs, property-test and
//!   bench harnesses, and the seeded fault-injection plan behind
//!   `HOYAN_FAULTS`.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use hoyan::core::Verifier;
//! use hoyan::device::VsbProfile;
//! use hoyan::topogen::WanSpec;
//!
//! let wan = WanSpec::tiny(7).build();
//! let verifier =
//!     Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(2)).unwrap();
//! let report = verifier
//!     .route_reachability(wan.customer_prefixes[0], "CR1x0", 1)
//!     .unwrap();
//! assert!(report.reachable_now);
//! ```

pub mod audit;

pub use hoyan_baselines as baselines;
pub use hoyan_config as config;
pub use hoyan_core as core;
pub use hoyan_device as device;
pub use hoyan_logic as logic;
pub use hoyan_nettypes as nettypes;
pub use hoyan_obs as obs;
pub use hoyan_rt as rt;
pub use hoyan_topogen as topogen;
pub use hoyan_tuner as tuner;
