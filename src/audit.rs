//! The operator-facing update audit: the checks Hoyan runs against a
//! proposed configuration update before it is committed (§3.2's "check
//! correctness and inconspicuous ambiguities of new configurations in an
//! update"), combining the core verifier's primitives.
//!
//! Four §7 detectors:
//! - **reachability regression**: a focus prefix reaches fewer devices
//!   after the update, or stops being resilient to `k` failures;
//! - **IP conflict**: a prefix gains an origin (the §7.2 address-conflict
//!   audit);
//! - **static shadowing**: a static route stops being the preferred FIB
//!   rule on its device (the §7.1 outage);
//! - **racing**: convergence becomes ambiguous under update racing;
//! - **equivalence break**: a redundant device pair stops being equivalent.

use hoyan_config::DeviceConfig;
use hoyan_core::{fib_rules_for, racing_check, NetworkModel, Simulation, Verifier, VerifierError};
use hoyan_device::VsbProfile;
use hoyan_nettypes::Ipv4Prefix;

/// One problem found by the audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// Fewer devices can reach the prefix after the update.
    ReachabilityRegression {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// Devices in scope before.
        scope_before: usize,
        /// Devices in scope after.
        scope_after: usize,
    },
    /// The prefix is announced by more gateways than before.
    IpConflict {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// Origin count after the update.
        origins: usize,
    },
    /// A static route lost to a protocol route on its own device.
    StaticShadowed {
        /// The device.
        device: String,
        /// The static's prefix.
        prefix: Ipv4Prefix,
    },
    /// Route convergence became dependent on update arrival order.
    RacingIntroduced {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// Number of distinct convergences found.
        solutions: usize,
    },
    /// A redundant pair is no longer equivalent.
    EquivalenceBroken {
        /// The pair.
        pair: (String, String),
        /// First prefix that differs.
        first_difference: Option<Ipv4Prefix>,
    },
}

/// The audit result.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Everything found, in detector order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Whether the update is clean.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

fn origin_count(configs: &[DeviceConfig], prefix: Ipv4Prefix) -> usize {
    configs
        .iter()
        .filter(|c| {
            c.bgp
                .as_ref()
                .map(|b| b.networks.contains(&prefix))
                .unwrap_or(false)
        })
        .count()
}

fn static_shadowed(net: &NetworkModel, configs: &[DeviceConfig]) -> Vec<(String, Ipv4Prefix)> {
    let mut out = Vec::new();
    for cfg in configs {
        let Some(node) = net.topology.node(&cfg.hostname) else {
            continue;
        };
        for s in &cfg.static_routes {
            let Ok(mut sim) = Simulation::new_bgp(net, vec![s.prefix], Some(0), None)
                .run_owned()
            else {
                continue;
            };
            let rules = fib_rules_for(&mut sim, net, node, s.prefix.network());
            let best_is_static = rules
                .first()
                .map(|r| r.pref == s.preference && r.cond.is_true())
                .unwrap_or(false);
            if !best_is_static {
                out.push((cfg.hostname.clone(), s.prefix));
            }
        }
    }
    out
}

/// Audits `after` against `before`. `focus` are the prefixes the update
/// touches (plus any the operator wants re-checked); `pairs` are the
/// redundant device pairs subject to the equivalence intent.
pub fn audit_update(
    before: &[DeviceConfig],
    after: &[DeviceConfig],
    focus: &[Ipv4Prefix],
    pairs: &[(String, String)],
    k: u32,
) -> Result<AuditReport, VerifierError> {
    let v_before = Verifier::new(before.to_vec(), VsbProfile::ground_truth, Some(k.max(1)))?;
    let v_after = Verifier::new(after.to_vec(), VsbProfile::ground_truth, Some(k.max(1)))?;
    let mut findings = Vec::new();

    for p in focus {
        // Reachability scope.
        let scope_before = v_before.propagation_scope(*p).map_err(VerifierError::Sim)?;
        let scope_after = v_after.propagation_scope(*p).map_err(VerifierError::Sim)?;
        if scope_after.len() < scope_before.len() {
            findings.push(Finding::ReachabilityRegression {
                prefix: *p,
                scope_before: scope_before.len(),
                scope_after: scope_after.len(),
            });
        }
        // Origins (IP conflict).
        let origins_before = origin_count(before, *p);
        let origins_after = origin_count(after, *p);
        if origins_after > origins_before.max(1) {
            findings.push(Finding::IpConflict {
                prefix: *p,
                origins: origins_after,
            });
        }
        // Racing.
        let racing_before = racing_check(&v_before.net, *p, 2);
        let racing_after = racing_check(&v_after.net, *p, 2);
        if racing_after.ambiguous && !racing_before.ambiguous {
            findings.push(Finding::RacingIntroduced {
                prefix: *p,
                solutions: racing_after.solutions,
            });
        }
    }

    // Static shadowing: anything newly shadowed.
    let shadowed_before = static_shadowed(&v_before.net, before);
    for (device, prefix) in static_shadowed(&v_after.net, after) {
        if !shadowed_before.contains(&(device.clone(), prefix)) {
            findings.push(Finding::StaticShadowed { device, prefix });
        }
    }

    // Equivalence pairs.
    for pair in pairs {
        let eq_before = v_before
            .role_equivalence(&pair.0, &pair.1)
            .map_err(VerifierError::Sim)?;
        let eq_after = v_after
            .role_equivalence(&pair.0, &pair.1)
            .map_err(VerifierError::Sim)?;
        if eq_before.equivalent && !eq_after.equivalent {
            findings.push(Finding::EquivalenceBroken {
                pair: pair.clone(),
                first_difference: eq_after.first_difference,
            });
        }
    }

    Ok(AuditReport { findings })
}

/// Tiny helper so `static_shadowed` can use `?`-less flow.
trait RunOwned<'n>: Sized {
    fn run_owned(self) -> Result<Simulation<'n>, hoyan_core::SimError>;
}

impl<'n> RunOwned<'n> for Simulation<'n> {
    fn run_owned(mut self) -> Result<Simulation<'n>, hoyan_core::SimError> {
        self.run()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;

    fn two_node(origin_extra: &str) -> Vec<DeviceConfig> {
        vec![
            parse_config(&format!(
                "hostname A\ninterface e0\n peer B\nrouter bgp 1\n network 10.0.0.0/24\n{origin_extra} neighbor B remote-as 2\n",
            ))
            .unwrap(),
            parse_config(
                "hostname B\ninterface e0\n peer A\nrouter bgp 2\n neighbor A remote-as 1\n",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn identical_snapshots_pass() {
        let cfgs = two_node("");
        let report = audit_update(
            &cfgs,
            &cfgs,
            &["10.0.0.0/24".parse().unwrap()],
            &[],
            1,
        )
        .unwrap();
        assert!(report.passed());
    }

    #[test]
    fn scope_shrink_is_a_regression() {
        let before = two_node("");
        // After: A filters its announcement to B entirely.
        let after = vec![
            parse_config(concat!(
                "hostname A\ninterface e0\n peer B\n",
                "route-map NONE deny 10\n",
                "router bgp 1\n network 10.0.0.0/24\n neighbor B remote-as 2\n neighbor B route-map NONE out\n",
            ))
            .unwrap(),
            before[1].clone(),
        ];
        let report = audit_update(
            &before,
            &after,
            &["10.0.0.0/24".parse().unwrap()],
            &[],
            1,
        )
        .unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ReachabilityRegression { .. })));
    }
}
