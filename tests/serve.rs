//! The resident daemon (`hoyan::core::serve`): protocol round-trips on an
//! ephemeral port, byte-identical responses across worker counts,
//! admission control (an over-budget request is quarantined while a
//! concurrent well-behaved one completes; connections beyond the bounded
//! queue are rejected with `retry_after_ms`), `whatif` pushes reflected by
//! subsequent `reach` answers, and structured errors for malformed lines.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use hoyan::config::parse_config;
use hoyan::core::{render_reach_response, ServeOptions, Server, Verifier};
use hoyan::device::VsbProfile;
use hoyan::nettypes::Ipv4Prefix;
use hoyan::rt::json::{parse as json_parse, Value};
use hoyan::topogen::{Wan, WanSpec};

fn tiny() -> Wan {
    WanSpec::tiny(7).build()
}

fn opts(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        sweep_threads: 2,
        ..ServeOptions::default()
    }
}

/// Binds a server on an ephemeral port, runs `f` against it, then sends
/// `shutdown` and joins the daemon. Test closures must NOT send their own
/// `shutdown`. Panic-safe: if `f` fails (or the protocol shutdown is
/// rejected by a saturated daemon), the out-of-band `request_shutdown`
/// still drains the scope so the failure surfaces instead of hanging.
fn with_server<F: FnOnce(SocketAddr)>(wan: &Wan, o: ServeOptions, f: F) {
    let server = Server::bind(wan.configs.clone(), "127.0.0.1:0", o).expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|s| {
        let daemon = s.spawn(|| server.run());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        let mut drained = false;
        for _ in 0..200 {
            match try_request(addr, r#"{"kind":"shutdown"}"#) {
                Some(resp) if resp.contains("\"kind\":\"shutdown\"") => {
                    drained = true;
                    break;
                }
                // Rejected (`overloaded`) or raced a dying worker: retry.
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        if !drained {
            server.request_shutdown();
        }
        daemon.join().expect("daemon thread");
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
        assert!(drained, "protocol shutdown never accepted");
    });
}

/// One best-effort request round-trip; `None` on any I/O failure.
fn try_request(addr: SocketAddr, line: &str) -> Option<String> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    s.set_nodelay(true).ok()?;
    s.write_all(format!("{line}\n").as_bytes()).ok()?;
    s.flush().ok()?;
    let mut out = String::new();
    BufReader::new(s).read_line(&mut out).ok()?;
    Some(out)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        s.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(s.try_clone().expect("clone")),
            writer: s,
        }
    }

    /// One request line, one response line. A single write per request —
    /// a split `line` + `"\n"` pair trips Nagle/delayed-ACK stalls.
    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(format!("{line}\n").as_bytes()).expect("write");
        self.writer.flush().expect("flush");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read");
        assert!(!out.is_empty(), "daemon disconnected");
        out.trim_end().to_string()
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or_else(|| panic!("no `{key}` in {v}"))
}

/// The wire line a `reach` cache hit must produce, computed independently
/// from a fresh one-shot sweep of `configs`.
fn expected_reach_line(
    configs: &[hoyan::config::DeviceConfig],
    id: &str,
    prefix: Ipv4Prefix,
    device: &str,
    k: u32,
) -> String {
    let v = Verifier::new(configs.to_vec(), VsbProfile::ground_truth, Some(k.max(3))).expect("build");
    let report = v
        .verify_all_routes(k, 2)
        .expect("sweep")
        .reports
        .into_iter()
        .find(|r| r.prefix == prefix)
        .expect("prefix swept");
    let node = v.net.topology.node(device).expect("device");
    let reachable = report.scope.contains(&node);
    let resilient = reachable && !report.fragile.contains(&node);
    let id_val = Value::Str(id.to_string());
    render_reach_response(Some(&id_val), prefix, device, k, reachable, resilient, "cache")
        .to_string()
}

#[test]
fn protocol_round_trip_on_ephemeral_port() {
    let wan = tiny();
    let (prefix, dc, pe) = wan.prefix_origin[0].clone();
    with_server(&wan, opts(2), |addr| {
        let mut c = Client::connect(addr);

        // A cached reach answer must be byte-identical to what a fresh
        // one-shot sweep reports for the same prefix/device.
        let line = c.send(&format!(
            r#"{{"id":"q1","kind":"reach","prefix":"{prefix}","device":"{pe}"}}"#
        ));
        assert_eq!(line, expected_reach_line(&wan.configs, "q1", prefix, &pe, 1));

        let line = c.send(&format!(
            r#"{{"id":"q2","kind":"equiv","a":"{dc}","b":"{dc}"}}"#
        ));
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
        assert_eq!(field(&v, "equivalent"), &Value::Bool(true), "{line}");

        let line = c.send(r#"{"id":"q3","kind":"stats"}"#);
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "kind"), &Value::Str("stats".into()), "{line}");
        assert_eq!(field(&v, "requests"), &Value::Num(3.0), "{line}");
        assert_eq!(field(&v, "cache_hits"), &Value::Num(1.0), "{line}");
        assert_eq!(field(&v, "rejected"), &Value::Num(0.0), "{line}");

        // Unknown kinds and unknown devices are structured errors.
        let line = c.send(r#"{"kind":"frobnicate"}"#);
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(false), "{line}");
        assert_eq!(field(&v, "error"), &Value::Str("bad_request".into()));
        let line = c.send(&format!(
            r#"{{"kind":"reach","prefix":"{prefix}","device":"NOPE"}}"#
        ));
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "error"), &Value::Str("unknown_device".into()));
    });
}

#[test]
fn responses_byte_identical_across_worker_counts() {
    let wan = tiny();
    let (prefix, dc, _) = wan.prefix_origin[0].clone();
    let script = [
        format!(r#"{{"id":"a","kind":"reach","prefix":"{prefix}","device":"{dc}"}}"#),
        // k above the cache's k: a fresh budgeted simulation.
        format!(r#"{{"id":"b","kind":"reach","prefix":"{prefix}","device":"{dc}","k":2}}"#),
        "{not json".to_string(),
        format!(r#"{{"id":"c","kind":"equiv","a":"{dc}","b":"{dc}"}}"#),
        r#"{"id":"d","kind":"stats"}"#.to_string(),
    ];
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut lines = Vec::new();
        with_server(&wan, opts(workers), |addr| {
            let mut c = Client::connect(addr);
            for req in &script {
                lines.push(c.send(req));
            }
        });
        transcripts.push(lines);
    }
    assert_eq!(transcripts[0], transcripts[1], "1 vs 2 workers");
    assert_eq!(transcripts[0], transcripts[2], "1 vs 8 workers");
}

#[test]
fn over_budget_request_is_quarantined_while_concurrent_request_completes() {
    let wan = tiny();
    let (prefix, dc, _) = wan.prefix_origin[0].clone();
    with_server(&wan, opts(2), |addr| {
        std::thread::scope(|s| {
            let hostile = s.spawn(|| {
                let mut c = Client::connect(addr);
                // k=2 forces the simulation path; one ITE op of budget
                // trips immediately. The request must be answered (not
                // dropped) and the connection must survive it.
                let line = c.send(&format!(
                    r#"{{"id":"h","kind":"reach","prefix":"{prefix}","device":"{dc}","k":2,"budget_ops":1}}"#
                ));
                let v = json_parse(&line).expect("json");
                assert_eq!(field(&v, "ok"), &Value::Bool(false), "{line}");
                assert_eq!(field(&v, "error"), &Value::Str("over_budget".into()), "{line}");
                // Same connection, same worker: a well-behaved request
                // still gets a real answer afterwards.
                let line = c.send(&format!(
                    r#"{{"id":"h2","kind":"reach","prefix":"{prefix}","device":"{dc}"}}"#
                ));
                let v = json_parse(&line).expect("json");
                assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
            });
            let polite = s.spawn(|| {
                let mut c = Client::connect(addr);
                let line = c.send(&format!(
                    r#"{{"id":"p","kind":"reach","prefix":"{prefix}","device":"{dc}"}}"#
                ));
                let v = json_parse(&line).expect("json");
                assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
                assert_eq!(field(&v, "source"), &Value::Str("cache".into()), "{line}");
            });
            hostile.join().expect("hostile client");
            polite.join().expect("polite client");
        });
    });
}

#[test]
fn config_push_then_reach_reflects_delta() {
    let wan = tiny();
    let (_, dc, _) = wan.prefix_origin[0].clone();
    let new_prefix: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
    // The push: the DC edge additionally announces 198.51.100.0/24.
    let dc_idx = wan
        .configs
        .iter()
        .position(|c| c.hostname == dc)
        .expect("dc config");
    let at = wan.texts[dc_idx].find("  network ").expect("network stanza");
    let mut pushed = wan.texts[dc_idx].clone();
    pushed.insert_str(at, &format!("  network {new_prefix}\n"));

    with_server(&wan, opts(2), |addr| {
        let mut c = Client::connect(addr);
        // Before the push the prefix is unknown: the miss-path simulation
        // finds nobody announcing it.
        let line = c.send(&format!(
            r#"{{"id":"w0","kind":"reach","prefix":"{new_prefix}","device":"{dc}"}}"#
        ));
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "reachable_now"), &Value::Bool(false), "{line}");
        assert_eq!(field(&v, "source"), &Value::Str("sim".into()), "{line}");

        let req = Value::Obj(vec![
            ("id".into(), Value::Str("w1".into())),
            ("kind".into(), Value::Str("whatif".into())),
            ("configs".into(), Value::Arr(vec![Value::Str(pushed.clone())])),
        ]);
        let line = c.send(&req.to_string());
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
        assert_eq!(field(&v, "devices_changed"), &Value::Num(1.0), "{line}");
        let dirty = field(&v, "dirty").as_f64().expect("dirty") as u64;
        let reused = field(&v, "reused").as_f64().expect("reused") as u64;
        assert!(dirty >= 1, "the new family must be dirty: {line}");
        assert!(reused >= 1, "untouched families must be reused: {line}");
        assert_eq!(field(&v, "quarantined"), &Value::Num(0.0), "{line}");

        // After the push, the answer comes from the refreshed cache and is
        // byte-identical to a fresh one-shot sweep of the updated configs.
        let mut updated = wan.configs.clone();
        updated[dc_idx] = parse_config(&pushed).expect("pushed config parses");
        let line = c.send(&format!(
            r#"{{"id":"w2","kind":"reach","prefix":"{new_prefix}","device":"{dc}"}}"#
        ));
        assert_eq!(
            line,
            expected_reach_line(&updated, "w2", new_prefix, &dc, 1),
            "post-push reach must match a fresh sweep of the updated configs"
        );
    });
}

#[test]
fn malformed_json_line_gets_structured_error_not_disconnect() {
    let wan = tiny();
    with_server(&wan, opts(2), |addr| {
        let mut c = Client::connect(addr);
        for bad in ["{oops", "[1,2", "hello", "{\"kind\":\"reach\"} trailing"] {
            let line = c.send(bad);
            let v = json_parse(&line).expect("json");
            assert_eq!(field(&v, "ok"), &Value::Bool(false), "{line}");
            assert_eq!(field(&v, "error"), &Value::Str("parse".into()), "{line}");
        }
        // The connection survived all four malformed lines.
        let line = c.send(r#"{"kind":"stats"}"#);
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
        assert_eq!(field(&v, "malformed"), &Value::Num(4.0), "{line}");
    });
}

#[test]
fn connection_beyond_bounded_queue_is_rejected_with_retry_after() {
    let wan = tiny();
    let o = ServeOptions {
        workers: 1,
        queue_cap: 0,
        sweep_threads: 2,
        ..ServeOptions::default()
    };
    with_server(&wan, o, |addr| {
        // The round-trip guarantees the single worker owns this
        // connection before the second one arrives.
        let mut holder = Client::connect(addr);
        let line = holder.send(r#"{"kind":"stats"}"#);
        assert!(line.contains("\"ok\":true"), "{line}");

        let mut rejected = Client::connect(addr);
        let line = rejected.read_line();
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(false), "{line}");
        assert_eq!(field(&v, "error"), &Value::Str("overloaded".into()), "{line}");
        assert_eq!(field(&v, "retry_after_ms"), &Value::Num(100.0), "{line}");
        // `holder` drops here, freeing the worker for the shutdown.
    });
}

/// The rejection backoff is not a constant: it scales with the waiting
/// backlog (`floor * (1 + waiting/workers)`), so a client bounced off a
/// deep queue backs off longer than one bounced off a full-but-shallow
/// one, and `stats` reports the advisory value a rejection would carry
/// *right now*.
#[test]
fn retry_after_scales_with_queue_depth() {
    let wan = tiny();
    let o = ServeOptions {
        workers: 1,
        queue_cap: 2,
        sweep_threads: 2,
        ..ServeOptions::default()
    };
    with_server(&wan, o, |addr| {
        // Round-trip first so the single worker provably owns `holder`.
        let mut holder = Client::connect(addr);
        let line = holder.send(r#"{"kind":"stats"}"#);
        assert!(line.contains("\"ok\":true"), "{line}");

        // Two more connections fill the wait queue. They get no ack on
        // admission, so give the acceptor a beat to enqueue each before
        // the next arrives — ordering is what the assertions below pin.
        let mut w1 = Client::connect(addr);
        std::thread::sleep(Duration::from_millis(100));
        let _w2 = Client::connect(addr);
        std::thread::sleep(Duration::from_millis(100));

        // Third extra connection: two already waiting on one worker, so
        // the advisory backoff is 100ms * (1 + 2/1) = 300ms, not the flat
        // floor the old daemon always quoted.
        let mut rejected = Client::connect(addr);
        let line = rejected.read_line();
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(false), "{line}");
        assert_eq!(field(&v, "error"), &Value::Str("overloaded".into()), "{line}");
        assert_eq!(field(&v, "retry_after_ms"), &Value::Num(300.0), "{line}");

        // Queue the request on the first waiter, then free the worker: it
        // pops `w1` (FIFO) while `w2` still waits, so the stats snapshot
        // must quote 100ms * (1 + 1/1) = 200ms.
        w1.writer.write_all(b"{\"kind\":\"stats\"}\n").expect("write");
        w1.writer.flush().expect("flush");
        drop(holder);
        let line = w1.read_line();
        let v = json_parse(&line).expect("json");
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line}");
        assert_eq!(field(&v, "retry_after_ms"), &Value::Num(200.0), "{line}");
        // `w1`/`w2` drop here; the freed worker then drains the shutdown.
    });
}

#[test]
fn serve_cli_smoke_ephemeral_port_and_clean_drain() {
    let dir = std::env::temp_dir().join(format!("hoyan-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hoyan"))
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
        .output()
        .expect("gen");
    assert!(out.status.success());

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_hoyan"))
        .args(["serve", dir.to_str().unwrap(), "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner");
    let addr: SocketAddr = banner
        .rsplit("listening on ")
        .next()
        .expect("listening banner")
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad banner: {banner}"));

    let mut c = Client::connect(addr);
    let line = c.send(r#"{"id":"s","kind":"stats"}"#);
    assert!(line.contains("\"ok\":true"), "{line}");
    let line = c.send(r#"{"kind":"shutdown"}"#);
    assert!(line.contains("\"kind\":\"shutdown\""), "{line}");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve must drain cleanly: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
