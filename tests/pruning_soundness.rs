//! Pruning soundness (§5.6): a simulation run with failure budget `k`
//! must give exactly the same reachability verdicts as an *unpruned*
//! simulation (`k = None`) for every failure scenario of size ≤ k — the
//! paper argues the pruning decisions stay valid under later condition
//! amendments; this test checks the end result on generated WANs.

use std::collections::HashSet;

use hoyan::baselines::failure_sets;
use hoyan::core::{NetworkModel, Simulation};
use hoyan::device::VsbProfile;
use hoyan::nettypes::LinkId;
use hoyan::topogen::WanSpec;

#[test]
fn pruned_and_unpruned_simulations_agree_within_the_ball() {
    for seed in [3u64, 8, 21] {
        let wan = WanSpec::tiny(seed).build();
        let net =
            NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth).unwrap();
        for p in &wan.customer_prefixes {
            let mut exact = Simulation::new_bgp(&net, vec![*p], None, None);
            exact.run().unwrap();
            for k in 0..=2u32 {
                let mut pruned = Simulation::new_bgp(&net, vec![*p], Some(k), None);
                pruned.run().unwrap();
                for dead_links in failure_sets(net.topology.link_count(), k as usize) {
                    let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
                    let mut assign = vec![true; net.topology.link_count()];
                    for l in &dead {
                        assign[l.0 as usize] = false;
                    }
                    for n in net.topology.nodes() {
                        let ve = exact.reach_cond(n, *p);
                        let vp = pruned.reach_cond(n, *p);
                        assert_eq!(
                            exact.mgr.eval(ve, &assign),
                            pruned.mgr.eval(vp, &assign),
                            "seed {seed} prefix {p} k={k} node {} dead {:?}",
                            net.topology.name(n),
                            dead_links,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pruning_reduces_work_monotonically() {
    // Lower budgets must never do *more* work (deliveries) than higher ones.
    let wan = WanSpec::small(5).build();
    let net = NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth).unwrap();
    let p = wan.customer_prefixes[0];
    let mut last = 0u64;
    for k in 0..=3u32 {
        let mut sim = Simulation::new_bgp(&net, vec![p], Some(k), None);
        sim.run().unwrap();
        assert!(
            sim.stats.delivered >= last,
            "k={k}: delivered {} < {}",
            sim.stats.delivered,
            last
        );
        last = sim.stats.delivered;
    }
}

#[test]
fn resilience_verdicts_match_between_budgets() {
    // The min-failures verdict *within* the budget must not depend on the
    // budget chosen (as long as the verdict is inside it).
    let wan = WanSpec::tiny(30).build();
    let net = NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth).unwrap();
    for p in &wan.customer_prefixes {
        let mut sim2 = Simulation::new_bgp(&net, vec![*p], Some(2), None);
        sim2.run().unwrap();
        let mut sim3 = Simulation::new_bgp(&net, vec![*p], Some(3), None);
        sim3.run().unwrap();
        for n in net.topology.nodes() {
            let v2 = sim2.reach_cond(n, *p);
            let v3 = sim3.reach_cond(n, *p);
            let m2 = sim2.mgr.min_failures_to_falsify(v2);
            let m3 = sim3.mgr.min_failures_to_falsify(v3);
            // Verdicts at or below the smaller budget must coincide.
            if m3 <= 2 || m2 <= 2 {
                assert_eq!(m2, m3, "prefix {p} node {}", net.topology.name(n));
            }
        }
    }
}
