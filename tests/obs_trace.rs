//! The sweep flight recorder's contracts, end to end:
//!
//! - **Accounting**: with `--timing` off, the per-family `FamilyCost.ops`
//!   of a sweep — completed and quarantined families alike — plus the
//!   shared base's construction ops sum *exactly* to the `bdd.ops` delta
//!   of the sweep window, at every thread count. Each family runs on a
//!   freshly recycled arena whose tallies start at zero, so its snapshot
//!   is its own delta; nothing is double-counted or lost.
//! - **Determinism**: the Chrome-trace export, the attribution table and
//!   the `family_cost` section of `--stats-json` are byte-identical at
//!   1, 2 and 8 threads (logical timestamps, post-join publication).
//! - **Round-trip**: the trace export is valid JSON — it parses with
//!   `hoyan::rt::json` and reprinting the parse is a fixed point.
//! - **Faults**: an injected budget breach (`HOYAN_FAULTS`) quarantines
//!   the family, emits a `quarantined` instant in the trace, and still
//!   attributes the partial ops the family burned before the breach.
//!
//! Library-level tests share the process-wide obs registry and recorder,
//! so they serialize on a lock; the CLI test is its own process.

use std::process::Command;
use std::sync::Mutex;

use hoyan::device::VsbProfile;
use hoyan::rt::json;
use hoyan::topogen::WanSpec;

static LOCK: Mutex<()> = Mutex::new(());

/// The 42-router incremental fixture (the same one `experiments bdd` and
/// `BENCH_bdd.json` use): large enough that families genuinely share
/// workers at 2 and 8 threads.
fn forty_two_router_spec() -> WanSpec {
    WanSpec {
        seed: 42,
        regions: 3,
        pes_per_region: 4,
        mans_per_region: 2,
        prefixes_per_pe: 2,
        extra_core_links: 2,
        block_prefixes: 1,
    }
}

/// The `"family_cost"` section of the stats export, verbatim.
fn family_cost_section(json: &str) -> &str {
    let start = json.find("\"family_cost\"").expect("family_cost section");
    &json[start..]
}

#[test]
fn flight_recorder_is_balanced_and_thread_invariant() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let wan = forty_two_router_spec().build();
    // Build the verifier *before* opening the metrics window: the model +
    // IS-IS build does real BDD work that belongs to no family.
    let verifier =
        hoyan::core::Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3))
            .expect("verifier builds");
    hoyan::obs::set_enabled(true);

    let mut baseline: Option<(String, String, String)> = None;
    for threads in [1usize, 2, 8] {
        hoyan::obs::reset();
        hoyan::obs::set_events_enabled(true);
        let report = verifier.verify_all_routes(1, threads).expect("sweep");
        assert!(report.quarantined.is_empty(), "clean fixture quarantined");

        // Exact accounting: every op of the sweep window is either some
        // family's or the shared base's. `verify_all_routes` recycles or
        // drops every arena before returning, so the global counter has
        // absorbed every family tally by now.
        let counters = hoyan::obs::counter_values();
        let costs = hoyan::obs::unit_costs();
        assert_eq!(costs.len(), hoyan::obs::counter("verify.families").get() as usize);
        let attributed: u64 = costs.iter().map(|c| c.ops).sum();
        let shared = counters["verify.shared_base_ops"];
        assert_eq!(
            attributed + shared,
            counters["bdd.ops"],
            "threads={threads}: family ops + shared base must equal the sweep's bdd.ops"
        );
        assert!(costs.iter().all(|c| !c.quarantined && !c.reused));
        assert!(costs.iter().all(|c| c.wall_ns == 0), "timing is off");

        // The recorder saw every family start and end.
        let events = hoyan::obs::events_snapshot();
        let starts = events
            .iter()
            .filter(|e| matches!(e.kind, hoyan::obs::EventKind::FamilyStart))
            .count();
        assert_eq!(starts, costs.len(), "threads={threads}");

        // Determinism: all three render surfaces byte-identical across
        // thread counts.
        let trace = hoyan::obs::export_chrome_trace();
        let table = hoyan::obs::render_attribution(20);
        let cost_json = family_cost_section(&hoyan::obs::export_json()).to_string();
        match &baseline {
            None => {
                // Round-trip the trace through the JSON validator once.
                let parsed = json::parse(&trace).expect("trace parses");
                let events = parsed.as_arr().expect("trace is an array");
                assert!(!events.is_empty());
                for e in events {
                    assert!(e.get("ph").is_some() && e.get("pid").is_some());
                }
                let printed = parsed.to_string();
                assert_eq!(json::parse(&printed).expect("reparse"), parsed);
                baseline = Some((trace, table, cost_json));
            }
            Some((t, a, c)) => {
                assert_eq!(t, &trace, "trace differs at threads={threads}");
                assert_eq!(a, &table, "attribution differs at threads={threads}");
                assert_eq!(c, &cost_json, "family_cost differs at threads={threads}");
            }
        }
    }
    hoyan::obs::set_events_enabled(false);
    hoyan::obs::reset();
}

#[test]
fn reverify_attributes_reused_families_at_zero_marginal_cost() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let wan = forty_two_router_spec().build();
    let verifier =
        hoyan::core::Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3))
            .expect("verifier builds");
    hoyan::obs::set_enabled(true);
    hoyan::obs::reset();
    hoyan::obs::set_events_enabled(true);
    let (_, cache) = verifier.verify_all_routes_cached(1, 4).expect("baseline");

    // Identity delta: every family replays from cache.
    let snap = hoyan::config::ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    hoyan::obs::reset();
    let outcome = verifier.reverify(&delta, &cache, 1, 4).expect("reverify");
    assert_eq!(outcome.recomputed, 0);
    let costs = hoyan::obs::unit_costs();
    assert_eq!(costs.len(), outcome.reused);
    // Reused families carry their baseline bill for visibility, flagged so
    // the attribution footer does not count them against this window.
    assert!(costs.iter().all(|c| c.reused && c.ops > 0));
    let reuse_events = hoyan::obs::events_snapshot()
        .iter()
        .filter(|e| matches!(e.kind, hoyan::obs::EventKind::CacheReuse))
        .count();
    assert_eq!(reuse_events, outcome.reused);
    hoyan::obs::set_events_enabled(false);
    hoyan::obs::reset();
}

#[test]
fn injected_budget_breach_is_quarantined_and_still_attributed() {
    let dir = std::env::temp_dir().join(format!("hoyan-obs-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hoyan"))
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success());

    let stats = dir.join("stats.json");
    let trace = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_hoyan"))
        .args([
            "sweep",
            dir.to_str().unwrap(),
            "--k",
            "1",
            "--threads",
            "2",
            "--attribution",
            "--stats-json",
            stats.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .env("HOYAN_FAULTS", "verify.family@1=overbudget")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The quarantined family's partial bill survives: it burned real ops
    // before the breach tripped, and they are attributed, not lost.
    let stats = std::fs::read_to_string(&stats).unwrap();
    let parsed = json::parse(&stats).expect("stats parse");
    let families = parsed
        .get("family_cost")
        .and_then(json::Value::as_arr)
        .expect("family_cost");
    let hit = families
        .iter()
        .find(|f| f.get("quarantined") == Some(&json::Value::Bool(true)))
        .expect("one quarantined family");
    assert_eq!(hit.get("family").and_then(json::Value::as_f64), Some(1.0));
    assert!(hit.get("ops").and_then(json::Value::as_f64).unwrap_or(0.0) > 0.0);
    assert!(families
        .iter()
        .any(|f| f.get("quarantined") == Some(&json::Value::Bool(false))));

    // The timeline shows both the breach and the verdict, and the
    // attribution table flags the family.
    let trace = std::fs::read_to_string(&trace).unwrap();
    json::parse(&trace).expect("trace parses");
    assert!(trace.contains("\"budget-breach\""), "{trace}");
    assert!(trace.contains("\"quarantined\""), "{trace}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(" Q "), "no quarantine flag in:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
