//! Randomized soundness: on random connected eBGP topologies with random
//! (monotone) policies, Hoyan's conditioned simulation must agree with the
//! concrete per-scenario simulator for *every* failure set of size ≤ 2.
//!
//! Policies are restricted to route monotone transformations (AS-path
//! prepending, MED, community tagging, prefix filters) so the network has a
//! unique stable state — with non-monotone policies (e.g. weight rewrites)
//! convergence can be genuinely order-dependent, which is racing detection's
//! job, not reachability's.

use std::collections::HashSet;

use hoyan::baselines::{concrete::converge, failure_sets};
use hoyan::config::{parse_config, DeviceConfig};
use hoyan::core::{NetworkModel, Simulation};
use hoyan::device::VsbProfile;
use hoyan::nettypes::{pfx, LinkId};
use hoyan_rt::rng::StdRng;

fn random_net(seed: u64) -> Vec<DeviceConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..8usize);
    // Random connected graph: a random spanning tree + extra edges.
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.insert((j, i));
    }
    for _ in 0..rng.gen_range(0..n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }

    let mut texts: Vec<String> = Vec::new();
    for i in 0..n {
        let mut t = format!("hostname R{i}\nrouter-id {}\n", i + 1);
        for (k, (a, b)) in edges.iter().enumerate() {
            if *a == i {
                t += &format!("interface e{k}\n peer R{b}\n");
            } else if *b == i {
                t += &format!("interface e{k}\n peer R{a}\n");
            }
        }
        // Random policies (monotone only).
        let mut policy_lines = String::new();
        let mut maps: Vec<(usize, String)> = Vec::new();
        for (k, (a, b)) in edges.iter().enumerate() {
            let peer = if *a == i {
                *b
            } else if *b == i {
                *a
            } else {
                continue;
            };
            match rng.gen_range(0..5u8) {
                0 => {
                    policy_lines += &format!(
                        "route-map RM{k} permit 10\n set as-path prepend {}\n",
                        100 + i
                    );
                    maps.push((peer, format!("RM{k}")));
                }
                1 => {
                    policy_lines += &format!(
                        "route-map RM{k} permit 10\n set med {}\n",
                        rng.gen_range(0..50)
                    );
                    maps.push((peer, format!("RM{k}")));
                }
                2 => {
                    policy_lines += &format!(
                        "route-map RM{k} permit 10\n set community 1:{k} additive\n",
                    );
                    maps.push((peer, format!("RM{k}")));
                }
                _ => {}
            }
        }
        t += &policy_lines;
        t += &format!("router bgp {}\n", 100 + i);
        if i == 0 {
            t += " network 10.50.0.0/16\n";
        }
        for (a, b) in &edges {
            let peer = if *a == i {
                *b
            } else if *b == i {
                *a
            } else {
                continue;
            };
            t += &format!(" neighbor R{peer} remote-as {}\n", 100 + peer);
            if let Some((_, rm)) = maps.iter().find(|(p, _)| *p == peer) {
                let dir = if rng.gen_bool(0.5) { "in" } else { "out" };
                t += &format!(" neighbor R{peer} route-map {rm} {dir}\n");
            }
        }
        texts.push(t);
    }
    texts.iter().map(|t| parse_config(t).unwrap()).collect()
}

#[test]
fn hoyan_matches_concrete_on_random_topologies() {
    let p = pfx("10.50.0.0/16");
    for seed in 0..20u64 {
        let configs = random_net(seed);
        let net = NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap();
        let mut sim = Simulation::new_bgp(&net, vec![p], Some(2), None);
        sim.run().unwrap();
        for dead_links in failure_sets(net.topology.link_count(), 2) {
            let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
            let state = converge(&net, &[p], &dead);
            let mut assign = vec![true; net.topology.link_count()];
            for l in &dead {
                assign[l.0 as usize] = false;
            }
            for n in net.topology.nodes() {
                let cond = sim.reach_cond(n, p);
                assert_eq!(
                    sim.mgr.eval(cond, &assign),
                    state.has_route(n, p),
                    "seed {seed}: node {} under dead={:?}",
                    net.topology.name(n),
                    dead_links
                );
            }
        }
    }
}

#[test]
fn best_route_attributes_match_on_random_topologies() {
    // Beyond existence: under the all-alive scenario, the *best route's
    // attributes* must agree between the two engines.
    let p = pfx("10.50.0.0/16");
    for seed in 20..35u64 {
        let configs = random_net(seed);
        let net = NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap();
        let mut sim = Simulation::new_bgp(&net, vec![p], Some(0), None);
        sim.run().unwrap();
        let state = converge(&net, &[p], &HashSet::new());
        for n in net.topology.nodes() {
            let hoyan_best = sim
                .rib(n, p)
                .into_iter()
                .find(|v| sim.mgr.eval(v.cond, &[]))
                .map(|v| v.attrs);
            let concrete_best = state.best(n, p).map(|r| r.attrs.clone());
            assert_eq!(
                hoyan_best,
                concrete_best,
                "seed {seed}: best-route attrs diverge at {}",
                net.topology.name(n)
            );
        }
    }
}
