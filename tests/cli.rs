//! End-to-end tests of the `hoyan` CLI binary: generate a WAN to disk,
//! then drive every subcommand against the on-disk configs (this exercises
//! the full text → parse → verify pipeline exactly as an operator would).

use std::process::Command;

fn hoyan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hoyan"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hoyan-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_verify_scope_racing_equiv() {
    let dir = tempdir("main");
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("CR0x0.cfg").exists());

    let out = hoyan()
        .args([
            "verify",
            dir.to_str().unwrap(),
            "--prefix",
            "10.0.0.0/24",
            "--device",
            "CR1x0",
            "--k",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reachable now:          true"), "{stdout}");

    let out = hoyan()
        .args(["scope", dir.to_str().unwrap(), "--prefix", "10.0.0.0/24"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("devices hold a route"));

    let out = hoyan()
        .args(["racing", dir.to_str().unwrap(), "--prefix", "10.0.0.0/24"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ambiguous=false"));

    let out = hoyan()
        .args(["equiv", dir.to_str().unwrap(), "--a", "CR0x0", "--b", "CR0x1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("equivalent"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_rejects_ip_conflict() {
    let before = tempdir("audit-before");
    let after = tempdir("audit-after");
    for d in [&before, &after] {
        let out = hoyan()
            .args(["gen", d.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    // Introduce an IP conflict in the after snapshot.
    let victim = after.join("DC1x0.cfg");
    let text = std::fs::read_to_string(&victim).unwrap();
    let text = text.replace("router bgp 65001\n", "router bgp 65001\n  network 10.0.0.0/24\n");
    std::fs::write(&victim, text).unwrap();

    let out = hoyan()
        .args([
            "audit",
            before.to_str().unwrap(),
            after.to_str().unwrap(),
            "--k",
            "1",
            "--prefix",
            "10.0.0.0/24",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "conflicting update must be rejected");
    assert!(String::from_utf8_lossy(&out.stdout).contains("IpConflict"));

    // Identical snapshots pass.
    let out = hoyan()
        .args([
            "audit",
            before.to_str().unwrap(),
            before.to_str().unwrap(),
            "--k",
            "1",
            "--prefix",
            "10.0.0.0/24",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASSED"));

    let _ = std::fs::remove_dir_all(&before);
    let _ = std::fs::remove_dir_all(&after);
}

#[test]
fn stats_json_export_has_required_keys() {
    let dir = tempdir("stats");
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success());

    let json_path = dir.join("stats.json");
    let out = hoyan()
        .args([
            "sweep",
            dir.to_str().unwrap(),
            "--k",
            "1",
            "--stats",
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // --stats prints the human-readable table after the command output.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("spans (total / max / count):"), "{stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    // Parses well enough: balanced structure and every required top-level
    // key of the schema present.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    for key in ["\"schema\"", "\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // Counters from every instrumented subsystem are present (zeroed when
    // the subcommand didn't exercise them).
    for sub in ["propagate.", "isis.", "verify.", "bdd.", "sat.", "tuner."] {
        assert!(json.contains(&format!("\"{sub}")), "missing {sub}* in:\n{json}");
    }
    // The sweep actually recorded work and span timings.
    assert!(!json.contains("\"propagate.runs\": 0"), "{json}");
    assert!(json.contains("\"verify.sweep\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_config_reports_file_and_line() {
    let dir = tempdir("bad");
    std::fs::write(dir.join("X.cfg"), "hostname X\nbogus command here\n").unwrap();
    let out = hoyan()
        .args(["scope", dir.to_str().unwrap(), "--prefix", "10.0.0.0/24"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("X.cfg") && err.contains("line 2"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_malformed_configs_are_reported_at_once() {
    let dir = tempdir("bad-many");
    std::fs::write(dir.join("GOOD.cfg"), "hostname GOOD\n").unwrap();
    std::fs::write(dir.join("X.cfg"), "hostname X\nbogus command here\n").unwrap();
    std::fs::write(dir.join("Y.cfg"), "hostname Y\ninterface eth0\n  bogus-stmt\n").unwrap();
    let out = hoyan()
        .args(["scope", dir.to_str().unwrap(), "--prefix", "10.0.0.0/24"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // One failing run must surface *every* bad file, not just the first.
    assert!(err.contains("X.cfg") && err.contains("line 2"), "{err}");
    assert!(err.contains("Y.cfg") && err.contains("line 3"), "{err}");
    assert!(err.contains("2 bad config file"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Makes a `dirA`/`dirB` pair: a generated tiny WAN and a copy with one
/// PE static-preference edit.
fn diff_pair(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let a = tempdir(&format!("{tag}-a"));
    let b = tempdir(&format!("{tag}-b"));
    let out = hoyan()
        .args(["gen", a.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    for entry in std::fs::read_dir(&a).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, b.join(p.file_name().unwrap())).unwrap();
    }
    let victim = b.join("PE0x0.cfg");
    let text = std::fs::read_to_string(&victim).unwrap();
    let edited = text.replace("preference 1", "preference 9");
    assert_ne!(edited, text, "tiny WAN PE0x0 must carry a pinning static");
    std::fs::write(&victim, edited).unwrap();
    (a, b)
}

#[test]
fn diff_classifies_families() {
    let (a, b) = diff_pair("diff");
    let out = hoyan()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap(), "--k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("~ PE0x0"), "{stdout}");
    assert!(stdout.contains("origins"), "{stdout}");
    assert!(stdout.contains("DIRTY"), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
    // A one-static edit must not dirty everything on the tiny WAN.
    assert!(stdout.contains("1 dirty"), "{stdout}");

    // Identical directories: no families classified, delta empty.
    let out = hoyan()
        .args(["diff", a.to_str().unwrap(), a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all clean"), "{stdout}");

    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn unparsable_numeric_flags_exit_with_usage_code_2() {
    let dir = tempdir("usage");
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let d = dir.to_str().unwrap();

    let cases: &[&[&str]] = &[
        &["sweep", d, "--threads", "nope"],
        &["sweep", d, "--k", "many"],
        &["sweep", d, "--family-node-budget", "1e9"],
        &["sweep", d, "--family-op-budget", "-5"],
        &["gen", d, "--seed", "0x2a"],
        // A flag present without a value must be a usage error, not a
        // silent fall-back to the default.
        &["sweep", d, "--threads"],
        &["sweep", d, "--k", "--threads", "2"],
        &["serve", d, "--workers", "0"],
    ];
    for args in cases {
        let out = hoyan().args(*args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2 (usage), got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage error:"), "{args:?}: {err}");
    }

    // Runtime failures (not operator typos) keep exit code 1.
    let out = hoyan()
        .args(["scope", "/nonexistent-hoyan-dir", "--prefix", "10.0.0.0/24"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_reports_renamed_device_as_add_plus_remove() {
    let (a, b) = diff_pair("rename");
    // Rename PE1x0 → PE9x0 everywhere in the target snapshot (file name,
    // hostname, and every neighbor's `peer`/session reference, so the
    // configs stay consistent): the device genuinely disappears from one
    // side and appears on the other.
    for entry in std::fs::read_dir(&b).unwrap() {
        let p = entry.unwrap().path();
        let text = std::fs::read_to_string(&p).unwrap();
        if text.contains("PE1x0") {
            std::fs::write(&p, text.replace("PE1x0", "PE9x0")).unwrap();
        }
    }
    std::fs::rename(b.join("PE1x0.cfg"), b.join("PE9x0.cfg")).unwrap();

    let out = hoyan()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("+ PE9x0 (added"), "{stdout}");
    assert!(stdout.contains("- PE1x0 (removed)"), "{stdout}");
    // The old bug: missing devices collapsed to `unwrap_or(0)` and
    // printed as an all-zero hash instead of being surfaced.
    assert!(!stdout.contains("hash 0000000000000000"), "{stdout}");
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn incremental_sweep_matches_fresh_sweep_output() {
    let (a, b) = diff_pair("basesweep");
    let fresh = hoyan()
        .args(["sweep", b.to_str().unwrap(), "--k", "1", "--threads", "2"])
        .output()
        .unwrap();
    assert!(fresh.status.success(), "{}", String::from_utf8_lossy(&fresh.stderr));
    let json_path = a.join("incr-stats.json");
    let incr = hoyan()
        .args([
            "sweep",
            b.to_str().unwrap(),
            "--baseline",
            a.to_str().unwrap(),
            "--k",
            "1",
            "--threads",
            "2",
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(incr.status.success(), "{}", String::from_utf8_lossy(&incr.stderr));
    let fresh_out = String::from_utf8_lossy(&fresh.stdout);
    let incr_out = String::from_utf8_lossy(&incr.stdout);
    assert!(incr_out.contains("recomputed"), "{incr_out}");
    // Everything below the summary line (the per-prefix fragility findings)
    // must be identical between the fresh and incremental sweeps.
    let body = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
    assert_eq!(body(&fresh_out), body(&incr_out));
    // The pinned metrics schema carries the new counters, with real values.
    let json = std::fs::read_to_string(&json_path).unwrap();
    for key in ["\"verify.families_recomputed\"", "\"verify.families_reused\""] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert!(!json.contains("\"verify.families_reused\": 0"), "{json}");
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}
