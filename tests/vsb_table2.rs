//! Integration: every Table 2 VSB class is detectable and localizable by
//! the behavior model tuner on its dedicated scenario.

use hoyan::config::Vendor;
use hoyan::device::{VsbKind, VsbProfile};
use hoyan::topogen::{all_scenarios, scenario};
use hoyan::tuner::{ModelRegistry, Validator};

/// Runs a scenario's check (control-plane or data-plane probe, whichever
/// the scenario defines) and reports whether the model *diverged* from the
/// ground-truth oracle.
fn diverges(s: &hoyan::topogen::VsbScenario, registry: &ModelRegistry) -> bool {
    let validator = Validator::new(s.configs.clone()).unwrap();
    match &s.probe {
        None => validator.check(registry, &s.family).unwrap().is_some(),
        Some(p) => !validator
            .check_probe(registry, &s.family, &p.src_device, p.dst)
            .unwrap(),
    }
}

#[test]
fn every_vsb_scenario_mismatches_under_the_naive_model() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::naive();
        let detected = match &s.probe {
            None => validator.check(&registry, &s.family).unwrap().is_some(),
            Some(p) => !validator
                .check_probe(&registry, &s.family, &p.src_device, p.dst)
                .unwrap(),
        };
        assert!(detected, "{:?}: naive model must diverge from the oracle", s.kind);
    }
}

#[test]
fn every_vsb_scenario_localizes_to_its_class_and_device() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::naive();
        let loc = match &s.probe {
            None => {
                let mismatch = validator.check(&registry, &s.family).unwrap().unwrap();
                validator
                    .localize(&registry, &mismatch, &s.family)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{:?}: localizable", s.kind))
            }
            Some(p) => validator
                .localize_probe(&registry, &s.family, &p.src_device, p.dst)
                .unwrap()
                .unwrap_or_else(|| panic!("{:?}: probe-localizable", s.kind)),
        };
        assert_eq!(loc.vsb, s.kind, "wrong VSB class for {:?}", s.kind);
        assert_eq!(loc.hostname, s.culprit, "wrong device for {:?}", s.kind);
    }
}

#[test]
fn ground_truth_model_is_clean_on_every_scenario() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::ground_truth();
        match &s.probe {
            None => assert!(
                validator.check(&registry, &s.family).unwrap().is_none(),
                "{:?}: truth model must match",
                s.kind
            ),
            Some(p) => assert!(
                validator
                    .check_probe(&registry, &s.family, &p.src_device, p.dst)
                    .unwrap(),
                "{:?}: truth probe must match",
                s.kind
            ),
        }
    }
}

/// Both dialects of every Table-2 axis, wrong side: start from the fully
/// correct registry and flip *only* the scenario's axis on the culprit's
/// vendor back to vendor A's default. The model is now wrong about exactly
/// one behavior switch — in the dialect direction the naive model never
/// exercises — and the scenario must expose it.
#[test]
fn single_axis_regression_from_truth_is_detected_on_every_axis() {
    let default_dialect = VsbProfile::ground_truth(Vendor::A);
    for s in all_scenarios() {
        let mut registry = ModelRegistry::ground_truth();
        // Every scenario's culprit is a vendor-B device, and B differs from
        // A on all eight axes, so this flip always changes the model.
        registry.apply_patch(Vendor::B, s.kind, &default_dialect);
        assert!(
            diverges(&s, &registry),
            "{:?}: regressing only this axis to the vendor-A dialect must be detected",
            s.kind
        );
    }
}

/// Both dialects of every Table-2 axis, right side: start from the naive
/// registry (all eight axes wrong for vendor B) and patch *only* the
/// scenario's axis to the truth. Each scenario isolates its own axis, so
/// correcting that single switch must make the scenario clean even though
/// the other seven remain wrong.
#[test]
fn patching_only_the_scenario_axis_fixes_it_on_every_axis() {
    let truth_b = VsbProfile::ground_truth(Vendor::B);
    for s in all_scenarios() {
        let mut registry = ModelRegistry::naive();
        registry.apply_patch(Vendor::B, s.kind, &truth_b);
        assert!(
            !diverges(&s, &registry),
            "{:?}: the scenario must isolate its axis — one correct patch makes it clean",
            s.kind
        );
        assert_eq!(registry.patches(), &[(Vendor::B, s.kind)]);
    }
}

/// The two dialect values per axis really are distinct model states: for
/// every axis, vendor A's default and vendor B's behavior disagree, and a
/// registry holding either value is clean against an oracle running the
/// same value (tested via the ground-truth registry above) and dirty
/// against the opposite one (tested via the naive registry).
#[test]
fn every_axis_has_two_distinct_dialects() {
    let a = VsbProfile::ground_truth(Vendor::A);
    let b = VsbProfile::ground_truth(Vendor::B);
    let diff = a.diff(&b);
    assert_eq!(diff.len(), VsbKind::ALL.len(), "A and B must disagree on all axes");
    for kind in VsbKind::ALL {
        assert!(diff.contains(&kind), "{kind:?} missing from the A/B dialect diff");
        // Flipping one axis and flipping it back is the identity.
        let mut m = a;
        m.apply_patch(kind, &b);
        assert_eq!(m.diff(&a), vec![kind]);
        m.apply_patch(kind, &a);
        assert_eq!(m, a);
    }
}

#[test]
fn patching_one_scenario_fixes_it() {
    let s = scenario(VsbKind::RemovePrivateAs);
    let validator = Validator::new(s.configs.clone()).unwrap();
    let mut registry = ModelRegistry::naive();
    let outcome = validator.tune(&mut registry, &[s.family.clone()], 8).unwrap();
    assert!(outcome
        .localizations
        .iter()
        .any(|l| l.vsb == VsbKind::RemovePrivateAs));
    assert!(validator.check(&registry, &s.family).unwrap().is_none());
}
