//! Integration: every Table 2 VSB class is detectable and localizable by
//! the behavior model tuner on its dedicated scenario.

use hoyan::device::VsbKind;
use hoyan::topogen::{all_scenarios, scenario};
use hoyan::tuner::{ModelRegistry, Validator};

#[test]
fn every_vsb_scenario_mismatches_under_the_naive_model() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::naive();
        let detected = match &s.probe {
            None => validator.check(&registry, &s.family).unwrap().is_some(),
            Some(p) => !validator
                .check_probe(&registry, &s.family, &p.src_device, p.dst)
                .unwrap(),
        };
        assert!(detected, "{:?}: naive model must diverge from the oracle", s.kind);
    }
}

#[test]
fn every_vsb_scenario_localizes_to_its_class_and_device() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::naive();
        let loc = match &s.probe {
            None => {
                let mismatch = validator.check(&registry, &s.family).unwrap().unwrap();
                validator
                    .localize(&registry, &mismatch, &s.family)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{:?}: localizable", s.kind))
            }
            Some(p) => validator
                .localize_probe(&registry, &s.family, &p.src_device, p.dst)
                .unwrap()
                .unwrap_or_else(|| panic!("{:?}: probe-localizable", s.kind)),
        };
        assert_eq!(loc.vsb, s.kind, "wrong VSB class for {:?}", s.kind);
        assert_eq!(loc.hostname, s.culprit, "wrong device for {:?}", s.kind);
    }
}

#[test]
fn ground_truth_model_is_clean_on_every_scenario() {
    for s in all_scenarios() {
        let validator = Validator::new(s.configs.clone()).unwrap();
        let registry = ModelRegistry::ground_truth();
        match &s.probe {
            None => assert!(
                validator.check(&registry, &s.family).unwrap().is_none(),
                "{:?}: truth model must match",
                s.kind
            ),
            Some(p) => assert!(
                validator
                    .check_probe(&registry, &s.family, &p.src_device, p.dst)
                    .unwrap(),
                "{:?}: truth probe must match",
                s.kind
            ),
        }
    }
}

#[test]
fn patching_one_scenario_fixes_it() {
    let s = scenario(VsbKind::RemovePrivateAs);
    let validator = Validator::new(s.configs.clone()).unwrap();
    let mut registry = ModelRegistry::naive();
    let outcome = validator.tune(&mut registry, &[s.family.clone()], 8).unwrap();
    assert!(outcome
        .localizations
        .iter()
        .any(|l| l.vsb == VsbKind::RemovePrivateAs));
    assert!(validator.check(&registry, &s.family).unwrap().is_none());
}
