//! Incremental re-verification correctness: `Verifier::reverify` against a
//! dependency-indexed family cache must be *indistinguishable* (modulo
//! wall-clock timings) from a from-scratch `verify_all_routes` of the
//! post-change snapshot, for random single- and multi-edit perturbations of
//! a seeded topogen WAN, at any thread count. A separate test pins the
//! selectivity claim: a one-device origin change on a ≥40-router WAN
//! recomputes fewer than 30% of the families.

use hoyan::config::ConfigSnapshot;
use hoyan::core::{PrefixReport, Verifier};
use hoyan::device::VsbProfile;
use hoyan::topogen::{Perturbation, PerturbationPlan, WanSpec};
use hoyan_rt::prop;

/// Everything in a [`PrefixReport`] except the wall-clock timings, which
/// legitimately vary run to run.
fn stable_view(r: &PrefixReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        r.prefix,
        r.stats,
        r.max_cond_len,
        r.max_reach_formula_len,
        &r.scope,
        &r.fragile,
        r.family_head,
    )
}

fn assert_reports_equal(a: &[PrefixReport], b: &[PrefixReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: report counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            stable_view(x),
            stable_view(y),
            "{what}: report for {} differs",
            x.prefix
        );
    }
}

const K: u32 = 1;

/// Runs one baseline→perturbed cycle and checks the incremental sweep
/// against the fresh one, for both a serial and a parallel thread count.
fn check_roundtrip(wan_seed: u64, plan_seed: u64, edits: usize) {
    let wan = WanSpec::tiny(wan_seed).build();
    let plan = PerturbationPlan::generate(&wan, plan_seed, edits);
    let edited = plan.apply(&wan.configs);

    let snap_a = ConfigSnapshot::new(wan.configs.clone());
    let snap_b = ConfigSnapshot::new(edited.clone());
    let delta = snap_a.diff(&snap_b);

    let v_a = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    let (_, cache) = v_a.verify_all_routes_cached(K, 2).unwrap();

    let fresh = Verifier::new(edited.clone(), VsbProfile::ground_truth, Some(3))
        .unwrap()
        .verify_all_routes(K, 2)
        .unwrap()
        .reports;

    for threads in [1usize, 3] {
        let v_b = Verifier::new(edited.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
        let outcome = v_b.reverify(&delta, &cache, K, threads).unwrap();
        assert_eq!(
            outcome.recomputed + outcome.reused,
            outcome.classifications.len(),
            "classification bookkeeping (plan {plan:?})"
        );
        assert_reports_equal(
            &fresh,
            &outcome.reports,
            &format!("fresh vs reverify@{threads} threads (plan {plan:?})"),
        );
    }
}

#[test]
fn reverify_matches_fresh_sweep_on_random_perturbations() {
    prop::check_cases(12, "reverify_matches_fresh_sweep", |g| {
        let wan_seed = g.range_usize(0..1000) as u64;
        let plan_seed = g.u64();
        let edits = g.range_usize(1..3);
        check_roundtrip(wan_seed, plan_seed, edits);
    });
}

#[test]
fn reverify_handles_empty_delta() {
    let wan = WanSpec::tiny(5).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    assert!(delta.is_empty());
    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let (fresh, cache) = v.verify_all_routes_cached(K, 2).unwrap();
    let fresh = fresh.reports;
    let v2 = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v2.reverify(&delta, &cache, K, 2).unwrap();
    assert_eq!(outcome.recomputed, 0, "no family may be dirtied");
    assert_eq!(outcome.reused, cache.len());
    assert_reports_equal(&fresh, &outcome.reports, "identical snapshot replay");
}

#[test]
fn budget_change_dirties_everything() {
    let wan = WanSpec::tiny(5).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let (_, cache) = v.verify_all_routes_cached(K, 2).unwrap();
    let v2 = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v2.reverify(&delta, &cache, 2, 2).unwrap();
    assert_eq!(outcome.reused, 0, "a budget change must invalidate the cache");
    let fresh = Verifier::new(
        WanSpec::tiny(5).build().configs,
        VsbProfile::ground_truth,
        Some(3),
    )
    .unwrap()
    .verify_all_routes(2, 2)
    .unwrap()
    .reports;
    assert_reports_equal(&fresh, &outcome.reports, "budget-changed reverify");
}

#[test]
fn isis_budget_change_dirties_everything() {
    // Same sweep budget k, but the target verifier's IS-IS database is
    // conditioned at a different isis_k: cached reports come from a
    // differently-conditioned baseline and must not be replayed.
    let wan = WanSpec::tiny(5).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let (_, cache) = v.verify_all_routes_cached(K, 2).unwrap();
    let v2 = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(2)).unwrap();
    let outcome = v2.reverify(&delta, &cache, K, 2).unwrap();
    assert_eq!(outcome.reused, 0, "an isis_k change must invalidate the cache");
    let fresh = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(2))
        .unwrap()
        .verify_all_routes(K, 2)
        .unwrap()
        .reports;
    assert_reports_equal(&fresh, &outcome.reports, "isis-budget-changed reverify");
}

/// Role equivalence skips families that cannot distinguish the two devices:
/// the first call over a snapshot primes the unbounded dependency cache,
/// and subsequent calls skip untouched families — with identical verdicts.
#[test]
fn role_equivalence_skips_indistinguishable_families() {
    // Three regions. For the pair ISP0x0/ISP2x0 the first divergence sits at
    // the region-0 external family, *after* the region-1 customer family —
    // which reaches no ISP at all (every MAN egress-filters it). Once the
    // first call has primed that family's unbounded dependency trace, the
    // repeat check must skip it: it cannot distinguish the two ISPs.
    let spec = WanSpec {
        seed: 7,
        regions: 3,
        pes_per_region: 1,
        mans_per_region: 1,
        prefixes_per_pe: 1,
        extra_core_links: 1,
        block_prefixes: 1,
    };
    let wan = spec.build();
    let v = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    let skipped = hoyan::obs::counter("verify.equiv_families_skipped");
    let first = v.role_equivalence("ISP0x0", "ISP2x0").unwrap();
    let after_first = skipped.get();
    let second = v.role_equivalence("ISP0x0", "ISP2x0").unwrap();
    assert_eq!(first.equivalent, second.equivalent);
    assert_eq!(first.first_difference, second.first_difference);
    assert!(
        skipped.get() > after_first,
        "repeat equivalence checks must skip cached untouched families"
    );
    // The core pair is touched by everything; its checks must still agree
    // with themselves after the cache warmed up.
    let (a, b) = wan.equiv_pairs[0].clone();
    let x = v.role_equivalence(&a, &b).unwrap();
    let y = v.role_equivalence(&a, &b).unwrap();
    assert_eq!(x.equivalent, y.equivalent);
}

/// The ISSUE acceptance bar: on a ≥40-router WAN, a single-device origin
/// change recomputes <30% of the families and reproduces the fresh sweep
/// byte-identically.
#[test]
fn one_device_change_recomputes_under_30_percent() {
    let spec = WanSpec {
        seed: 42,
        regions: 3,
        pes_per_region: 4,
        mans_per_region: 2,
        prefixes_per_pe: 2,
        extra_core_links: 2,
        block_prefixes: 1,
    };
    let wan = spec.build();
    assert!(wan.device_count() >= 40, "need a ≥40-router WAN");

    let pe = wan.config("PE1x2").unwrap();
    let prefix = pe.static_routes[0].prefix;
    let plan = PerturbationPlan {
        perturbations: vec![Perturbation::StaticPreference {
            pe: "PE1x2".to_string(),
            prefix,
            preference: 5,
        }],
    };
    let edited = plan.apply(&wan.configs);
    let snap_a = ConfigSnapshot::new(wan.configs.clone());
    let snap_b = ConfigSnapshot::new(edited.clone());
    let delta = snap_a.diff(&snap_b);

    let v_a = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    let (_, cache) = v_a.verify_all_routes_cached(K, 4).unwrap();

    let v_b = Verifier::new(edited.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v_b.reverify(&delta, &cache, K, 4).unwrap();
    let total = outcome.recomputed + outcome.reused;
    assert!(total > 0);
    assert!(
        (outcome.recomputed as f64) < 0.30 * total as f64,
        "recomputed {}/{} families — not incremental enough",
        outcome.recomputed,
        total
    );

    let fresh = Verifier::new(edited, VsbProfile::ground_truth, Some(3))
        .unwrap()
        .verify_all_routes(K, 4)
        .unwrap()
        .reports;
    assert_reports_equal(&fresh, &outcome.reports, "selectivity run");
}
