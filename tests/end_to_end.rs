//! End-to-end integration: the full operator workflow on generated WANs —
//! update plans with injected errors must be caught by the pre-commit audit
//! (the machinery behind the Figure 7 campaign), and the tuner must recover
//! accuracy on a mixed-vendor WAN (the Figure 14 machinery).

use hoyan::audit::{audit_update, Finding};
use hoyan::device::VsbProfile;
use hoyan::topogen::{ErrorClass, UpdatePlan, WanSpec};
use hoyan::tuner::{ModelRegistry, Validator};

fn find_update(wan: &hoyan::topogen::Wan, class: ErrorClass) -> hoyan::topogen::InjectedUpdate {
    (0..500)
        .find_map(|seed| {
            let p = UpdatePlan::generate(wan, seed, 8, 1.0);
            p.updates.iter().find(|u| u.error == Some(class)).cloned()
        })
        .unwrap_or_else(|| panic!("generator yields {class:?}"))
}

fn audit_one(
    wan: &hoyan::topogen::Wan,
    update: hoyan::topogen::InjectedUpdate,
) -> hoyan::audit::AuditReport {
    let plan = UpdatePlan {
        updates: vec![update.clone()],
    };
    let after = plan.apply(wan).expect("update merges");
    let mut focus: Vec<_> = update.focus_prefix.into_iter().collect();
    if focus.is_empty() {
        focus.push(wan.customer_prefixes[0]);
    }
    audit_update(&wan.configs, &after, &focus, &wan.equiv_pairs, 1).expect("audit runs")
}

#[test]
fn wrong_static_preference_is_caught() {
    let wan = WanSpec::tiny(9).build();
    let update = find_update(&wan, ErrorClass::WrongStaticPreference);
    let report = audit_one(&wan, update);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::StaticShadowed { .. })),
        "expected StaticShadowed, got {:?}",
        report.findings
    );
}

#[test]
fn ip_conflict_is_caught() {
    let wan = WanSpec::small(9).build();
    let update = find_update(&wan, ErrorClass::IpConflict);
    let report = audit_one(&wan, update);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::IpConflict { .. })),
        "expected IpConflict, got {:?}",
        report.findings
    );
}

#[test]
fn equivalence_break_is_caught() {
    let wan = WanSpec::small(9).build();
    let update = find_update(&wan, ErrorClass::EquivalenceBreak);
    let report = audit_one(&wan, update);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(
                f,
                Finding::EquivalenceBroken { .. } | Finding::ReachabilityRegression { .. }
            )),
        "expected an equivalence/reachability finding, got {:?}",
        report.findings
    );
}

#[test]
fn benign_updates_pass_the_audit() {
    let wan = WanSpec::tiny(9).build();
    let plan = UpdatePlan::generate(&wan, 4, 6, 0.0);
    let after = plan.apply(&wan).expect("merges");
    let report = audit_update(
        &wan.configs,
        &after,
        &wan.customer_prefixes,
        &wan.equiv_pairs,
        1,
    )
    .expect("audit runs");
    assert!(report.passed(), "benign plan flagged: {:?}", report.findings);
}

#[test]
fn tuner_recovers_accuracy_on_mixed_vendor_wan() {
    let wan = WanSpec::tiny(13).build();
    let validator = Validator::new(wan.configs.clone()).unwrap();
    let mut registry = ModelRegistry::naive();
    let families: Vec<Vec<_>> = wan.customer_prefixes.iter().map(|p| vec![*p]).collect();
    let outcome = validator.tune(&mut registry, &families, 16).unwrap();
    let after_avg: f64 = outcome.accuracy_after.iter().map(|(_, a)| a).sum::<f64>()
        / outcome.accuracy_after.len().max(1) as f64;
    assert!(
        after_avg > 0.999,
        "accuracy after tuning {:?} (patches {:?})",
        after_avg,
        outcome.localizations
    );
    for fam in &families {
        assert!(validator.check(&registry, fam).unwrap().is_none());
    }
}

#[test]
fn oracle_and_verifier_agree_when_models_are_correct() {
    let wan = WanSpec::tiny(17).build();
    let verifier = hoyan::core::Verifier::new(
        wan.configs.clone(),
        VsbProfile::ground_truth,
        Some(2),
    )
    .unwrap();
    // Every customer prefix must be visible on every core router.
    for p in &wan.customer_prefixes {
        for cr in ["CR0x0", "CR0x1", "CR1x0", "CR1x1"] {
            let r = verifier.route_reachability(*p, cr, 1).unwrap();
            assert!(r.reachable_now, "{p} not at {cr}");
        }
    }
}
