//! Hermeticity guard: the workspace must build with **zero** registry
//! dependencies. Every dependency declared in any manifest has to be either
//! a `path = "..."` dependency or `workspace = true` resolving to a
//! path-only entry in `[workspace.dependencies]`. A registry dependency
//! (bare version string, `version = ...` without `path`, git, etc.) fails
//! this test before it can fail `cargo build --offline` in CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The dependency-declaring sections we audit.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// One parsed dependency declaration.
#[derive(Debug)]
struct Dep {
    name: String,
    section: String,
    has_path: bool,
    is_workspace_ref: bool,
}

/// A minimal TOML reader for the subset Cargo manifests use: `[section]`
/// headers, `key = "string"`, and `key = { inline, tables }`. It only needs
/// to answer "does this dependency declare `path`" — not full TOML.
fn parse_deps(text: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().trim_matches('"').to_string();
            continue;
        }
        let in_dep_section = DEP_SECTIONS.iter().any(|s| {
            // `[dependencies]`, `[workspace.dependencies]`, and target-
            // specific tables like `[target.'cfg(unix)'.dependencies]`.
            section == *s || section.ends_with(&format!(".{s}"))
        });
        if !in_dep_section {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let name = line[..eq].trim().trim_matches('"').to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line inline tables: keep consuming until braces balance.
        while value.starts_with('{') && value.matches('{').count() > value.matches('}').count() {
            let Some(next) = lines.next() else { break };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let has_path = value.starts_with('{') && inline_table_has_key(&value, "path");
        let is_workspace_ref = (value.starts_with('{')
            && inline_table_has_key(&value, "workspace"))
            || value == "true" && name.ends_with(".workspace");
        deps.push(Dep {
            name: name.trim_end_matches(".workspace").to_string(),
            section: section.clone(),
            has_path,
            is_workspace_ref,
        });
    }
    deps
}

fn strip_comment(line: &str) -> &str {
    // Good enough for Cargo.toml: none of ours embed '#' inside strings.
    line.split('#').next().unwrap_or("")
}

fn inline_table_has_key(table: &str, key: &str) -> bool {
    table
        .trim_start_matches('{')
        .trim_end_matches('}')
        .split(',')
        .any(|kv| {
            kv.split('=')
                .next()
                .map(|k| k.trim() == key)
                .unwrap_or(false)
        })
}

fn manifest_paths() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut paths = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates/ exists") {
        let dir = entry.expect("readable dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            paths.push(manifest);
        }
    }
    assert!(
        paths.len() >= 12,
        "expected the workspace's member manifests, got {paths:?}"
    );
    paths
}

#[test]
fn all_dependencies_are_path_only() {
    // Pass 1: collect [workspace.dependencies] so `workspace = true`
    // references can be resolved to their definition.
    let root_text =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml"))
            .expect("workspace manifest");
    let mut workspace_deps: BTreeMap<String, bool> = BTreeMap::new();
    for d in parse_deps(&root_text) {
        if d.section == "workspace.dependencies" {
            workspace_deps.insert(d.name.clone(), d.has_path);
        }
    }
    assert!(
        !workspace_deps.is_empty(),
        "workspace.dependencies should define the shared path deps"
    );

    // Pass 2: audit every manifest.
    let mut violations = Vec::new();
    for manifest in manifest_paths() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        for d in parse_deps(&text) {
            if d.section == "workspace.dependencies" {
                if !d.has_path {
                    violations.push(format!(
                        "{}: workspace dep `{}` is not a path dependency",
                        manifest.display(),
                        d.name
                    ));
                }
                continue;
            }
            let ok = d.has_path
                || (d.is_workspace_ref && workspace_deps.get(&d.name).copied().unwrap_or(false));
            if !ok {
                violations.push(format!(
                    "{}: [{}] `{}` is not path-only (registry or git dependency?)",
                    manifest.display(),
                    d.section,
                    d.name
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found:\n{}",
        violations.join("\n")
    );
}

#[test]
fn banned_registry_crates_are_gone() {
    // The five crates the seed pulled from the registry must never return.
    const BANNED: [&str; 5] = ["rand", "proptest", "criterion", "crossbeam", "parking_lot"];
    for manifest in manifest_paths() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        for d in parse_deps(&text) {
            assert!(
                !BANNED.contains(&d.name.as_str()),
                "{}: banned registry crate `{}` reintroduced in [{}]",
                manifest.display(),
                d.name,
                d.section
            );
        }
    }
}

#[test]
fn rt_crate_is_std_only() {
    // `hoyan-rt` is the workspace's foundation layer (PRNG, prop harness,
    // bench harness, hasher); nothing below it exists, so every `use` in its
    // sources must resolve to `std`/`core`/`alloc` or the crate itself. This
    // is what lets higher layers (e.g. the BDD engine's `FxHashMap` tables)
    // lean on it without dragging in registry crates.
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/rt/src");
    let mut audited = Vec::new();
    for entry in std::fs::read_dir(&src).expect("crates/rt/src exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable source");
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let Some(rest) = line
                .strip_prefix("pub use ")
                .or_else(|| line.strip_prefix("use "))
            else {
                continue;
            };
            let root = rest
                .trim_start_matches("::")
                .split(&[':', ';', ' '][..])
                .next()
                .unwrap_or("");
            assert!(
                ["std", "core", "alloc", "crate", "self", "super"].contains(&root),
                "{}:{}: `{}` imports from `{root}`, but hoyan-rt must be std-only",
                path.display(),
                i + 1,
                line
            );
        }
        audited.push(
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string(),
        );
    }
    // The modules the workspace depends on must actually be in the audit —
    // in particular the hasher the BDD tables run on.
    for module in ["hash.rs", "rng.rs", "prop.rs", "bench.rs", "lib.rs"] {
        assert!(
            audited.iter().any(|f| f == module),
            "expected to audit crates/rt/src/{module}, found {audited:?}"
        );
    }
}

#[test]
fn core_and_logic_sources_are_panic_free() {
    // Quarantine only works if the engine under `catch_unwind` does not
    // *casually* panic: a panic loses the worker's warm BDD arena and turns
    // a recoverable `SimError` into a stringly-typed outcome. Non-test code
    // in the simulation core and the logic engines must therefore never use
    // `panic!` or `.unwrap()`. `.expect("...")` stays allowed — it documents
    // an invariant — as does `into_inner()`-based poisoned-mutex recovery.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    let mut audited = Vec::new();
    for dir in ["crates/core/src", "crates/logic/src", "src/bin"] {
        let mut stack = vec![root.join(dir)];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).expect("source dir exists") {
                let path = entry.expect("readable dir entry").path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                    continue;
                }
                let text = std::fs::read_to_string(&path).expect("readable source");
                audited.push(
                    path.file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or_default()
                        .to_string(),
                );
                for (i, raw) in text.lines().enumerate() {
                    // Unit tests live in a tail `#[cfg(test)] mod tests` per
                    // file; everything below the marker is test code.
                    if raw.contains("#[cfg(test)]") {
                        break;
                    }
                    let line = raw.split("//").next().unwrap_or("");
                    // Poisoned-mutex recovery (`unwrap_or_else(|p|
                    // p.into_inner())`) is the sanctioned non-panicking
                    // pattern and may share a line with `.unwrap_or_else`.
                    if line.contains("into_inner()") {
                        continue;
                    }
                    for needle in ["panic!(", ".unwrap()"] {
                        if line.contains(needle) {
                            violations.push(format!(
                                "{}:{}: `{needle}` in non-test code",
                                path.display(),
                                i + 1
                            ));
                        }
                    }
                }
            }
        }
    }
    assert!(audited.len() >= 17, "expected to audit the core/logic/bin sources");
    // Modules added since the floor was set must actually be in the walk —
    // the variable-ordering pass runs inside the same quarantine-covered
    // sweeps as the rest of the engine, the daemon holds the resident state
    // a panicking worker would orphan, and the CLI is the operator surface
    // where a panic masks the structured usage/run error split.
    for module in ["order.rs", "topology.rs", "network.rs", "propagate.rs", "serve.rs", "hoyan.rs"] {
        assert!(
            audited.iter().any(|f| f == module),
            "expected to audit {module}, found {audited:?}"
        );
    }
    assert!(
        violations.is_empty(),
        "panicking constructs in quarantine-covered code:\n{}",
        violations.join("\n")
    );
}

#[test]
fn parser_flags_registry_style_deps() {
    // Sanity-check the guard itself: it must catch the classic shapes.
    let bad = r#"
[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }
local = { path = "../local" }
shared.workspace = true
"#;
    let deps = parse_deps(bad);
    let find = |n: &str| deps.iter().find(|d| d.name == n).unwrap();
    assert!(!find("rand").has_path && !find("rand").is_workspace_ref);
    assert!(!find("serde").has_path);
    assert!(find("local").has_path);
    assert!(find("shared").is_workspace_ref);
}
