//! Determinism of the `--stats-json` export: for a fixed seeded workload,
//! the `counters` and `histograms` sections must be byte-identical across
//! repeated runs and across thread counts (they count *work*, which does not
//! depend on scheduling). Gauges and spans are exempt by contract — gauges
//! may reflect runtime configuration (e.g. `verify.fanout_threads`) and
//! spans carry wall-clock time.
//!
//! Each CLI invocation is a fresh process, so the process-wide registry
//! starts empty every time — no cross-run state to control for.

use std::process::Command;

fn hoyan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hoyan"))
}

/// The `"counters"` and `"histograms"` sections of the export, verbatim.
/// The exporter emits sections in a fixed order (counters, gauges,
/// histograms, spans), so slicing between the section keys is exact.
fn deterministic_sections(json: &str) -> String {
    let slice = |from: &str, to: &str| {
        let start = json
            .find(from)
            .unwrap_or_else(|| panic!("no {from} in:\n{json}"));
        let end = json
            .find(to)
            .unwrap_or_else(|| panic!("no {to} in:\n{json}"));
        &json[start..end]
    };
    let mut out = String::new();
    out.push_str(slice("\"counters\"", "\"gauges\""));
    out.push_str(slice("\"histograms\"", "\"spans\""));
    out
}

fn sweep_stats_json(dir: &std::path::Path, threads: &str, tag: &str) -> String {
    sweep_stats_json_ordered(dir, threads, tag, "registration")
}

/// Like [`sweep_stats_json`] but running the modular pipeline
/// (`--modular --abstraction <mode>`).
fn sweep_stats_json_modular(
    dir: &std::path::Path,
    threads: &str,
    tag: &str,
    abstraction: &str,
) -> String {
    let json_path = dir.join(format!("stats-{tag}.json"));
    let out = hoyan()
        .args([
            "sweep",
            dir.to_str().unwrap(),
            "--k",
            "1",
            "--threads",
            threads,
            "--modular",
            "--abstraction",
            abstraction,
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&json_path).unwrap()
}

fn sweep_stats_json_ordered(
    dir: &std::path::Path,
    threads: &str,
    tag: &str,
    order: &str,
) -> String {
    let json_path = dir.join(format!("stats-{tag}.json"));
    let out = hoyan()
        .args([
            "sweep",
            dir.to_str().unwrap(),
            "--k",
            "1",
            "--threads",
            threads,
            "--bdd-order",
            order,
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&json_path).unwrap()
}

#[test]
fn counters_are_identical_across_runs_and_thread_counts() {
    let dir = std::env::temp_dir().join(format!("hoyan-obs-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = hoyan()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--size",
            "tiny",
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let full = sweep_stats_json(&dir, "1", "t1");
    // Schema v2: the version marker, the flight-recorder drop counter, the
    // shared-base attribution counter and the family_cost section are all
    // pinned into every export.
    assert!(full.contains("\"schema\": 2,"), "{full}");
    assert!(full.contains("\"obs.events_dropped\""), "{full}");
    assert!(full.contains("\"verify.shared_base_ops\""), "{full}");
    assert!(full.contains("\"family_cost\""), "{full}");
    let baseline = deterministic_sections(&full);
    assert!(baseline.contains("\"propagate.runs\""), "{baseline}");
    // The ITE kernel's schema: the unified-cache and GC counters are pinned
    // into the export, the retired per-connective cache counters are not.
    for present in [
        "\"bdd.ops\"",
        "\"bdd.ite_cache_hits\"",
        "\"bdd.ite_cache_misses\"",
        "\"bdd.gc_runs\"",
        "\"bdd.nodes_reclaimed\"",
        "\"bdd.order.links\"",
        "\"bdd.order.passes\"",
        "\"bdd.shared_imports\"",
    ] {
        assert!(
            baseline.contains(present),
            "missing {present} in {baseline}"
        );
    }
    for retired in [
        "bdd.and_cache_hits",
        "bdd.and_cache_misses",
        "bdd.not_cache",
    ] {
        assert!(
            !baseline.contains(retired),
            "retired counter {retired} still exported"
        );
    }
    for (threads, tag) in [("1", "t1-again"), ("2", "t2"), ("4", "t4"), ("8", "t8")] {
        let got = deterministic_sections(&sweep_stats_json(&dir, threads, tag));
        assert_eq!(
            baseline, got,
            "counters/histograms must not depend on scheduling (threads={threads})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The modular pipeline's stage counters are pinned into the schema-v2
/// export — present (zeroed) even on monolithic sweeps — and, like every
/// counter, byte-identical across thread counts when the pipeline runs.
#[test]
fn modular_stage_counters_are_pinned_and_thread_invariant() {
    let dir = std::env::temp_dir().join(format!("hoyan-obs-mod-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Monolithic sweep: the counters exist in the schema, both zero, and
    // the region gauges are pinned too.
    let plain = sweep_stats_json(&dir, "1", "plain");
    assert!(
        plain.contains("\"verify.families_abstract_proved\": 0,"),
        "{plain}"
    );
    assert!(plain.contains("\"verify.families_refined\": 0,"), "{plain}");
    assert!(plain.contains("\"verify.regions\""), "{plain}");
    assert!(plain.contains("\"verify.region_boundary_links\""), "{plain}");

    // Modular prove-only sweep: every family carries provenance, so the
    // two stage counters must sum to the family count.
    let modular = sweep_stats_json_modular(&dir, "1", "mod-t1", "prove-only");
    let count = |json: &str, key: &str| -> u64 {
        let at = json.find(key).unwrap_or_else(|| panic!("no {key} in {json}"));
        json[at + key.len()..]
            .trim_start_matches([':', ' '])
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let proved = count(&modular, "\"verify.families_abstract_proved\"");
    let refined = count(&modular, "\"verify.families_refined\"");
    let families = count(&modular, "\"verify.families\"");
    assert_eq!(proved + refined, families, "{modular}");
    assert!(proved > 0, "abstract pass settled nothing on the fixture");

    // Thread-count invariance of the whole counter/histogram section, in
    // both prove-only and full mode.
    for mode in ["prove-only", "full"] {
        let baseline = deterministic_sections(&sweep_stats_json_modular(
            &dir,
            "1",
            &format!("{mode}-t1"),
            mode,
        ));
        for threads in ["2", "8"] {
            let got = deterministic_sections(&sweep_stats_json_modular(
                &dir,
                threads,
                &format!("{mode}-t{threads}"),
                mode,
            ));
            assert_eq!(
                baseline, got,
                "mode={mode}: counters must not depend on threads={threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Like [`sweep_stats_json`] but with `--schedule <schedule>`.
fn sweep_stats_json_scheduled(
    dir: &std::path::Path,
    threads: &str,
    tag: &str,
    schedule: &str,
) -> String {
    let json_path = dir.join(format!("stats-{tag}.json"));
    let out = hoyan()
        .args([
            "sweep",
            dir.to_str().unwrap(),
            "--k",
            "1",
            "--threads",
            threads,
            "--schedule",
            schedule,
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&json_path).unwrap()
}

/// `--schedule deps` plans its batches on the calling thread before any
/// worker starts, so `verify.sched_batches` (a counter) and the whole
/// counter/histogram section are byte-identical across 1/2/8 threads.
/// Work stealing *does* vary with the worker count — which is exactly why
/// `verify.sched_steals` is classed as a gauge and stays outside the
/// deterministic sections.
#[test]
fn deps_schedule_counters_are_thread_invariant() {
    let dir = std::env::temp_dir().join(format!("hoyan-obs-sched-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success());

    let full = sweep_stats_json_scheduled(&dir, "1", "deps-t1", "deps");
    // The planner ran and chunked the families into at least one batch; the
    // steal gauge is pinned into the schema (zero on a single worker).
    assert!(!full.contains("\"verify.sched_batches\": 0,"), "{full}");
    assert!(full.contains("\"verify.sched_batches\""), "{full}");
    assert!(full.contains("\"verify.sched_steals\""), "{full}");
    let baseline = deterministic_sections(&full);
    for threads in ["2", "8"] {
        let got = deterministic_sections(&sweep_stats_json_scheduled(
            &dir,
            threads,
            &format!("deps-t{threads}"),
            "deps",
        ));
        assert_eq!(
            baseline, got,
            "deps schedule: counters must not depend on threads={threads}"
        );
    }
    // Round-robin plans nothing: the batch counter stays zero there.
    let rr = sweep_stats_json_scheduled(&dir, "2", "rr-t2", "roundrobin");
    assert!(rr.contains("\"verify.sched_batches\": 0,"), "{rr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The determinism contract holds *per ordering* too: with `--bdd-order
/// dfs|bfs` the ordering pass runs and the per-worker shared-base import
/// count varies with the thread count, yet the exported counters and
/// histograms must stay byte-identical across 1/2/8 threads (the import's
/// tallies are excluded by design, and `bdd.shared_imports` counts
/// per-family cache hits, not per-worker attaches).
#[test]
fn counters_are_thread_invariant_under_each_ordering() {
    let dir = std::env::temp_dir().join(format!("hoyan-obs-ord-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = hoyan()
        .args(["gen", dir.to_str().unwrap(), "--size", "tiny", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success());

    for order in ["dfs", "bfs"] {
        let baseline = deterministic_sections(&sweep_stats_json_ordered(
            &dir,
            "1",
            &format!("{order}-t1"),
            order,
        ));
        // The ordering pass ran exactly once (one model build per sweep).
        assert!(
            baseline.contains("\"bdd.order.passes\": 1,"),
            "{order}: ordering pass not recorded in {baseline}"
        );
        assert!(
            baseline.contains("\"bdd.shared_imports\""),
            "{order}: shared-import counter missing"
        );
        for threads in ["2", "8"] {
            let got = deterministic_sections(&sweep_stats_json_ordered(
                &dir,
                threads,
                &format!("{order}-t{threads}"),
                order,
            ));
            assert_eq!(
                baseline, got,
                "order={order}: counters must not depend on threads={threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
