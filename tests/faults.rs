//! Fault-tolerant sweep semantics: per-family quarantine, deterministic
//! resource budgets, and the seeded fault-injection harness.
//!
//! The load-bearing claim is *thread-count invariance*: with a fault plan
//! armed, the quarantined set, the surviving reports and the counter deltas
//! (including the new `verify.families_quarantined` /
//! `verify.families_over_budget` pins) must be byte-identical at 1, 2 and 8
//! worker threads. Fault injection is process-global state, so every test
//! that arms a plan serializes on [`LOCK`] and clears the plan before
//! releasing it.

use std::collections::BTreeMap;
use std::sync::Mutex;

use hoyan::config::ConfigSnapshot;
use hoyan::core::{
    AbstractionMode, DirtyReason, FamilyBudget, FamilyOutcome, PrefixReport, SimError,
    SweepOptions, Verifier,
};
use hoyan::device::VsbProfile;
use hoyan::rt::fault::{self, FaultKind, FaultPlan};
use hoyan::topogen::WanSpec;

/// Fault plans are process-global; serialize the tests that arm them.
static LOCK: Mutex<()> = Mutex::new(());

const K: u32 = 1;

fn verifier() -> Verifier {
    let wan = WanSpec::tiny(9).build();
    Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap()
}

/// Everything in a report except the wall-clock timings, rendered to an
/// owned string so snapshots from different runs can be compared.
fn stable_view(r: &PrefixReport) -> String {
    format!(
        "{:?}",
        (
            r.prefix,
            r.stats,
            r.max_cond_len,
            r.max_reach_formula_len,
            &r.scope,
            &r.fragile,
            r.family_head,
        )
    )
}

/// `after - before`, per counter (new counters count from zero).
fn counter_deltas(
    before: &BTreeMap<&'static str, u64>,
    after: &BTreeMap<&'static str, u64>,
) -> BTreeMap<&'static str, u64> {
    after
        .iter()
        .map(|(k, v)| (*k, v - before.get(k).copied().unwrap_or(0)))
        .collect()
}

#[test]
fn quarantine_is_thread_count_invariant() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // One family of each failure mode: an injected error, injected budget
    // exhaustion (routed through the real op-budget machinery), and a panic
    // caught by the worker's `catch_unwind`.
    fault::install(
        FaultPlan::new()
            .at("verify.family", &[1], FaultKind::Error)
            .at("verify.family", &[2], FaultKind::OverBudget)
            .at("verify.family", &[3], FaultKind::Panic),
    );
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let v = verifier();
        let n = v.families().len();
        assert!(n >= 4, "need >= 4 families to plant 3 faults, got {n}");
        let before = hoyan::obs::counter_values();
        let swept = v.verify_all_routes(K, threads).unwrap();
        let deltas = counter_deltas(&before, &hoyan::obs::counter_values());
        assert_eq!(swept.quarantined.len(), 3, "threads={threads}");
        assert_eq!(deltas["verify.families_quarantined"], 3);
        assert_eq!(deltas["verify.families_over_budget"], 1);
        assert_eq!(deltas["verify.families"], (n - 3) as u64);
        let quarantined: Vec<String> = swept
            .quarantined
            .iter()
            .map(|q| format!("{}:{:?}:{}", q.index, q.prefixes, q.outcome))
            .collect();
        let reports: Vec<String> = swept.reports.iter().map(stable_view).collect();
        snapshots.push((threads, quarantined, reports, deltas));
    }
    fault::clear();
    let (_, q1, r1, d1) = &snapshots[0];
    for (threads, q, r, d) in &snapshots[1..] {
        assert_eq!(q, q1, "quarantined set differs at threads={threads}");
        assert_eq!(r, r1, "reports differ at threads={threads}");
        assert_eq!(d, d1, "counter deltas differ at threads={threads}");
    }
    // The panic was quarantined with its payload message, not re-thrown.
    let (_, q, _, _) = &snapshots[0];
    assert!(
        q.iter().any(|s| s.contains("injected fault: panic")),
        "panic payload should be captured: {q:?}"
    );
}

#[test]
fn fail_fast_surfaces_the_lowest_failing_index() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let opts = SweepOptions {
        fail_fast: true,
        ..SweepOptions::default()
    };
    // Two planted failures: whichever worker trips first, the surfaced
    // error must belong to family 0 — at any thread count.
    fault::install(FaultPlan::new().at("verify.family", &[0, 1], FaultKind::Error));
    for threads in [1usize, 8] {
        let err = verifier()
            .verify_all_routes_opts(K, threads, &opts)
            .unwrap_err();
        match err {
            SimError::Injected { site, index } => {
                assert_eq!((site, index), ("verify.family", 0), "threads={threads}");
            }
            other => panic!("expected the injected error, got {other}"),
        }
    }
    // A single late failure aborts too (today's pre-quarantine behavior).
    fault::install(FaultPlan::new().at("verify.family", &[2], FaultKind::Error));
    let err = verifier().verify_all_routes_opts(K, 2, &opts).unwrap_err();
    assert!(matches!(err, SimError::Injected { index: 2, .. }), "{err}");
    fault::clear();
}

#[test]
fn fail_fast_resumes_a_worker_panic() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::install(FaultPlan::new().at("verify.family", &[1], FaultKind::Panic));
    let opts = SweepOptions {
        fail_fast: true,
        ..SweepOptions::default()
    };
    let outcome = std::panic::catch_unwind(|| {
        let _ = verifier().verify_all_routes_opts(K, 2, &opts);
    });
    fault::clear();
    let payload = outcome.expect_err("fail-fast must re-raise the worker panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("injected fault: panic"), "payload: {msg}");
}

#[test]
fn op_budget_quarantines_deterministically() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear();
    // An absurdly small op cap: every family blows it, through the same
    // operation-counted check the injected OverBudget fault uses.
    let opts = SweepOptions {
        fail_fast: false,
        budget: FamilyBudget {
            max_ite_ops: Some(1),
            ..FamilyBudget::default()
        },
        ..SweepOptions::default()
    };
    let mut snapshots = Vec::new();
    for threads in [1usize, 8] {
        let v = verifier();
        let n = v.families().len();
        let before = hoyan::obs::counter_values();
        let swept = v.verify_all_routes_opts(K, threads, &opts).unwrap();
        let deltas = counter_deltas(&before, &hoyan::obs::counter_values());
        assert_eq!(swept.quarantined.len(), n, "threads={threads}");
        assert!(swept.reports.is_empty());
        assert!(swept
            .quarantined
            .iter()
            .all(|q| matches!(q.outcome, FamilyOutcome::OverBudget { .. })));
        assert_eq!(deltas["verify.families_over_budget"], n as u64);
        assert_eq!(deltas["verify.families_quarantined"], n as u64);
        let q: Vec<String> = swept
            .quarantined
            .iter()
            .map(|q| format!("{}:{:?}:{}", q.index, q.prefixes, q.outcome))
            .collect();
        snapshots.push((q, deltas));
    }
    assert_eq!(snapshots[0], snapshots[1]);
}

#[test]
fn node_budget_trips_on_tiny_caps() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear();
    let opts = SweepOptions {
        fail_fast: false,
        budget: FamilyBudget {
            max_live_nodes: Some(1),
            ..FamilyBudget::default()
        },
        ..SweepOptions::default()
    };
    let swept = verifier().verify_all_routes_opts(K, 2, &opts).unwrap();
    assert!(
        !swept.quarantined.is_empty(),
        "a 1-node arena cap must trip on real families"
    );
    assert!(swept
        .quarantined
        .iter()
        .all(|q| matches!(q.outcome, FamilyOutcome::OverBudget { .. })));
}

#[test]
fn reverify_retries_quarantined_families() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let wan = WanSpec::tiny(9).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    assert!(delta.is_empty());

    // Baseline sweep with one family quarantined: it must be missing from
    // the cache, not cached-as-failed.
    fault::install(FaultPlan::new().at("verify.family", &[1], FaultKind::Error));
    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let n = v.families().len();
    let (base, cache) = v.verify_all_routes_cached(K, 2).unwrap();
    fault::clear();
    assert_eq!(base.quarantined.len(), 1);
    assert_eq!(cache.len(), n - 1, "quarantined family must not be cached");

    // Healthy re-verify over an *empty* delta: the quarantined family is
    // the only dirty one, and the merged output matches a fresh sweep.
    let v2 = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v2.reverify(&delta, &cache, K, 2).unwrap();
    assert_eq!(outcome.recomputed, 1, "exactly the quarantined family");
    assert_eq!(outcome.reused, n - 1);
    assert!(outcome.quarantined.is_empty());

    let fresh = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3))
        .unwrap()
        .verify_all_routes(K, 2)
        .unwrap();
    assert!(fresh.quarantined.is_empty());
    let a: Vec<String> = fresh.reports.iter().map(stable_view).collect();
    let b: Vec<String> = outcome.reports.iter().map(stable_view).collect();
    assert_eq!(a, b, "retried family must reproduce the fresh sweep");
}

/// The modular pipeline's own fault site: an error, a budget breach or a
/// panic injected *during the abstract first pass* quarantines only that
/// family — its neighbors (same region or not) still complete, at any
/// thread count.
#[test]
fn abstract_stage_faults_quarantine_only_that_family() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let opts = SweepOptions {
        modular: true,
        abstraction: AbstractionMode::Full,
        ..SweepOptions::default()
    };
    fault::install(
        FaultPlan::new()
            .at("verify.abstract", &[1], FaultKind::Error)
            .at("verify.abstract", &[2], FaultKind::OverBudget)
            .at("verify.abstract", &[3], FaultKind::Panic),
    );
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let v = verifier();
        let n = v.families().len();
        assert!(n >= 4, "need >= 4 families to plant 3 faults, got {n}");
        let before = hoyan::obs::counter_values();
        let swept = v.verify_all_routes_opts(K, threads, &opts).unwrap();
        let deltas = counter_deltas(&before, &hoyan::obs::counter_values());
        assert_eq!(swept.quarantined.len(), 3, "threads={threads}");
        assert_eq!(deltas["verify.families_quarantined"], 3);
        assert_eq!(deltas["verify.families_over_budget"], 1);
        assert_eq!(deltas["verify.families"], (n - 3) as u64);
        // Completed families still carry provenance; quarantined ones don't.
        assert_eq!(swept.provenance.len(), n - 3, "threads={threads}");
        let injected = swept
            .quarantined
            .iter()
            .find(|q| q.index == 1)
            .expect("family 1 quarantined");
        match &injected.outcome {
            FamilyOutcome::Failed { reason } => {
                assert!(reason.contains("verify.abstract"), "{reason}")
            }
            other => panic!("expected injected failure, got {other}"),
        }
        assert!(
            matches!(
                swept.quarantined.iter().find(|q| q.index == 2).unwrap().outcome,
                FamilyOutcome::OverBudget { .. }
            ),
            "injected abstract-stage breach must route through the budget machinery"
        );
        let quarantined: Vec<String> = swept
            .quarantined
            .iter()
            .map(|q| format!("{}:{:?}:{}", q.index, q.prefixes, q.outcome))
            .collect();
        let reports: Vec<String> = swept.reports.iter().map(stable_view).collect();
        snapshots.push((threads, quarantined, reports, deltas));
    }
    fault::clear();
    let (_, q1, r1, d1) = &snapshots[0];
    for (threads, q, r, d) in &snapshots[1..] {
        assert_eq!(q, q1, "quarantined set differs at threads={threads}");
        assert_eq!(r, r1, "reports differ at threads={threads}");
        assert_eq!(d, d1, "counter deltas differ at threads={threads}");
    }
}

/// A family quarantined by an abstract-stage fault is retried by
/// `reverify` once the fault clears — on the exact path — and reproduces a
/// fresh sweep's reports.
#[test]
fn abstract_fault_reverify_retries_on_exact_path() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let wan = WanSpec::tiny(9).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    // Prove-only keeps cached reports byte-identical to exact ones, so the
    // reused families compare cleanly against a fresh monolithic sweep.
    let opts = SweepOptions {
        modular: true,
        abstraction: AbstractionMode::ProveOnly,
        ..SweepOptions::default()
    };
    fault::install(FaultPlan::new().at("verify.abstract", &[1], FaultKind::Error));
    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let n = v.families().len();
    let (base, cache) = v.verify_all_routes_cached_opts(K, 2, &opts).unwrap();
    fault::clear();
    assert_eq!(base.quarantined.len(), 1);
    assert_eq!(cache.len(), n - 1, "quarantined family must not be cached");

    let v2 = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v2.reverify(&delta, &cache, K, 2).unwrap();
    assert_eq!(outcome.recomputed, 1, "exactly the quarantined family");
    assert_eq!(outcome.reused, n - 1);
    assert!(outcome.quarantined.is_empty());

    let fresh = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3))
        .unwrap()
        .verify_all_routes(K, 2)
        .unwrap();
    let a: Vec<String> = fresh.reports.iter().map(stable_view).collect();
    let b: Vec<String> = outcome.reports.iter().map(stable_view).collect();
    assert_eq!(a, b, "exact-path retry must reproduce the fresh sweep");
}

/// Regression: a family classified *clean* whose cache entry has drifted
/// away (snapshot truncation, a buggy eviction — simulated here by the
/// `verify.cache_lookup` fault site) used to panic the whole reverify with
/// "clean family must be cached". It must instead demote the family to
/// [`DirtyReason::NotCached`] and re-simulate it like any other dirty
/// family.
#[test]
fn clean_family_missing_from_cache_is_recomputed_not_a_panic() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear();
    let wan = WanSpec::tiny(9).build();
    let snap = ConfigSnapshot::new(wan.configs.clone());
    let delta = snap.diff(&snap);
    assert!(delta.is_empty(), "empty delta: every family classifies clean");

    let v = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let n = v.families().len();
    let (base, cache) = v.verify_all_routes_cached(K, 2).unwrap();
    assert!(base.quarantined.is_empty());
    assert_eq!(cache.len(), n, "healthy baseline caches every family");

    // The cache lookup for clean family 1 comes back empty.
    fault::install(FaultPlan::new().at("verify.cache_lookup", &[1], FaultKind::Error));
    let v2 = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let outcome = v2.reverify(&delta, &cache, K, 2).unwrap();
    fault::clear();

    assert_eq!(outcome.recomputed, 1, "exactly the evicted family");
    assert_eq!(outcome.reused, n - 1);
    assert!(outcome.quarantined.is_empty());
    let demoted: Vec<_> = outcome
        .classifications
        .iter()
        .filter(|(_, reason)| *reason == Some(DirtyReason::NotCached))
        .collect();
    assert_eq!(demoted.len(), 1, "family 1 must be demoted to NotCached");
    // The recomputed family lands back in the refreshed cache…
    assert_eq!(outcome.cache.len(), n);
    // …and the merged reports match a fresh sweep exactly.
    let fresh = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3))
        .unwrap()
        .verify_all_routes(K, 2)
        .unwrap();
    let a: Vec<String> = fresh.reports.iter().map(stable_view).collect();
    let b: Vec<String> = outcome.reports.iter().map(stable_view).collect();
    assert_eq!(a, b, "drift recovery must reproduce the fresh sweep");
}

#[test]
fn unknown_devices_are_errors_not_panics() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear();
    let wan = WanSpec::tiny(9).build();
    let prefix = wan.customer_prefixes[0];
    let v = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(3)).unwrap();
    match v.route_reachability(prefix, "NO-SUCH-ROUTER", K) {
        Err(SimError::UnknownDevice(d)) => assert_eq!(d, "NO-SUCH-ROUTER"),
        other => panic!("expected UnknownDevice, got {other:?}"),
    }
    match v.router_failure_tolerance(prefix, "NO-SUCH-ROUTER") {
        Err(SimError::UnknownDevice(_)) => {}
        other => panic!("expected UnknownDevice, got {other:?}"),
    }
    match v.role_equivalence("NO-SUCH-ROUTER", "CR1x0") {
        Err(SimError::UnknownDevice(_)) => {}
        other => panic!("expected UnknownDevice, got {other:?}"),
    }
}
