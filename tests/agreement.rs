//! The central correctness invariant of the reproduction: Hoyan's
//! conditioned simulation must agree, scenario for scenario, with the
//! enumerative Batfish-like baseline (which shares only the device models)
//! on randomly generated WANs — and the formula-based and model-checking
//! baselines must agree on the aggregate verdicts.

use std::collections::HashSet;

use hoyan::baselines::{concrete::converge, failure_sets, BatfishLike, MinesweeperLike, PlanktonLike};
use hoyan::core::{NetworkModel, Simulation};
use hoyan::device::VsbProfile;
use hoyan::nettypes::LinkId;
use hoyan::topogen::WanSpec;

fn build_net(seed: u64) -> (hoyan::topogen::Wan, NetworkModel) {
    let wan = WanSpec::tiny(seed).build();
    let net = NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth).unwrap();
    (wan, net)
}

#[test]
fn hoyan_agrees_with_concrete_simulation_on_every_scenario() {
    for seed in [1u64, 2, 3] {
        let (wan, net) = build_net(seed);
        // IS-IS database for iBGP session conditions.
        let isis = hoyan::core::IsisDb::build(&net, None).unwrap();
        for p in &wan.customer_prefixes {
            let mut sim = Simulation::new_bgp(&net, vec![*p], None, Some(&isis));
            sim.run().unwrap();
            for dead_links in failure_sets(net.topology.link_count(), 2) {
                let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
                let state = converge(&net, &[*p], &dead);
                let mut assign = vec![true; net.topology.link_count()];
                for l in &dead {
                    assign[l.0 as usize] = false;
                }
                for n in net.topology.nodes() {
                    let cond = sim.reach_cond(n, *p);
                    let hoyan_reach = sim.mgr.eval(cond, &assign);
                    let concrete_reach = state.has_route(n, *p);
                    assert_eq!(
                        hoyan_reach,
                        concrete_reach,
                        "seed {seed}, prefix {p}, node {}, dead {:?}",
                        net.topology.name(n),
                        dead_links
                    );
                }
            }
        }
    }
}

/// The agreement invariant must survive variable reordering: under DFS and
/// BFS orderings a link's BDD variable is no longer its `LinkId`, so every
/// assignment goes through `NetworkModel::link_var` — and the conditioned
/// simulation must still match the enumerative baseline scenario for
/// scenario.
#[test]
fn ordered_models_agree_with_concrete_simulation() {
    use hoyan::logic::BddOrdering;
    let wan = WanSpec::tiny(7).build();
    for ordering in [BddOrdering::Dfs, BddOrdering::Bfs] {
        let net = NetworkModel::from_configs_ordered(
            wan.configs.clone(),
            VsbProfile::ground_truth,
            ordering,
        )
        .unwrap();
        assert!(
            !net.order.is_identity(),
            "tiny WANs must actually be reordered by {ordering:?}"
        );
        let isis = hoyan::core::IsisDb::build(&net, None).unwrap();
        let p = wan.customer_prefixes[0];
        let mut sim = Simulation::new_bgp(&net, vec![p], None, Some(&isis));
        sim.run().unwrap();
        for dead_links in failure_sets(net.topology.link_count(), 2) {
            let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
            let state = converge(&net, &[p], &dead);
            let mut assign = vec![true; net.topology.link_count()];
            for l in &dead {
                assign[net.link_var(*l) as usize] = false;
            }
            for n in net.topology.nodes() {
                let cond = sim.reach_cond(n, p);
                assert_eq!(
                    sim.mgr.eval(cond, &assign),
                    state.has_route(n, p),
                    "ordering {ordering:?}, node {}, dead {dead_links:?}",
                    net.topology.name(n)
                );
            }
        }
    }
}

#[test]
fn all_four_verifiers_agree_on_k_failure_verdicts() {
    let (wan, net) = build_net(4);
    let isis = hoyan::core::IsisDb::build(&net, None).unwrap();
    let p = wan.customer_prefixes[0];
    for k in 0..=2usize {
        for name in ["CR0x0", "CR1x1", "MAN1x0", "PE1x0"] {
            let node = net.topology.node(name).unwrap();

            // Hoyan.
            let mut sim = Simulation::new_bgp(&net, vec![p], Some(k as u32), Some(&isis));
            sim.run().unwrap();
            let v = sim.reach_cond(node, p);
            let hoyan_verdict = sim.mgr.min_failures_to_falsify(v) > k as u32;

            // Batfish-like.
            let mut bf = BatfishLike::new(&net);
            let bf_verdict = bf.route_reachable_under_k(p, node, k).unwrap();

            // Plankton-like.
            let mut pl = PlanktonLike::new(&net);
            let pl_verdict = pl.route_reachable_under_k(p, node, k).unwrap();

            assert_eq!(hoyan_verdict, bf_verdict, "hoyan vs batfish at {name}, k={k}");
            assert_eq!(bf_verdict, pl_verdict, "batfish vs plankton at {name}, k={k}");
        }
    }
}

#[test]
fn minesweeper_agrees_where_its_encoding_is_exact() {
    // The Minesweeper-like iBGP encoding approximates the session condition
    // with the shortest IGP path, so compare on a prefix whose propagation
    // is pure eBGP: the external ISP prefix toward its own MAN.
    let (wan, net) = build_net(5);
    let p = wan.external_prefixes[0];
    let man = net.topology.node("MAN0x0").unwrap();
    let mut ms = MinesweeperLike::new(&net);
    let mut bf = BatfishLike::new(&net);
    for k in 0..=1usize {
        let ms_v = ms.route_reachable_under_k(p, man, k);
        let bf_v = bf.route_reachable_under_k(p, man, k).unwrap();
        assert_eq!(ms_v, bf_v, "k={k}");
    }
}

#[test]
fn packet_reachability_agrees_with_concrete_walk() {
    let (wan, net) = build_net(6);
    let isis = hoyan::core::IsisDb::build(&net, None).unwrap();
    let p = wan.customer_prefixes[0];
    let src = net.topology.node("MAN1x0").unwrap();
    let packet = hoyan::device::Packet {
        src: "198.18.0.1".parse().unwrap(),
        dst: p.network(),
        proto: hoyan::config::AclProto::Tcp,
    };
    let mut sim = Simulation::new_bgp(&net, vec![p], None, Some(&isis));
    sim.run().unwrap();
    let walk = hoyan::core::packet_reach(&mut sim, &net, Some(&isis), src, p, packet, None);

    // All-alive: the packet must arrive (route exists and FIBs resolve).
    assert!(sim.mgr.eval(walk.reach_cond, &[]));
    // Killing the destination DC's uplink must break it.
    let gw = net.topology.node("DC0x0").unwrap();
    let pe = net.topology.node("PE0x0").unwrap();
    let uplink = net.topology.link_between(gw, pe).unwrap();
    let mut assign = vec![true; net.topology.link_count()];
    assign[uplink.0 as usize] = false;
    assert!(!sim.mgr.eval(walk.reach_cond, &assign));
}
