//! ECMP extension tests: equal-cost IGP alternatives during packet
//! next-hop resolution, under the three semantics of
//! [`hoyan::core::EcmpMode`]. (The paper defers ECMP reasoning to future
//! work; this reproduction implements it.)

use hoyan::config::parse_config;
use hoyan::core::{packet_reach_ecmp, EcmpMode, IsisDb, NetworkModel, Simulation};
use hoyan::device::{Packet, VsbProfile};
use hoyan::nettypes::pfx;

/// PE learns the prefix over eBGP and relays it over iBGP to CR with
/// next-hop-self; CR resolves PE via *two equal-cost* IGP paths (M1/M2).
/// M1 carries a data-plane ACL dropping UDP — so the two equal-cost copies
/// behave differently, which is exactly what the modes must distinguish.
fn ecmp_net() -> NetworkModel {
    let texts = [
        concat!(
            "hostname E\ninterface e0\n peer PE\n",
            "router bgp 900\n network 10.3.0.0/24\n neighbor PE remote-as 100\n",
        )
        .to_string(),
        concat!(
            "hostname PE\ninterface e0\n peer E\ninterface e1\n peer M1\ninterface e2\n peer M2\n",
            "router bgp 100\n neighbor E remote-as 900\n neighbor CR remote-as 100\n neighbor CR next-hop-self\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname M1\ninterface e0\n peer PE\ninterface e1\n peer CR\n access-group NOUDP in\n",
            "access-list NOUDP deny udp any 10.3.0.0/24\naccess-list NOUDP permit ip any any\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname M2\ninterface e0\n peer PE\ninterface e1\n peer CR\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname CR\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
            "router bgp 100\n neighbor PE remote-as 100\n",
            "router isis\n area 1\n",
        )
        .to_string(),
    ];
    let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
    NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
}

fn reach_under(mode: EcmpMode, proto: hoyan::config::AclProto) -> bool {
    let net = ecmp_net();
    let isis = IsisDb::build(&net, Some(2)).unwrap();
    let p = pfx("10.3.0.0/24");
    let mut sim = Simulation::new_bgp(&net, vec![p], Some(2), Some(&isis));
    sim.run().unwrap();
    let cr = net.topology.node("CR").unwrap();
    let packet = Packet {
        src: "192.0.2.1".parse().unwrap(),
        dst: "10.3.0.9".parse().unwrap(),
        proto,
    };
    let walk = packet_reach_ecmp(&mut sim, &net, Some(&isis), cr, p, packet, Some(2), mode);
    sim.mgr.eval(walk.reach_cond, &[])
}

#[test]
fn any_path_succeeds_through_the_clean_copy() {
    // UDP is dropped on the M1 leg but the M2 copy delivers.
    assert!(reach_under(EcmpMode::AnyPath, hoyan::config::AclProto::Udp));
}

#[test]
fn all_paths_fails_because_one_leg_blackholes() {
    assert!(!reach_under(EcmpMode::AllPaths, hoyan::config::AclProto::Udp));
}

#[test]
fn all_modes_agree_when_both_legs_are_clean() {
    // TCP passes the ACL, so every mode delivers.
    for mode in [EcmpMode::ExclusiveBest, EcmpMode::AnyPath, EcmpMode::AllPaths] {
        assert!(
            reach_under(mode, hoyan::config::AclProto::Tcp),
            "mode {mode:?} must deliver TCP"
        );
    }
}

#[test]
fn exclusive_best_is_deterministic_single_path() {
    // The default mode picks one deterministic alternative; with the ACL on
    // one leg the verdict depends on which leg ranks first, but it must be
    // stable across runs.
    let a = reach_under(EcmpMode::ExclusiveBest, hoyan::config::AclProto::Udp);
    let b = reach_under(EcmpMode::ExclusiveBest, hoyan::config::AclProto::Udp);
    assert_eq!(a, b);
}
