//! Determinism regression: `verify_all_routes` must produce an identical
//! report list regardless of how many worker threads process the prefix
//! families. The implementation guarantees this by publishing each family's
//! reports atomically and sorting the final list by prefix; this test pins
//! the guarantee on a seeded topogen WAN.

use hoyan::core::{
    AbstractionMode, FamilyOutcome, PrefixReport, StreamedFamily, SweepOptions, SweepSchedule,
    Verifier,
};
use hoyan::device::VsbProfile;
use hoyan::logic::BddOrdering;
use hoyan::topogen::WanSpec;

/// Everything in a [`PrefixReport`] except the wall-clock timings, which
/// legitimately vary run to run.
fn stable_view(r: &PrefixReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        r.prefix,
        r.stats,
        r.max_cond_len,
        r.max_reach_formula_len,
        &r.scope,
        &r.fragile,
        r.family_head,
    )
}

fn assert_reports_equal(a: &[PrefixReport], b: &[PrefixReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: report counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(stable_view(x), stable_view(y), "{what}: report for {} differs", x.prefix);
    }
}

#[test]
fn verify_all_routes_is_thread_count_invariant() {
    let wan = WanSpec::tiny(9).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let serial = verifier.verify_all_routes(1, 1).unwrap().reports;
    assert!(!serial.is_empty(), "sweep must cover some prefixes");
    let parallel = verifier.verify_all_routes(1, 8).unwrap().reports;
    assert_reports_equal(&serial, &parallel, "threads=1 vs threads=8");
    // Oversubscription (more threads than families) must change nothing.
    let oversub = verifier.verify_all_routes(1, 64).unwrap().reports;
    assert_reports_equal(&serial, &oversub, "threads=1 vs threads=64");
}

/// Everything in a [`PrefixReport`] except timings *and* formula-size
/// fields. Sizes (`max_cond_len`, `max_reach_formula_len`,
/// `stats.max_formula_len`) legitimately depend on the variable ordering —
/// that is the point of reordering — but verdicts, scopes and pruning
/// *counts* are semantic and must not.
fn ordering_invariant_view(r: &PrefixReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        r.prefix,
        (
            r.stats.delivered,
            r.stats.dropped_policy,
            r.stats.dropped_over_k,
            r.stats.dropped_impossible,
        ),
        &r.scope,
        &r.fragile,
        r.family_head,
    )
}

/// Sweeps under every [`BddOrdering`] × {1, 2, 8} threads: within an
/// ordering the full stable report (sizes included) is thread-count
/// invariant, and across orderings the size-masked report is identical.
#[test]
fn sweep_verdicts_are_ordering_and_thread_invariant() {
    let wan = WanSpec::tiny(13).build();
    let mut baseline: Option<Vec<PrefixReport>> = None;
    for ordering in BddOrdering::ALL {
        let verifier = Verifier::new_ordered(
            wan.configs.clone(),
            VsbProfile::ground_truth,
            Some(1),
            ordering,
        )
        .unwrap();
        let serial = verifier.verify_all_routes(1, 1).unwrap().reports;
        assert!(!serial.is_empty(), "{ordering}: sweep must cover some prefixes");
        for threads in [2usize, 8] {
            let parallel = verifier.verify_all_routes(1, threads).unwrap().reports;
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("{ordering}: threads=1 vs threads={threads}"),
            );
        }
        match &baseline {
            None => baseline = Some(serial),
            Some(base) => {
                assert_eq!(base.len(), serial.len(), "{ordering}: report counts differ");
                for (x, y) in base.iter().zip(&serial) {
                    assert_eq!(
                        ordering_invariant_view(x),
                        ordering_invariant_view(y),
                        "{ordering}: verdicts for {} depend on the variable ordering",
                        x.prefix
                    );
                }
            }
        }
    }
}

/// The modular pipeline's headline soundness pin: with the default
/// `prove-only` abstraction, `sweep --modular` must produce a report list
/// *byte-identical* (modulo wall-clock timings) to the monolithic sweep —
/// at 1, 2 and 8 threads. The abstract first pass may only ever add
/// provenance, never change a verdict, a scope, a pruning count or a
/// formula size.
#[test]
fn modular_prove_only_matches_monolithic_at_any_thread_count() {
    let wan = WanSpec::tiny(9).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let monolithic = verifier.verify_all_routes(1, 1).unwrap();
    assert!(!monolithic.reports.is_empty());
    assert!(monolithic.provenance.is_empty(), "monolithic sweeps carry no provenance");
    let opts = SweepOptions {
        modular: true,
        abstraction: AbstractionMode::ProveOnly,
        ..SweepOptions::default()
    };
    for threads in [1usize, 2, 8] {
        let modular = verifier.verify_all_routes_opts(1, threads, &opts).unwrap();
        assert_reports_equal(
            &monolithic.reports,
            &modular.reports,
            &format!("modular prove-only, threads={threads}"),
        );
        assert_eq!(
            monolithic.quarantined, modular.quarantined,
            "quarantined sets must match (threads={threads})"
        );
        // Provenance covers every completed family and is index-ordered.
        assert_eq!(modular.provenance.len(), verifier.families().len());
        assert!(modular
            .provenance
            .windows(2)
            .all(|w| w[0].index < w[1].index));
    }
}

/// `--abstraction full` skips the exact stage for proved families, so the
/// formula-size/stat fields may legitimately differ — but the *verdicts*
/// (scope, fragile sets) must match the monolithic sweep, and the whole
/// report must be thread-count invariant.
#[test]
fn modular_full_verdicts_match_and_are_thread_invariant() {
    let wan = WanSpec::tiny(13).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let monolithic = verifier.verify_all_routes(1, 1).unwrap().reports;
    let opts = SweepOptions {
        modular: true,
        abstraction: AbstractionMode::Full,
        ..SweepOptions::default()
    };
    let serial = verifier.verify_all_routes_opts(1, 1, &opts).unwrap();
    assert_eq!(monolithic.len(), serial.reports.len());
    for (m, f) in monolithic.iter().zip(&serial.reports) {
        assert_eq!(m.prefix, f.prefix);
        assert_eq!(m.scope, f.scope, "full-mode scope differs for {}", m.prefix);
        assert_eq!(m.fragile, f.fragile, "full-mode fragility differs for {}", m.prefix);
    }
    // At least part of this fixture must actually exercise the fast path,
    // otherwise the test proves nothing about synthesized reports.
    assert!(
        serial
            .provenance
            .iter()
            .any(|p| p.outcome == FamilyOutcome::ProvedAbstract),
        "no family was abstract-proved on the fixture"
    );
    for threads in [2usize, 8] {
        let parallel = verifier.verify_all_routes_opts(1, threads, &opts).unwrap();
        assert_reports_equal(
            &serial.reports,
            &parallel.reports,
            &format!("modular full, threads=1 vs {threads}"),
        );
        assert_eq!(serial.provenance, parallel.provenance, "threads={threads}");
    }
    // `--abstraction off` under `--modular` degenerates to the monolithic
    // sweep: same reports, no provenance.
    let off = SweepOptions {
        modular: true,
        abstraction: AbstractionMode::Off,
        ..SweepOptions::default()
    };
    let off_report = verifier.verify_all_routes_opts(1, 2, &off).unwrap();
    assert_reports_equal(&monolithic, &off_report.reports, "abstraction=off");
    assert!(off_report.provenance.is_empty());
}

/// A multi-region fixture big enough for the dependency planner to emit
/// several batches (same shape as the bench suites' quick fixture).
fn batchy_wan() -> hoyan::topogen::Wan {
    WanSpec {
        seed: 42,
        regions: 3,
        pes_per_region: 4,
        mans_per_region: 2,
        prefixes_per_pe: 2,
        extra_core_links: 2,
        block_prefixes: 1,
    }
    .build()
}

/// The dependency-aware schedule is a *performance* knob, not a semantic
/// one: `--schedule deps` must produce a report list identical (modulo
/// wall-clock timings) to round-robin, and the deps report itself must be
/// thread-count invariant at 1, 2 and 8 workers — whole-batch stealing
/// may move work between threads, never change it.
#[test]
fn deps_schedule_matches_roundrobin_and_is_thread_invariant() {
    let wan = batchy_wan();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let rr = verifier.verify_all_routes(1, 1).unwrap();
    assert!(!rr.reports.is_empty());
    let opts = SweepOptions {
        schedule: SweepSchedule::Deps,
        ..SweepOptions::default()
    };
    for threads in [1usize, 2, 8] {
        let deps = verifier.verify_all_routes_opts(1, threads, &opts).unwrap();
        assert_reports_equal(
            &rr.reports,
            &deps.reports,
            &format!("roundrobin vs deps, threads={threads}"),
        );
        assert_eq!(rr.quarantined, deps.quarantined, "threads={threads}");
    }
}

/// The streaming sink must see exactly the families the materialized sweep
/// reports — same verdicts, same costs in aggregate, every family index
/// exactly once — under both schedules.
#[test]
fn streaming_sweep_matches_materialized() {
    let wan = batchy_wan();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let materialized = verifier.verify_all_routes(1, 2).unwrap();
    for schedule in [SweepSchedule::RoundRobin, SweepSchedule::Deps] {
        let opts = SweepOptions {
            schedule,
            ..SweepOptions::default()
        };
        let mut reports: Vec<PrefixReport> = Vec::new();
        let mut indices: Vec<usize> = Vec::new();
        let mut quarantined = 0usize;
        let summary = verifier
            .verify_all_routes_streaming(1, 2, &opts, &mut |item| match item {
                StreamedFamily::Done { index, reports: r, .. } => {
                    indices.push(index);
                    reports.extend(r);
                }
                StreamedFamily::Quarantined(_) => quarantined += 1,
            })
            .unwrap();
        assert_eq!(summary.families, verifier.families().len());
        assert_eq!(summary.prefixes, materialized.reports.len());
        assert_eq!(summary.quarantined, 0);
        assert_eq!(quarantined, 0);
        // Every family streamed exactly once.
        indices.sort_unstable();
        assert_eq!(indices, (0..verifier.families().len()).collect::<Vec<_>>());
        // Arrival order is scheduling-dependent; the *set* of reports is not.
        reports.sort_by_key(|r| r.prefix);
        assert_reports_equal(
            &materialized.reports,
            &reports,
            &format!("streaming vs materialized ({schedule:?})"),
        );
    }
}

#[test]
fn repeated_parallel_sweeps_agree() {
    let wan = WanSpec::tiny(21).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let a = verifier.verify_all_routes(1, 4).unwrap().reports;
    let b = verifier.verify_all_routes(1, 4).unwrap().reports;
    assert_reports_equal(&a, &b, "back-to-back parallel sweeps");
}
