//! Determinism regression: `verify_all_routes` must produce an identical
//! report list regardless of how many worker threads process the prefix
//! families. The implementation guarantees this by publishing each family's
//! reports atomically and sorting the final list by prefix; this test pins
//! the guarantee on a seeded topogen WAN.

use hoyan::core::{PrefixReport, Verifier};
use hoyan::device::VsbProfile;
use hoyan::topogen::WanSpec;

/// Everything in a [`PrefixReport`] except the wall-clock timings, which
/// legitimately vary run to run.
fn stable_view(r: &PrefixReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        r.prefix,
        r.stats,
        r.max_cond_len,
        r.max_reach_formula_len,
        &r.scope,
        &r.fragile,
        r.family_head,
    )
}

fn assert_reports_equal(a: &[PrefixReport], b: &[PrefixReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: report counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(stable_view(x), stable_view(y), "{what}: report for {} differs", x.prefix);
    }
}

#[test]
fn verify_all_routes_is_thread_count_invariant() {
    let wan = WanSpec::tiny(9).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let serial = verifier.verify_all_routes(1, 1).unwrap().reports;
    assert!(!serial.is_empty(), "sweep must cover some prefixes");
    let parallel = verifier.verify_all_routes(1, 8).unwrap().reports;
    assert_reports_equal(&serial, &parallel, "threads=1 vs threads=8");
    // Oversubscription (more threads than families) must change nothing.
    let oversub = verifier.verify_all_routes(1, 64).unwrap().reports;
    assert_reports_equal(&serial, &oversub, "threads=1 vs threads=64");
}

#[test]
fn repeated_parallel_sweeps_agree() {
    let wan = WanSpec::tiny(21).build();
    let verifier = Verifier::new(wan.configs, VsbProfile::ground_truth, Some(1)).unwrap();
    let a = verifier.verify_all_routes(1, 4).unwrap().reports;
    let b = verifier.verify_all_routes(1, 4).unwrap().reports;
    assert_reports_equal(&a, &b, "back-to-back parallel sweeps");
}
