//! Data-plane properties on generated WANs:
//! - §5.1's necessary-condition rule: packet reachability implies route
//!   reachability, under every considered failure scenario;
//! - injecting a data-plane ACL on a transit device blocks packets without
//!   touching route reachability (the reason "route reachable" must never
//!   be read as "packets arrive").

use std::collections::HashSet;

use hoyan::baselines::failure_sets;
use hoyan::config::apply_update;
use hoyan::core::{packet_reach, IsisDb, NetworkModel, Verifier};
use hoyan::device::{Packet, VsbProfile};
use hoyan::nettypes::LinkId;
use hoyan::topogen::WanSpec;

#[test]
fn packet_reachability_implies_route_reachability() {
    let wan = WanSpec::tiny(2).build();
    let net = NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth).unwrap();
    let isis = IsisDb::build(&net, Some(2)).unwrap();
    for p in &wan.customer_prefixes {
        let mut sim = hoyan::core::Simulation::new_bgp(&net, vec![*p], Some(2), Some(&isis));
        sim.run().unwrap();
        for src in net.topology.nodes() {
            let packet = Packet {
                src: "192.0.2.7".parse().unwrap(),
                dst: p.network(),
                proto: hoyan::config::AclProto::Udp,
            };
            let walk = packet_reach(&mut sim, &net, Some(&isis), src, *p, packet, Some(2));
            let route = sim.reach_cond(src, *p);
            for dead_links in failure_sets(net.topology.link_count(), 2) {
                let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
                let mut assign = vec![true; net.topology.link_count()];
                for l in &dead {
                    assign[l.0 as usize] = false;
                }
                let pkt_ok = sim.mgr.eval(walk.reach_cond, &assign);
                let route_ok = sim.mgr.eval(route, &assign);
                // Exception: the gateway itself needs no route.
                let is_gw = net
                    .device(src)
                    .config
                    .bgp
                    .as_ref()
                    .map(|b| b.networks.contains(p))
                    .unwrap_or(false);
                assert!(
                    !pkt_ok || route_ok || is_gw,
                    "packet without route: src {} prefix {p} dead {:?}",
                    net.topology.name(src),
                    dead_links
                );
            }
        }
    }
}

#[test]
fn injected_transit_acl_blocks_packets_but_not_routes() {
    let wan = WanSpec::tiny(6).build();
    let p = wan.customer_prefixes[0];

    // Inject: PE0x0 (the prefix's PE) drops UDP toward the prefix on both
    // core-facing interfaces — an §7-style data-plane misconfiguration.
    let mut configs = wan.configs.clone();
    let idx = configs.iter().position(|c| c.hostname == "PE0x0").unwrap();
    let script = format!(
        "access-list BLK deny udp any {p}\naccess-list BLK permit ip any any\n\
         interface eth0\n access-group BLK in\ninterface eth1\n access-group BLK in\n\
         interface eth2\n access-group BLK in\n"
    );
    configs[idx] = apply_update(&configs[idx], &script).unwrap();

    let verifier = Verifier::new(configs, VsbProfile::ground_truth, Some(1)).unwrap();
    // Route reachability at a far core is untouched by the data-plane ACL.
    let route = verifier.route_reachability(p, "CR1x0", 1).unwrap();
    assert!(route.reachable_now);
    // Packets from the far core are blocked at the PE's ingress.
    let packet = Packet {
        src: "192.0.2.7".parse().unwrap(),
        dst: p.network(),
        proto: hoyan::config::AclProto::Udp,
    };
    let pr = verifier
        .packet_reachability("CR1x0", p, packet, 1)
        .unwrap();
    assert!(!pr.reachable_now, "ACL must block UDP: {pr:?}");
    // TCP still flows (the ACL is protocol-specific).
    let tcp = Packet {
        proto: hoyan::config::AclProto::Tcp,
        ..packet
    };
    let pr_tcp = verifier.packet_reachability("CR1x0", p, tcp, 1).unwrap();
    assert!(pr_tcp.reachable_now);
}
