//! The §7.2 case studies: online configuration auditing.
//!
//! 1. **IP conflict**: a PE is configured with a prefix that already
//!    belongs to another router. Nothing breaks until traffic is imported —
//!    Hoyan's periodic propagation-scope audit catches the conflict early.
//! 2. **k-failure equivalence audit**: redundant routers in the same BGP
//!    group must stay equivalent, or a single failure can cascade.
//!
//! Run with: `cargo run --release --example ip_conflict_audit`

use hoyan::core::Verifier;
use hoyan::device::VsbProfile;
use hoyan::topogen::{ErrorClass, UpdatePlan, WanSpec};

fn main() {
    let wan = WanSpec::small(33).build();
    let victim_prefix = wan.customer_prefixes[0];
    println!(
        "WAN with {} devices; auditing propagation scope of {victim_prefix}",
        wan.device_count()
    );

    // Baseline audit: who can reach the prefix today?
    let verifier = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3))
        .expect("topology");
    let scope_before = verifier
        .propagation_scope(victim_prefix)
        .expect("converges");
    let origins_before = origin_count(&verifier, victim_prefix);
    println!(
        "baseline: scope={} devices, {} origin(s)",
        scope_before.len(),
        origins_before
    );

    // An operator — misreading address-recovery records — configures the
    // same prefix on a different DC edge (a faulty update from the
    // generator's IP-conflict class).
    let plan = UpdatePlan {
        updates: (0..200)
            .find_map(|seed| {
                let p = UpdatePlan::generate(&wan, seed, 8, 1.0);
                p.updates
                    .iter()
                    .find(|u| u.error == Some(ErrorClass::IpConflict))
                    .cloned()
                    .map(|u| vec![u])
            })
            .expect("generator produces an IP conflict"),
    };
    let conflicted = plan.apply(&wan).expect("update merges");
    println!(
        "\ninjected update: device {} also announces {victim_prefix}",
        plan.updates[0].device
    );

    let verifier2 =
        Verifier::new(conflicted, VsbProfile::ground_truth, Some(3)).expect("topology");
    let origins_after = origin_count(&verifier2, victim_prefix);
    println!("audit after update: {} origin(s)", origins_after);
    if origins_after > origins_before {
        println!(
            "*** IP CONFLICT DETECTED *** — {victim_prefix} is now announced \
             by {origins_after} gateways; traffic to it would split and crash \
             the weaker device the moment it is imported (§7.2)."
        );
    }

    // Equivalence audit on redundant pairs.
    println!("\nk-failure equivalence audit of redundant core pairs:");
    for r in 0..2 {
        let (a, b) = (format!("CR{r}x0"), format!("CR{r}x1"));
        let eq = verifier.role_equivalence(&a, &b).expect("converges");
        println!(
            "  {a} ~ {b}: {}{}",
            if eq.equivalent { "equivalent" } else { "NOT equivalent" },
            eq.first_difference
                .map(|p| format!(" (first differs on {p})"))
                .unwrap_or_default()
        );
    }
}

fn origin_count(verifier: &Verifier, prefix: hoyan::nettypes::Ipv4Prefix) -> usize {
    verifier
        .net
        .devices
        .iter()
        .filter(|d| {
            d.config
                .bgp
                .as_ref()
                .map(|b| b.networks.contains(&prefix))
                .unwrap_or(false)
        })
        .count()
}
