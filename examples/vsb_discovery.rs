//! The §6 story: discovering vendor-specific behaviors with the model tuner.
//!
//! A fresh verifier assumes every vendor behaves like the majority vendor.
//! On a mixed-vendor WAN that assumption is wrong in eight documented ways
//! (Table 2), and verification accuracy is poor. The tuner compares the
//! model's extended RIBs against the network's real ones (here: an oracle
//! simulation running the true vendor behaviors), localizes the first
//! divergence to a device + behavior class, and patches the model — driving
//! accuracy to 100% exactly as Figure 14 shows.
//!
//! Run with: `cargo run --release --example vsb_discovery`

use hoyan::device::VsbProfile;
use hoyan::topogen::WanSpec;
use hoyan::tuner::{ModelRegistry, Validator};

fn main() {
    let wan = WanSpec::small(55).build();
    let vendors: Vec<(&str, &str)> = wan
        .configs
        .iter()
        .map(|c| (c.hostname.as_str(), c.vendor.letter()))
        .filter(|(_, v)| *v != "A")
        .collect();
    println!(
        "WAN with {} devices; non-majority-vendor devices: {:?}",
        wan.device_count(),
        vendors
    );

    let validator = Validator::new(wan.configs.clone()).expect("topology");
    let mut registry = ModelRegistry::naive();
    let families: Vec<Vec<_>> = wan.customer_prefixes.iter().map(|p| vec![*p]).collect();

    let t0 = std::time::Instant::now();
    let outcome = validator
        .tune(&mut registry, &families, 32)
        .expect("tuning converges");
    println!(
        "\ntuner: {} round(s), {} patches in {:?}",
        outcome.rounds,
        outcome.localizations.len(),
        t0.elapsed()
    );
    for loc in &outcome.localizations {
        println!(
            "  localized VSB: device={} vendor={} class=\"{}\" \
             (~{} config lines implicated; paper's model patch: {} lines)",
            loc.hostname,
            loc.vendor.letter(),
            loc.vsb.name(),
            loc.config_lines,
            loc.vsb.paper_patch_lines(),
        );
    }

    let avg = |v: &[(hoyan::nettypes::Ipv4Prefix, f64)]| {
        v.iter().map(|(_, a)| a).sum::<f64>() / v.len().max(1) as f64
    };
    let perfect_after = outcome
        .accuracy_after
        .iter()
        .filter(|(_, a)| *a >= 1.0)
        .count();
    println!(
        "\naccuracy: mean {:.1}% -> {:.1}% ({} of {} prefixes now at 100%)",
        100.0 * avg(&outcome.accuracy_before),
        100.0 * avg(&outcome.accuracy_after),
        perfect_after,
        outcome.accuracy_after.len()
    );

    // The tuner only patches VSBs that production traffic *exercises* —
    // exactly the paper's pragmatic coverage strategy ("validate behavior
    // models under all cases that appear in the production", §6). Fields
    // that nothing on this WAN can distinguish stay at the assumption.
    for v in [hoyan::config::Vendor::B, hoyan::config::Vendor::C] {
        let truth = VsbProfile::ground_truth(v);
        let remaining = registry.profile(v).diff(&truth);
        println!(
            "vendor {}: {} VSB field(s) not yet exercised by this WAN: {:?}",
            v.letter(),
            remaining.len(),
            remaining.iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }
}
