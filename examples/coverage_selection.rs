//! §6's "scalability of model validation": comparing every IP prefix's
//! propagation against the network is not tractable, so the tuner selects a
//! *moderate number of prefixes that cover most configuration blocks* (the
//! ATPG-style equivalence-class idea). This example shows the selection on
//! a generated WAN.
//!
//! Run with: `cargo run --release --example coverage_selection`

use hoyan::core::NetworkModel;
use hoyan::device::VsbProfile;
use hoyan::topogen::WanSpec;
use hoyan::tuner::CoverageMap;

fn main() {
    let wan = WanSpec::medium(42).build();
    let net = NetworkModel::from_configs(wan.configs.clone(), VsbProfile::ground_truth)
        .expect("topology");
    println!(
        "WAN: {} devices, {} customer prefixes",
        wan.device_count(),
        wan.customer_prefixes.len()
    );

    let t0 = std::time::Instant::now();
    let map = CoverageMap::build(&net, &wan.customer_prefixes).expect("coverage builds");
    println!(
        "configuration blocks: {} total, {} exercised by some prefix \
         (dead config: {}) — computed in {:?}",
        map.all_blocks.len(),
        map.coverable.len(),
        map.all_blocks.len() - map.coverable.len(),
        t0.elapsed()
    );

    for target in [0.5, 0.9, 1.0] {
        let reps = map.select_representatives(target);
        println!(
            "covering {:>3.0}% of exercisable blocks needs {:>2} of {} prefixes \
             (overall config coverage {:.0}%)",
            target * 100.0,
            reps.len(),
            wan.customer_prefixes.len(),
            100.0 * map.coverage_of(&reps)
        );
    }

    let reps = map.select_representatives(1.0);
    println!(
        "\nmonitoring {} representative prefixes instead of all {} cuts the \
         tuner's continuous-validation load by {:.0}%",
        reps.len(),
        wan.customer_prefixes.len(),
        100.0 * (1.0 - reps.len() as f64 / wan.customer_prefixes.len() as f64)
    );
    println!("representatives: {reps:?}");
}
