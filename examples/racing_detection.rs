//! The Figure 1 case study: detecting non-deterministic route-update racing.
//!
//! AS 200 announces 10.0.1.0/24 from two routers (C and D) toward AS 100
//! (A and B, iBGP peers). A's egress policy to B enlarges the weight so B
//! should pick A's relay — but whether it *does* depends on which update
//! arrives first. Hoyan encodes the selection logic symbolically and asks
//! the solver for multiple solutions: two solutions = ambiguous
//! convergence = a configuration bug that no single simulation can see.
//!
//! Run with: `cargo run --release --example racing_detection`

use hoyan::config::parse_config;
use hoyan::core::{racing_check, NetworkModel};
use hoyan::device::VsbProfile;
use hoyan::nettypes::pfx;

fn main() {
    let a = concat!(
        "hostname A\nrouter-id 1\n",
        "interface e0\n peer C\ninterface e1\n peer B\n",
        "route-map LP300 permit 10\n set local-preference 300\n",
        "route-map W100 permit 10\n set weight 100\n",
        "router bgp 100\n",
        " neighbor C remote-as 200\n neighbor C route-map LP300 in\n",
        " neighbor B remote-as 100\n neighbor B route-map W100 out\n",
    );
    let b = concat!(
        "hostname B\nrouter-id 2\n",
        "interface e0\n peer D\ninterface e1\n peer A\n",
        "route-map LP500 permit 10\n set local-preference 500\n",
        "router bgp 100\n",
        " neighbor D remote-as 200\n neighbor D route-map LP500 in\n",
        " neighbor A remote-as 100\n",
    );
    let c = concat!(
        "hostname C\nrouter-id 3\ninterface e0\n peer A\n",
        "router bgp 200\n network 10.0.1.0/24\n neighbor A remote-as 100\n",
    );
    let d = concat!(
        "hostname D\nrouter-id 4\ninterface e0\n peer B\n",
        "router bgp 200\n network 10.0.1.0/24\n neighbor B remote-as 100\n",
    );

    let configs = [a, b, c, d]
        .iter()
        .map(|t| parse_config(t).expect("parses"))
        .collect();
    let net = NetworkModel::from_configs(configs, VsbProfile::ground_truth).expect("topology");

    println!("Figure 1 network: C and D both announce 10.0.1.0/24;");
    println!("A's egress to B sets weight 100 (weight overrides local-pref).\n");

    let report = racing_check(&net, pfx("10.0.1.0/24"), 4);
    println!(
        "candidates discovered by selection-free flooding: {}",
        report.candidates
    );
    println!("distinct convergence solutions: {}", report.solutions);
    if report.ambiguous {
        println!(
            "\n*** AMBIGUOUS CONVERGENCE ***\n\
             The converged routes depend on the order route updates arrive:\n\
             - if C's route reaches A first, A relays it with weight 100 and\n\
               both A and B forward via C (the intended state, Fig 1a);\n\
             - if D's route reaches A first, A selects it on local-pref 500\n\
               and drops C's route before the weight rule ever fires (Fig 1b).\n\
             Hoyan flags the update plan before a lucky/unlucky ordering\n\
             decides production behavior."
        );
    } else {
        println!("convergence is deterministic — no racing risk.");
    }

    // Contrast: a single-origin prefix cannot race.
    let safe = racing_check(&net, pfx("99.0.0.0/8"), 4);
    println!(
        "\ncontrol (unannounced prefix): candidates={}, ambiguous={}",
        safe.candidates, safe.ambiguous
    );
}
