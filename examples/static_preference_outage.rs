//! The §7.1 case study: "preventing outages before updates".
//!
//! Operators plan to change the static-route preference on all PE routers
//! from 1 to 150. On most PEs that is harmless — but two *old* PEs have
//! their eBGP preference specially configured to 30, so after the update
//! the static (now 150) loses to eBGP (30) and stops being used. Hoyan
//! catches the regression by verifying the update against the intent
//! *before* it is committed.
//!
//! Run with: `cargo run --release --example static_preference_outage`

use hoyan::config::apply_update;
use hoyan::core::{fib_rules_for, NetworkModel, Simulation};
use hoyan::device::VsbProfile;
use hoyan::topogen::WanSpec;

fn main() {
    let wan = WanSpec::small(21).build();
    println!(
        "WAN with {} devices; old PEs with eBGP preference 30: {:?}",
        wan.device_count(),
        wan.old_pes
    );

    // The update plan: raise every PE's static preference to 150.
    let mut updated = wan.configs.clone();
    let mut scripts = 0;
    for cfg in &mut updated {
        if !cfg.hostname.starts_with("PE") || cfg.static_routes.is_empty() {
            continue;
        }
        let s = cfg.static_routes[0].clone();
        let script = format!(
            "no ip route {p} {nh}\nip route {p} {nh} preference 150\n",
            p = s.prefix,
            nh = s.next_hop
        );
        *cfg = apply_update(cfg, &script).expect("update merges");
        scripts += 1;
    }
    println!("update plan: {scripts} PE routers get static preference 1 -> 150");

    // Intent: on every PE, the static route must remain the preferred FIB
    // rule for its customer prefix (it pins the DC-facing path).
    for (name, configs) in [("BEFORE", &wan.configs), ("AFTER", &updated)] {
        let net = NetworkModel::from_configs(configs.clone(), VsbProfile::ground_truth)
            .expect("topology");
        let mut violations = Vec::new();
        for cfg in configs.iter().filter(|c| c.hostname.starts_with("PE")) {
            let Some(s) = cfg.static_routes.first() else {
                continue;
            };
            let node = net.topology.node(&cfg.hostname).unwrap();
            let mut sim = Simulation::new_bgp(&net, vec![s.prefix], Some(1), None);
            sim.run().expect("converges");
            let rules = fib_rules_for(&mut sim, &net, node, s.prefix.network());
            // The static has pref == s.preference; intent: nothing ranks
            // above it.
            let static_is_best = rules
                .first()
                .map(|r| r.pref == s.preference)
                .unwrap_or(false);
            if !static_is_best {
                violations.push((
                    cfg.hostname.clone(),
                    s.prefix,
                    rules.first().map(|r| r.pref),
                ));
            }
        }
        if violations.is_empty() {
            println!("{name}: intent holds on every PE");
        } else {
            println!("{name}: VIOLATIONS — the static route is shadowed on:");
            for (host, prefix, winner) in &violations {
                println!(
                    "  {host}: {prefix} now prefers a protocol route \
                     (preference {:?} beats the static)",
                    winner
                );
            }
        }
    }

    println!(
        "\nHoyan flags exactly the old PEs ({:?}) before the update is \
         committed — the §7.1 outage is prevented.",
        wan.old_pes
    );
}
