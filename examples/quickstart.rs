//! Quickstart: generate a small WAN, build a verifier, and ask the three
//! questions operators ask daily — route reachability under failures,
//! packet reachability, and role equivalence.
//!
//! Run with: `cargo run --release --example quickstart`

use hoyan::core::Verifier;
use hoyan::device::{Packet, VsbProfile};
use hoyan::topogen::WanSpec;

fn main() {
    // A deterministic 20-router WAN (plus DC edges and ISP peers): two
    // regions, redundant PE pairs, iBGP over IS-IS with route reflectors.
    let wan = WanSpec::small(7).build();
    println!(
        "generated WAN: {} devices, {} customer prefixes",
        wan.device_count(),
        wan.customer_prefixes.len()
    );

    // Build the verifier. The VSB profile registry here is the ground
    // truth — see the `vsb_discovery` example for how the tuner gets there.
    let verifier = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3))
        .expect("configs form a WAN");

    // 1. Route reachability under k failures: can the far-region core
    //    still receive the first customer prefix if any 1 link dies?
    let prefix = wan.customer_prefixes[0];
    let report = verifier
        .route_reachability(prefix, "CR1x1", 1)
        .expect("simulation converges");
    println!(
        "\nroute {prefix} -> CR1x1: reachable={}, min failures to break={}, \
         resilient to k=1: {}",
        report.reachable_now, report.min_failures_to_break, report.resilient
    );
    if let Some(witness) = &report.witness {
        println!("  a minimal breaking failure set: {witness:?}");
    }

    // 2. Packet reachability (the route existing does not imply packets
    //    arrive — ACLs and LPM can diverge, §5.1).
    let packet = Packet {
        src: "198.18.0.9".parse().unwrap(),
        dst: prefix.network(),
        proto: hoyan::config::AclProto::Tcp,
    };
    let preport = verifier
        .packet_reachability("MAN1x0", prefix, packet, 1)
        .expect("simulation converges");
    println!(
        "packet MAN1x0 -> {prefix}: reachable={}, min failures to break={}",
        preport.reachable_now, preport.min_failures_to_break
    );

    // 3. Role equivalence: the redundant PE pair of region 0 should *not*
    //    be equivalent (each fronts a different DC), but the two region
    //    cores see the same world.
    for (a, b) in [("PE0x0", "PE0x1"), ("CR0x0", "CR0x1")] {
        let eq = verifier.role_equivalence(a, b).expect("converges");
        println!(
            "role equivalence {a} ~ {b}: {}{}",
            eq.equivalent,
            eq.first_difference
                .map(|p| format!(" (first differs on {p})"))
                .unwrap_or_default()
        );
    }

    // 4. The full sweep all operators run before pushing an update.
    let t0 = std::time::Instant::now();
    let reports = verifier.verify_all_routes(1, 8).expect("sweep converges").reports;
    let fragile: usize = reports.iter().filter(|r| !r.fragile.is_empty()).count();
    println!(
        "\nfull sweep at k=1: {} prefixes in {:?}; {} prefixes have \
         non-resilient consumers",
        reports.len(),
        t0.elapsed(),
        fragile
    );
}
