//! The region partitioner — stage one of the modular pipeline.
//!
//! LIGHTYEAR-style modular verification cuts the WAN into regions and
//! checks each region against *summaries* of its neighbors instead of the
//! full model. This module derives the cut and the summaries:
//!
//! * [`RegionMap::build`] partitions routers using the topogen hostname
//!   convention (`PE2x1` → region 2): every router whose hostname carries
//!   a region number anchors that region, role-less neighbors are adopted
//!   by the lowest adjacent region (a deterministic fixpoint), and any
//!   fixture with no role hints at all falls back to connectivity
//!   components — so hand-written test topologies still partition.
//! * [`summarize_regions`] computes, per region, which prefixes can cross
//!   each *boundary session* (a BGP session whose endpoints live in
//!   different regions) and under what condition. Summaries are built by
//!   assume-guarantee iteration of region-local abstract closures (the
//!   condition-free route states of [`crate::abstract_sim`]): each round
//!   re-runs every region with the states its neighbors could export in
//!   the previous round, until no export set grows. The conditions are
//!   over-approximations phrased over the exporting region's *own* links
//!   only (iBGP sessions and foreign links are assumed up), which is what
//!   makes a summary portable to the neighbor's solver.
//! * [`verify_region`] over-approximates one region's reachable set for a
//!   family given its neighbors' summaries — the region-against-summaries
//!   face of the exact fallback. Soundness contract (pinned by tests):
//!   the *global exact* scope restricted to the region is always a subset
//!   of the region-local result.

use std::collections::BTreeSet;

use hoyan_logic::{Bdd, BddManager, BudgetBreach};
use hoyan_nettypes::{Ipv4Prefix, LinkId, NodeId};

use crate::abstract_sim::{bdd_fixpoint, edge_transfer, oa_closure, AbsState, CondEdge};
use crate::network::NetworkModel;
use crate::topology::Topology;

/// A partition of the routers into contiguous regions.
#[derive(Clone, Debug)]
pub struct RegionMap {
    region_of: Vec<u32>,
    regions: Vec<Vec<NodeId>>,
    derived_from_roles: bool,
}

impl RegionMap {
    /// Partitions `topo` (see the module docs for the rules).
    pub fn build(topo: &Topology) -> RegionMap {
        let n = topo.node_count();
        const UNASSIGNED: u32 = u32::MAX;
        let mut region_of = vec![UNASSIGNED; n];
        // Anchor: hostname region hints, densely renumbered in hint order.
        let mut hints: Vec<u32> = (0..n as u32)
            .filter_map(|i| topo.region_hint(NodeId(i)))
            .collect();
        hints.sort_unstable();
        hints.dedup();
        let derived_from_roles = !hints.is_empty();
        for i in 0..n as u32 {
            if let Some(h) = topo.region_hint(NodeId(i)) {
                let dense = hints.binary_search(&h).unwrap_or(0) as u32;
                region_of[i as usize] = dense;
            }
        }
        if derived_from_roles {
            // Role-less routers join the lowest region among assigned
            // neighbors; iterate to a fixpoint so chains of role-less
            // routers are adopted too. Deterministic: node-id order, min
            // region wins.
            loop {
                let mut changed = false;
                for i in 0..n {
                    if region_of[i] != UNASSIGNED {
                        continue;
                    }
                    let adopt = topo
                        .neighbors(NodeId(i as u32))
                        .iter()
                        .map(|(v, _)| region_of[v.0 as usize])
                        .filter(|r| *r != UNASSIGNED)
                        .min();
                    if let Some(r) = adopt {
                        region_of[i] = r;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        // Whatever is still unassigned (role-less fixture, or islands
        // disconnected from every hinted router): connectivity components,
        // appended as fresh regions in discovery order.
        let mut next = hints.len() as u32;
        for i in 0..n {
            if region_of[i] != UNASSIGNED {
                continue;
            }
            let mut stack = vec![NodeId(i as u32)];
            region_of[i] = next;
            while let Some(u) = stack.pop() {
                for (v, _) in topo.neighbors(u) {
                    if region_of[v.0 as usize] == UNASSIGNED {
                        region_of[v.0 as usize] = next;
                        stack.push(*v);
                    }
                }
            }
            next += 1;
        }
        let mut regions = vec![Vec::new(); next as usize];
        for i in 0..n {
            regions[region_of[i] as usize].push(NodeId(i as u32));
        }
        RegionMap {
            region_of,
            regions,
            derived_from_roles,
        }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The region a router belongs to.
    pub fn region_of(&self, n: NodeId) -> u32 {
        self.region_of[n.0 as usize]
    }

    /// The routers of one region, in node-id order.
    pub fn nodes(&self, region: u32) -> &[NodeId] {
        &self.regions[region as usize]
    }

    /// Whether the cut came from hostname roles (vs the connectivity
    /// fallback).
    pub fn derived_from_roles(&self) -> bool {
        self.derived_from_roles
    }

    /// Links whose endpoints live in different regions, in link order.
    pub fn boundary_links(&self, topo: &Topology) -> Vec<LinkId> {
        (0..topo.link_count() as u32)
            .map(LinkId)
            .filter(|l| {
                let (a, b) = topo.link_ends(*l);
                self.region_of(a) != self.region_of(b)
            })
            .collect()
    }
}

/// One route export a region's summary promises: `prefix` can cross the
/// boundary session `from → to` under `cond`.
#[derive(Clone, Debug)]
pub struct SummaryEntry {
    /// Sending endpoint (inside the summarized region).
    pub from: NodeId,
    /// Receiving endpoint (in a neighboring region).
    pub to: NodeId,
    /// The boundary link, for eBGP sessions.
    pub link: Option<LinkId>,
    /// The crossing prefix.
    pub prefix: Ipv4Prefix,
    /// Over-approximate crossing condition, over the *sending* region's
    /// links only (foreign links and iBGP sessions assumed up).
    pub cond: Bdd,
}

/// What one region promises its neighbors.
#[derive(Clone, Debug)]
pub struct RegionSummary {
    /// The summarized region.
    pub region: u32,
    /// Everything that can leave the region, in deterministic order.
    pub egress: Vec<SummaryEntry>,
}

/// The per-region, per-prefix abstract states of one assume-guarantee
/// round, plus the states each region is assumed to import.
struct AgState {
    /// `imported[region][prefix_idx]` — states pushed over boundary
    /// sessions into the region by its neighbors.
    imported: Vec<Vec<Vec<(NodeId, AbsState)>>>,
}

/// Computes every region's egress summary by assume-guarantee iteration.
/// Returns `None` when any region-local closure blows up (the modular
/// pipeline then falls back to whole-network verification).
pub fn summarize_regions(
    net: &NetworkModel,
    map: &RegionMap,
    mgr: &mut BddManager,
    prefixes: &[Ipv4Prefix],
) -> Result<Option<Vec<RegionSummary>>, BudgetBreach> {
    let nregions = map.region_count();
    let mut ag = AgState {
        imported: vec![vec![Vec::new(); prefixes.len()]; nregions],
    };
    // Iterate region-local closures until no import set grows. Each round
    // is deterministic (regions ascending, prefixes in caller order), and
    // the import sets grow monotonically over a finite state space.
    let mut states: Vec<Vec<Vec<Vec<AbsState>>>>;
    loop {
        let mut grew = false;
        states = vec![Vec::new(); nregions];
        for r in 0..nregions as u32 {
            for (pi, &p) in prefixes.iter().enumerate() {
                let local = |u: NodeId, s: &crate::network::BgpSession| {
                    map.region_of(u) == r && map.region_of(s.peer) == r
                };
                let Some(st) = oa_closure(net, p, &ag.imported[r as usize][pi], local) else {
                    return Ok(None);
                };
                // Export: push final states over every boundary session
                // leaving this region; anything new becomes a neighbor
                // import for the next round.
                for &u in map.nodes(r) {
                    for s in net.sessions_of(u) {
                        if map.region_of(s.peer) == r {
                            continue;
                        }
                        let t = edge_transfer(net, u, s, p, &st[u.0 as usize]);
                        let dest = map.region_of(s.peer) as usize;
                        for out in t.outputs {
                            let item = (s.peer, out);
                            if !ag.imported[dest][pi].contains(&item) {
                                ag.imported[dest][pi].push(item);
                                grew = true;
                            }
                        }
                    }
                }
                states[r as usize].push(st);
            }
        }
        if !grew {
            break;
        }
    }
    // Conditions: per region, an OB fixpoint over region-local edges
    // (region eBGP links keep their variables; everything else is TRUE).
    let mut summaries = Vec::with_capacity(nregions);
    for r in 0..nregions as u32 {
        let mut egress = Vec::new();
        for (pi, &p) in prefixes.iter().enumerate() {
            let st = &states[r as usize][pi];
            let ob = region_ob(net, map, r, mgr, p, st, &ag.imported[r as usize][pi])?;
            let Some(ob) = ob else {
                return Ok(None);
            };
            for &u in map.nodes(r) {
                for s in net.sessions_of(u) {
                    if map.region_of(s.peer) == r {
                        continue;
                    }
                    let t = edge_transfer(net, u, s, p, &st[u.0 as usize]);
                    if !t.possible {
                        continue;
                    }
                    // Crossing condition: the sender can be reached
                    // (region-local OB), and an eBGP boundary link must
                    // itself be alive — that link is shared vocabulary.
                    let mut cond = ob[u.0 as usize];
                    if let Some(link) = s.link {
                        let lv = mgr.var(net.link_var(link));
                        cond = mgr.and(cond, lv);
                    }
                    egress.push(SummaryEntry {
                        from: u,
                        to: s.peer,
                        link: s.link,
                        prefix: p,
                        cond,
                    });
                }
            }
        }
        summaries.push(RegionSummary { region: r, egress });
    }
    if let Some(breach) = mgr.budget_exceeded() {
        return Err(breach);
    }
    Ok(Some(summaries))
}

/// Region-local over-approximate reachability: one OB fixpoint over the
/// region's internal session edges, seeded by local originators and by
/// imported boundary states (assumed reachable — their conditions live in
/// the neighbor's vocabulary).
fn region_ob(
    net: &NetworkModel,
    map: &RegionMap,
    region: u32,
    mgr: &mut BddManager,
    prefix: Ipv4Prefix,
    states: &[Vec<AbsState>],
    imported: &[(NodeId, AbsState)],
) -> Result<Option<Vec<Bdd>>, BudgetBreach> {
    let n = net.topology.node_count();
    let mut seeds: BTreeSet<u32> = states
        .iter()
        .enumerate()
        .filter(|(i, set)| {
            map.region_of(NodeId(*i as u32)) == region && set.iter().any(|s| s.from.is_none())
        })
        .map(|(i, _)| i as u32)
        .collect();
    for (node, _) in imported {
        seeds.insert(node.0);
    }
    let seeds: Vec<NodeId> = seeds.into_iter().map(NodeId).collect();
    let mut edges = Vec::new();
    for &u in map.nodes(region) {
        for s in net.sessions_of(u) {
            if map.region_of(s.peer) != region {
                continue;
            }
            let t = edge_transfer(net, u, s, prefix, &states[u.0 as usize]);
            if !t.possible {
                continue;
            }
            let cond = match s.link {
                Some(link) if s.kind == hoyan_device::SessionKind::Ebgp => {
                    mgr.var(net.link_var(link))
                }
                _ => Bdd::TRUE,
            };
            edges.push(CondEdge {
                u: u.0,
                v: s.peer.0,
                cond,
                guaranteed: t.guaranteed,
            });
        }
    }
    bdd_fixpoint(mgr, n, &seeds, &edges)
}

/// Per-prefix result of a region-local verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionScope {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Region nodes that may hold a route (over-approximation; always a
    /// superset of the global exact scope restricted to the region).
    pub nodes: Vec<NodeId>,
}

/// Over-approximates which of `region`'s routers can hold a route for
/// each prefix of `family`, trusting the neighbors' `summaries` instead
/// of simulating the rest of the WAN. Returns `None` on abstract-state
/// blow-up (fall back to whole-network verification).
pub fn verify_region(
    net: &NetworkModel,
    map: &RegionMap,
    region: u32,
    summaries: &[RegionSummary],
    mgr: &mut BddManager,
    family: &[Ipv4Prefix],
) -> Result<Option<Vec<RegionScope>>, BudgetBreach> {
    let mut scopes = Vec::with_capacity(family.len());
    for &p in family {
        // Imports promised by neighbors: replay each summary entry's
        // crossing into this region to get the delivered states.
        let mut imported: Vec<(NodeId, AbsState)> = Vec::new();
        for summary in summaries {
            if summary.region == region {
                continue;
            }
            for e in &summary.egress {
                if e.prefix != p || map.region_of(e.to) != region {
                    continue;
                }
                let from_states = oa_closure(net, p, &[], |u, s| {
                    map.region_of(u) == summary.region && map.region_of(s.peer) == summary.region
                });
                let Some(from_states) = from_states else {
                    return Ok(None);
                };
                let Some(session) = net
                    .sessions_of(e.from)
                    .iter()
                    .find(|s| s.peer == e.to && s.link == e.link)
                else {
                    continue;
                };
                let t = edge_transfer(net, e.from, session, p, &from_states[e.from.0 as usize]);
                for out in t.outputs {
                    let item = (e.to, out);
                    if !imported.contains(&item) {
                        imported.push(item);
                    }
                }
            }
        }
        let local =
            |u: NodeId, s: &crate::network::BgpSession| {
                map.region_of(u) == region && map.region_of(s.peer) == region
            };
        let Some(states) = oa_closure(net, p, &imported, local) else {
            return Ok(None);
        };
        let Some(ob) = region_ob(net, map, region, mgr, p, &states, &imported)? else {
            return Ok(None);
        };
        let nodes: Vec<NodeId> = map
            .nodes(region)
            .iter()
            .copied()
            .filter(|u| !ob[u.0 as usize].is_false())
            .collect();
        scopes.push(RegionScope { prefix: p, nodes });
    }
    Ok(Some(scopes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::Simulation;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn build(texts: &[&str]) -> NetworkModel {
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    /// Two regions joined by an eBGP boundary link, with a role-less
    /// router adopted by its neighbor's region.
    fn cross_region_net() -> NetworkModel {
        build(&[
            // Region 1: origin + its core router.
            "hostname DC1x1\ninterface e0\n peer PE1x1\nrouter bgp 65001\n network 10.0.0.0/24\n neighbor PE1x1 remote-as 64500\n",
            concat!(
                "hostname PE1x1\ninterface e0\n peer DC1x1\ninterface e1\n peer CR1x1\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor DC1x1 remote-as 65001\n",
                " neighbor CR1x1 remote-as 64500\n",
            ),
            concat!(
                "hostname CR1x1\ninterface e0\n peer PE1x1\ninterface e1\n peer CR2x1\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor PE1x1 remote-as 64500\n",
                " neighbor PE1x1 route-reflector-client\n neighbor CR2x1 remote-as 64500\n",
            ),
            // Region 2: core + a role-less customer box (adopted).
            concat!(
                "hostname CR2x1\ninterface e0\n peer CR1x1\ninterface e1\n peer EDGE\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor CR1x1 remote-as 64500\n",
                " neighbor EDGE remote-as 64500\n neighbor EDGE route-reflector-client\n",
            ),
            concat!(
                "hostname EDGE\ninterface e0\n peer CR2x1\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor CR2x1 remote-as 64500\n",
            ),
        ])
    }

    #[test]
    fn partition_follows_roles_and_adopts_rolodex_less_neighbors() {
        let net = cross_region_net();
        let map = RegionMap::build(&net.topology);
        assert!(map.derived_from_roles());
        assert_eq!(map.region_count(), 2);
        let region_of = |name: &str| map.region_of(net.topology.node(name).unwrap());
        assert_eq!(region_of("DC1x1"), region_of("PE1x1"));
        assert_eq!(region_of("PE1x1"), region_of("CR1x1"));
        assert_eq!(region_of("CR2x1"), region_of("EDGE"), "EDGE is adopted");
        assert_ne!(region_of("CR1x1"), region_of("CR2x1"));
        assert_eq!(map.boundary_links(&net.topology).len(), 1);
    }

    #[test]
    fn roleless_fixture_falls_back_to_components() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n neighbor A remote-as 100\n",
            "hostname C\nrouter bgp 300\n",
        ]);
        let map = RegionMap::build(&net.topology);
        assert!(!map.derived_from_roles());
        assert_eq!(map.region_count(), 2); // {A, B} and isolated {C}
    }

    /// The pinned soundness property: the *global exact* scope restricted
    /// to a region is a subset of the region-local result computed from
    /// neighbor summaries.
    #[test]
    fn region_scope_over_approximates_global_exact_scope() {
        let net = cross_region_net();
        let map = RegionMap::build(&net.topology);
        let p = pfx("10.0.0.0/24");

        // Global exact scope.
        let mut sim = Simulation::new_bgp(&net, vec![p], Some(1), None);
        sim.run().expect("sim converges");
        let exact_scope: Vec<NodeId> = net
            .topology
            .nodes()
            .filter(|n| {
                let c = sim.reach_cond(*n, p);
                !c.is_false() && sim.mgr.eval(c, &[])
            })
            .collect();
        assert!(!exact_scope.is_empty(), "fixture must propagate");

        let mut mgr = BddManager::new();
        let summaries = summarize_regions(&net, &map, &mut mgr, &[p])
            .expect("no budget")
            .expect("no blow-up");
        // The origin region promises the prefix across the boundary.
        let origin_region = map.region_of(net.topology.node("DC1x1").unwrap());
        let origin_summary = &summaries[origin_region as usize];
        assert!(
            origin_summary.egress.iter().any(|e| e.prefix == p),
            "origin region must export the prefix"
        );

        for r in 0..map.region_count() as u32 {
            let scopes = verify_region(&net, &map, r, &summaries, &mut mgr, &[p])
                .expect("no budget")
                .expect("no blow-up");
            let region_nodes: BTreeSet<u32> = scopes[0].nodes.iter().map(|n| n.0).collect();
            for n in &exact_scope {
                if map.region_of(*n) == r {
                    assert!(
                        region_nodes.contains(&n.0),
                        "{} in global exact scope but missing from region {} result",
                        net.topology.name(*n),
                        r
                    );
                }
            }
        }
    }
}
