//! Route-update racing detection (Appendix B).
//!
//! For a prefix, all possible routes are propagated *without dropping on
//! route selection* (ingress/egress policies and loop checks still apply).
//! Every route each node could receive becomes a Boolean "is selected"
//! indicator, constrained by the selection logic:
//!
//! `sel(cᵢ) ⟺ avail(cᵢ) ∧ ⋀_{j<i} ¬sel(cⱼ)`
//!
//! where candidates are ranked by the node's decision process and a received
//! candidate is available iff its predecessor was selected at the sender.
//! The conjunction of all node formulas goes to the SAT solver; **more than
//! one model means the convergence is ambiguous** — different route-update
//! arrival orders produce different steady states (the Figure 1 bug class).

use std::collections::VecDeque;

use hoyan_device::{cmp_candidates, Candidate, LearnedFrom, SessionKind};
use hoyan_logic::{Cnf, Formula, Solver};
use hoyan_nettypes::{Ipv4Prefix, NodeId, RouteAttrs};

use crate::network::NetworkModel;
use crate::propagate::LOCAL_WEIGHT;

/// One possible route at one node, discovered by the selection-free flood.
#[derive(Clone, Debug)]
struct FloodRoute {
    node: NodeId,
    attrs: RouteAttrs,
    learned_from: LearnedFrom,
    from_node: Option<NodeId>,
    next_hop: Option<NodeId>,
    ibgp_hops: u32,
    parent: Option<usize>, // index into the flood list
    path: Vec<NodeId>,
}

/// Result of a racing analysis for one prefix.
#[derive(Clone, Debug)]
pub struct RacingReport {
    /// Whether convergence is ambiguous (more than one solution).
    pub ambiguous: bool,
    /// Number of distinct solutions found (capped at `limit`).
    pub solutions: usize,
    /// Total candidate routes discovered by the flood.
    pub candidates: usize,
}

/// Analyzes route-update racing for `prefix` on `net`. `limit` caps model
/// enumeration (2 suffices to decide ambiguity; higher values let callers
/// inspect how many convergences exist).
pub fn racing_check(net: &NetworkModel, prefix: Ipv4Prefix, limit: usize) -> RacingReport {
    // Phase 1: flood without selection.
    let mut routes: Vec<FloodRoute> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for n in net.topology.nodes() {
        let dev = net.device(n);
        let Some(bgp) = dev.config.bgp.as_ref() else {
            continue;
        };
        let mut seeds: Vec<RouteAttrs> = Vec::new();
        if bgp.networks.contains(&prefix) {
            let mut attrs = RouteAttrs::originated();
            attrs.weight = LOCAL_WEIGHT;
            seeds.push(attrs);
        }
        if bgp
            .redistribute
            .contains(&hoyan_config::RedistSource::Static)
            && dev.config.static_routes.iter().any(|s| s.prefix == prefix)
            && dev.redistribution_admits(prefix)
        {
            let mut attrs = RouteAttrs::originated();
            attrs.weight = LOCAL_WEIGHT;
            attrs.origin = hoyan_nettypes::Origin::Incomplete;
            seeds.push(attrs);
        }
        for attrs in seeds {
            routes.push(FloodRoute {
                node: n,
                attrs,
                learned_from: LearnedFrom::Local,
                from_node: None,
                next_hop: None,
                ibgp_hops: 0,
                parent: None,
                path: vec![n],
            });
            queue.push_back(routes.len() - 1);
        }
    }

    // Guard against pathological blowup: a WAN prefix has a moderate number
    // of propagation paths in practice (§5.4); we cap at a generous bound
    // and report what we have.
    const MAX_ROUTES: usize = 100_000;

    while let Some(idx) = queue.pop_front() {
        if routes.len() > MAX_ROUTES {
            hoyan_obs::metric!(counter "racing.flood_capped").inc();
            hoyan_obs::warn(&format!(
                "racing check for {prefix} hit the {MAX_ROUTES}-route flood cap; \
                 the ambiguity verdict may be incomplete"
            ));
            break;
        }
        let r = routes[idx].clone();
        let u = r.node;
        let dev = net.device(u);
        for s in net.sessions_of(u) {
            let peer = s.peer;
            if r.path.contains(&peer) {
                continue; // loop / split horizon
            }
            let neighbor = &dev.config.bgp.as_ref().expect("session").neighbors[s.neighbor_idx];
            if !dev.may_advertise(r.learned_from, s.kind, neighbor) {
                continue;
            }
            let Some(egress) = dev.control_egress(neighbor, s.kind, prefix, &r.attrs) else {
                continue;
            };
            let peer_dev = net.device(peer);
            let from_name = net.topology.name(u);
            let Some(peer_neighbor) = peer_dev
                .config
                .bgp
                .as_ref()
                .and_then(|b| b.neighbor(from_name))
            else {
                continue;
            };
            let Some(attrs_in) =
                peer_dev.control_ingress(peer_neighbor, s.kind, prefix, &egress.attrs)
            else {
                continue;
            };
            let learned_from = match s.kind {
                SessionKind::Ebgp => LearnedFrom::Ebgp,
                SessionKind::Ibgp => {
                    if peer_neighbor.rr_client {
                        LearnedFrom::IbgpClient
                    } else {
                        LearnedFrom::IbgpNonClient
                    }
                }
            };
            let mut path = r.path.clone();
            path.push(peer);
            let next_hop = if egress.next_hop_self {
                Some(u)
            } else {
                r.next_hop.or(Some(u))
            };
            let ibgp_hops = match s.kind {
                SessionKind::Ibgp => r.ibgp_hops + 1,
                SessionKind::Ebgp => 0,
            };
            routes.push(FloodRoute {
                node: peer,
                attrs: attrs_in,
                learned_from,
                from_node: Some(u),
                next_hop,
                ibgp_hops,
                parent: Some(idx),
                path,
            });
            queue.push_back(routes.len() - 1);
        }
    }

    // Phase 2: rank candidates per node and encode selection logic.
    // Variable i = "route i is this node's best".
    let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); net.topology.node_count()];
    for (i, r) in routes.iter().enumerate() {
        per_node[r.node.0 as usize].push(i);
    }
    // All-alive IGP distance matrix for the metric tie-break.
    let dist: Vec<Vec<Option<u64>>> = (0..net.topology.node_count())
        .map(|i| net.igp_distances(NodeId(i as u32)))
        .collect();
    let candidate_of = |r: &FloodRoute| Candidate {
        attrs: r.attrs.clone(),
        from_ebgp: matches!(r.learned_from, LearnedFrom::Ebgp | LearnedFrom::Local),
        igp_metric: r
            .next_hop
            .and_then(|nh| dist[r.node.0 as usize][nh.0 as usize])
            .unwrap_or(0),
        ibgp_hops: r.ibgp_hops,
        peer_router_id: r
            .from_node
            .map(|f| net.device(f).config.router_id)
            .unwrap_or(0),
    };

    let mut clauses: Vec<Formula> = Vec::new();
    for cand_ids in per_node.iter_mut() {
        cand_ids.sort_by(|&a, &b| cmp_candidates(&candidate_of(&routes[a]), &candidate_of(&routes[b])));
        for (rank, &i) in cand_ids.iter().enumerate() {
            let avail = match routes[i].parent {
                None => Formula::Const(true),
                Some(p) => Formula::var(p as u32),
            };
            let higher_not_selected: Vec<Formula> = cand_ids[..rank]
                .iter()
                .map(|&j| Formula::not(Formula::var(j as u32)))
                .collect();
            let mut rhs = higher_not_selected;
            rhs.push(avail);
            clauses.push(Formula::iff(Formula::var(i as u32), Formula::And(rhs)));
        }
    }

    if routes.is_empty() {
        return RacingReport {
            ambiguous: false,
            solutions: 0,
            candidates: 0,
        };
    }

    let _sp = hoyan_obs::span("racing.sat");
    hoyan_obs::metric!(counter "racing.checks").inc();
    let mut cnf = Cnf::new();
    cnf.ensure_var(routes.len() as u32 - 1);
    cnf.assert_formula(&Formula::And(clauses));
    let vars: Vec<u32> = (0..routes.len() as u32).collect();
    let mut solver = Solver::from_cnf(&cnf);
    let models = solver.count_models(&vars, limit.max(2));
    // Racing checks are usually near-instant (the selection logic is almost
    // Horn); a conflict-heavy solve is the slow path operators should hear
    // about instead of watching a silent stall.
    const CONFLICT_BUDGET: u64 = 10_000;
    if solver.total_conflicts > CONFLICT_BUDGET {
        hoyan_obs::metric!(counter "racing.slow_path").inc();
        hoyan_obs::warn(&format!(
            "racing check for {prefix} fell back to a slow SAT search \
             ({} conflicts, budget {CONFLICT_BUDGET})",
            solver.total_conflicts
        ));
    }
    RacingReport {
        ambiguous: models.len() > 1,
        solutions: models.len(),
        candidates: routes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn net(texts: &[String]) -> NetworkModel {
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    /// The Figure 1 network: AS 200 devices C and D both announce the
    /// prefix toward AS 100 (A and B, iBGP-connected); A's egress policy to
    /// B enlarges the weight, making B prefer A's relay over D's direct
    /// route while A prefers D's relayed route by local preference.
    fn figure1() -> NetworkModel {
        let a = concat!(
            "hostname A\nrouter-id 1\n",
            "interface e0\n peer C\ninterface e1\n peer B\n",
            "route-map LP300 permit 10\n set local-preference 300\n",
            "route-map LP500 permit 10\n set local-preference 500\n",
            "route-map W100 permit 10\n set weight 100\n",
            "router bgp 100\n",
            " neighbor C remote-as 200\n neighbor C route-map LP300 in\n",
            " neighbor B remote-as 100\n neighbor B route-map W100 out\n",
        )
        .to_string();
        let b = concat!(
            "hostname B\nrouter-id 2\n",
            "interface e0\n peer D\ninterface e1\n peer A\n",
            "route-map LP500 permit 10\n set local-preference 500\n",
            "router bgp 100\n",
            " neighbor D remote-as 200\n neighbor D route-map LP500 in\n",
            " neighbor A remote-as 100\n",
        )
        .to_string();
        let c = concat!(
            "hostname C\nrouter-id 3\n",
            "interface e0\n peer A\n",
            "router bgp 200\n network 10.0.1.0/24\n neighbor A remote-as 100\n",
        )
        .to_string();
        let d = concat!(
            "hostname D\nrouter-id 4\n",
            "interface e0\n peer B\n",
            "router bgp 200\n network 10.0.1.0/24\n neighbor B remote-as 100\n",
        )
        .to_string();
        net(&[a, b, c, d])
    }

    #[test]
    fn figure1_racing_is_ambiguous() {
        let n = figure1();
        let report = racing_check(&n, pfx("10.0.1.0/24"), 4);
        assert!(report.ambiguous, "Figure 1 has two convergences: {report:?}");
        assert_eq!(report.solutions, 2);
    }

    #[test]
    fn single_origin_is_unambiguous() {
        let n = net(&[
            concat!(
                "hostname X\ninterface e0\n peer Y\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor Y remote-as 200\n",
            )
            .to_string(),
            concat!(
                "hostname Y\ninterface e0\n peer X\n",
                "router bgp 200\n neighbor X remote-as 100\n",
            )
            .to_string(),
        ]);
        let report = racing_check(&n, pfx("10.0.1.0/24"), 4);
        assert!(!report.ambiguous);
        assert_eq!(report.solutions, 1);
    }

    #[test]
    fn unannounced_prefix_has_no_solutions() {
        let n = figure1();
        let report = racing_check(&n, pfx("99.0.0.0/8"), 4);
        assert!(!report.ambiguous);
        assert_eq!(report.candidates, 0);
    }
}
