//! The abstract first pass — ACORN-style route nondeterminism.
//!
//! Before a family pays for an exact conditioned simulation, this module
//! runs a cheap over/under-approximation sandwich over the BGP session
//! graph and tries to *prove* the family's reachability results outright:
//!
//! 1. **OA closure** (over-approximation): propagate *condition-free*
//!    route states — concrete attribute vectors with the topology BDDs
//!    dropped — until fixpoint. Every route the exact simulation could
//!    deliver under *some* failure scenario is covered by a state, so the
//!    closure over-approximates the set of RIB entries ("route
//!    nondeterminism": all candidate routes exist at once, none is
//!    selected). Crucially the states are exact per derivation, so policy
//!    evaluation reuses the device behavior model verbatim — the abstract
//!    pass cannot disagree with the exact simulator about what a
//!    route-map does.
//! 2. **UA fixpoint** (under-approximation): a per-node BDD `ua[n]` such
//!    that `ua[n] ⇒ reach(n)` on every scenario within the `≤ k`-failure
//!    ball. `ua` flows only over edges whose delivery is *guaranteed*:
//!    every abstract state at the sender either definitely survives
//!    advertisement + egress + ingress toward the receiver, or already
//!    carries the receiver on its path (in which case the receiver holds
//!    the covering ancestor entry whenever that state is live — the
//!    loop-prevention exemption).
//! 3. **OB fixpoint** (over-approximation): the same flow over every
//!    edge that could *possibly* deliver, giving `reach(n) ⇒ ob[n]`
//!    within the ball.
//!
//! If `gap(n) = ob[n] ∧ ¬ua[n]` is unsatisfiable within the failure ball
//! at every node, the sandwich is tight: `ua` *is* the exact reachability
//! condition on every scenario the verifier quantifies over, and the
//! family's scope and fragile sets are read off `ua` without running the
//! exact simulation. Otherwise the family falls through to the exact
//! path — the abstraction only ever proves, never refutes.
//!
//! ## Shadow discard
//!
//! Reflection topologies produce dominated duplicates: the same route
//! arriving both directly from a client and re-reflected over the mesh.
//! A new state is discarded when an existing state (a) ranks strictly
//! better under the exact decision process
//! ([`hoyan_device::cmp_candidates`] with concrete all-alive IGP metrics)
//! and (b) has a within-ball liveness condition implied by the new
//! state's. Such a route is never best in any scenario inside the ball,
//! is therefore never advertised by the exact simulator, and contributes
//! nothing to any reachability condition. The implication check uses a
//! *requirement signature*: the set of eBGP links plus the endpoints of
//! each maximal iBGP run along the derivation — consecutive iBGP session
//! conditions compose transitively (IS-IS reachability is transitive
//! within one IGP domain), so only run endpoints matter.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use hoyan_device::{cmp_candidates, Candidate, LearnedFrom, SessionKind};
use hoyan_logic::{Bdd, BddManager, BudgetBreach};
use hoyan_nettypes::{Ipv4Prefix, NodeId, RouteAttrs};

use crate::network::{BgpSession, NetworkModel};
use crate::propagate::{AttachedBase, LOCAL_WEIGHT};

/// Per-node abstract state cap: beyond this the closure is declared blown
/// up and the family falls through to the exact path.
const MAX_STATES_PER_NODE: usize = 64;

/// One conjunct of a derivation's within-ball liveness condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Req {
    /// An eBGP hop: this link must be alive.
    Link(u32),
    /// A completed iBGP run: these endpoints must be IGP-reachable
    /// (normalized `(min, max)` node ids).
    Conn(u32, u32),
}

fn conn(a: u32, b: u32) -> Req {
    if a < b {
        Req::Conn(a, b)
    } else {
        Req::Conn(b, a)
    }
}

/// A condition-free route state: one concrete derivation of a RIB entry
/// with its topology condition dropped. All attribute fields mirror
/// [`crate::propagate::Entry`] exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct AbsState {
    /// How the route entered the holding device.
    pub(crate) learned: LearnedFrom,
    /// Exact attributes (the device model's own ingress output).
    pub(crate) attrs: RouteAttrs,
    /// BGP next hop (`None` = the holder originated the route).
    pub(crate) next_hop: Option<NodeId>,
    /// iBGP reflection hops taken (cluster-list proxy).
    pub(crate) ibgp_hops: u32,
    /// Advertising peer (`None` for local seeds).
    pub(crate) from: Option<NodeId>,
    /// Every device on the derivation path, including the holder
    /// (mirrors `Entry::path` as a set — loop prevention).
    pub(crate) nodes: BTreeSet<u32>,
    /// Completed requirement items of the derivation.
    reqs: BTreeSet<Req>,
    /// Origin of the currently open iBGP run, if any.
    run_start: Option<u32>,
}

impl AbsState {
    fn local(origin_node: NodeId, attrs: RouteAttrs) -> Self {
        let mut nodes = BTreeSet::new();
        nodes.insert(origin_node.0);
        AbsState {
            learned: LearnedFrom::Local,
            attrs,
            next_hop: None,
            ibgp_hops: 0,
            from: None,
            nodes,
            reqs: BTreeSet::new(),
            run_start: None,
        }
    }

    /// The full requirement set, closing the open iBGP run at `at`.
    fn req_all(&self, at: u32) -> BTreeSet<Req> {
        let mut r = self.reqs.clone();
        if let Some(start) = self.run_start {
            if start != at {
                r.insert(conn(start, at));
            }
        }
        r
    }

    /// The exact decision-process candidate this state corresponds to at
    /// `holder`, with the concrete all-alive IGP metric (mirrors
    /// `Entry::candidate` plus the `deliver`-side metric rule).
    fn candidate(&self, holder: NodeId, igp_dist: &[Vec<Option<u64>>]) -> Candidate {
        let igp_metric = match self.next_hop {
            Some(nh) if nh != holder => igp_dist[holder.0 as usize][nh.0 as usize].unwrap_or(0),
            _ => 0,
        };
        Candidate {
            attrs: self.attrs.clone(),
            from_ebgp: matches!(self.learned, LearnedFrom::Ebgp | LearnedFrom::Local),
            igp_metric,
            ibgp_hops: self.ibgp_hops,
            peer_router_id: 0, // compared separately (needs device lookup)
        }
    }
}

/// `true` when `better` definitely shadows `worse` at `holder`: in every
/// ball scenario where `worse`'s entry is live, `better`'s is live too
/// and ranks strictly higher — so `worse` is never best, never
/// advertised, and its reachability contribution is subsumed.
fn shadows(
    better: &AbsState,
    worse: &AbsState,
    holder: NodeId,
    igp_dist: &[Vec<Option<u64>>],
    router_id: &impl Fn(Option<NodeId>) -> u32,
) -> bool {
    // Liveness implication: every requirement of `better` is literally a
    // requirement of `worse` (iBGP runs already endpoint-collapsed).
    if !better
        .req_all(holder.0)
        .is_subset(&worse.req_all(holder.0))
    {
        return false;
    }
    let mut b = better.candidate(holder, igp_dist);
    let mut w = worse.candidate(holder, igp_dist);
    b.peer_router_id = router_id(better.from);
    w.peer_router_id = router_id(worse.from);
    cmp_candidates(&b, &w) == Ordering::Less
}

/// The result of pushing a sender's abstract states over one session.
pub(crate) struct EdgeTransfer {
    /// States the receiver gains (over-approximation side).
    pub(crate) outputs: Vec<AbsState>,
    /// At least one state could be delivered.
    pub(crate) possible: bool,
    /// Delivery is guaranteed whenever the sender is reached and the
    /// session is alive: every sender state either definitely survives
    /// the full advertise → egress → ingress chain, or already carries
    /// the receiver on its path (loop-prevention exemption — the
    /// receiver then holds the covering ancestor entry).
    pub(crate) guaranteed: bool,
}

/// Mirrors one `emit` + `deliver` round of the exact engine for every
/// abstract state at `u`, over session `s`.
pub(crate) fn edge_transfer(
    net: &NetworkModel,
    u: NodeId,
    s: &BgpSession,
    prefix: Ipv4Prefix,
    states: &[AbsState],
) -> EdgeTransfer {
    let v = s.peer;
    let dev = net.device(u);
    let rdev = net.device(v);
    let mut out = EdgeTransfer {
        outputs: Vec::new(),
        possible: false,
        guaranteed: !states.is_empty(),
    };
    let Some(bgp) = dev.config.bgp.as_ref() else {
        out.guaranteed = false;
        return out;
    };
    let neighbor = &bgp.neighbors[s.neighbor_idx];
    let from_name = net.topology.name(u);
    for st in states {
        // Split horizon + loop prevention (`path.contains(&peer)`): the
        // exact engine never offers this entry to `v`, and whenever the
        // entry is live `v` already holds its ancestor — exempt from the
        // guarantee quantification.
        if st.nodes.contains(&v.0) {
            continue;
        }
        if !dev.may_advertise(st.learned, s.kind, neighbor) {
            out.guaranteed = false;
            continue;
        }
        let Some(egress) = dev.control_egress(neighbor, s.kind, prefix, &st.attrs) else {
            out.guaranteed = false;
            continue;
        };
        let next_hop = if egress.next_hop_self {
            Some(u)
        } else {
            st.next_hop.or(Some(u))
        };
        let Some(rneigh) = rdev.config.bgp.as_ref().and_then(|b| b.neighbor(from_name)) else {
            out.guaranteed = false;
            continue;
        };
        let Some(attrs_in) = rdev.control_ingress(rneigh, s.kind, prefix, &egress.attrs) else {
            out.guaranteed = false;
            continue;
        };
        let learned = match s.kind {
            SessionKind::Ebgp => LearnedFrom::Ebgp,
            SessionKind::Ibgp => {
                if rneigh.rr_client {
                    LearnedFrom::IbgpClient
                } else {
                    LearnedFrom::IbgpNonClient
                }
            }
        };
        let (reqs, run_start, ibgp_hops) = match s.kind {
            SessionKind::Ebgp => {
                let mut r = st.req_all(u.0);
                if let Some(link) = s.link {
                    r.insert(Req::Link(link.0));
                }
                (r, None, 0)
            }
            SessionKind::Ibgp => (
                st.reqs.clone(),
                Some(st.run_start.unwrap_or(u.0)),
                st.ibgp_hops + 1,
            ),
        };
        let mut nodes = st.nodes.clone();
        nodes.insert(v.0);
        out.outputs.push(AbsState {
            learned,
            attrs: attrs_in,
            next_hop,
            ibgp_hops,
            from: Some(u),
            nodes,
            reqs,
            run_start,
        });
        out.possible = true;
    }
    out
}

/// The local seed states for `prefix`, mirroring the exact engine's
/// seeding (network statements and redistributed statics).
pub(crate) fn seed_states(net: &NetworkModel, prefix: Ipv4Prefix) -> Vec<(NodeId, AbsState)> {
    let mut seeds = Vec::new();
    for n in net.topology.nodes() {
        let dev = net.device(n);
        let Some(bgp) = dev.config.bgp.as_ref() else {
            continue;
        };
        if bgp.networks.contains(&prefix) {
            let mut attrs = RouteAttrs::originated();
            attrs.weight = LOCAL_WEIGHT;
            seeds.push((n, AbsState::local(n, attrs)));
        }
        let redist = bgp
            .redistribute
            .iter()
            .any(|r| *r == hoyan_config::RedistSource::Static);
        if redist
            && dev.config.static_routes.iter().any(|s| s.prefix == prefix)
            && dev.redistribution_admits(prefix)
        {
            let mut attrs = RouteAttrs::originated();
            attrs.weight = LOCAL_WEIGHT;
            attrs.origin = hoyan_nettypes::Origin::Incomplete;
            seeds.push((n, AbsState::local(n, attrs)));
        }
    }
    seeds
}

/// Runs the OA closure for `prefix` over the session graph (restricted to
/// `edge_allowed` edges), returning the per-node abstract state sets, or
/// `None` when a node blows past [`MAX_STATES_PER_NODE`].
pub(crate) fn oa_closure(
    net: &NetworkModel,
    prefix: Ipv4Prefix,
    extra_seeds: &[(NodeId, AbsState)],
    edge_allowed: impl Fn(NodeId, &BgpSession) -> bool,
) -> Option<Vec<Vec<AbsState>>> {
    let n = net.topology.node_count();
    let igp_dist: Vec<Vec<Option<u64>>> = net
        .topology
        .nodes()
        .map(|src| net.igp_distances(src))
        .collect();
    let router_id = |from: Option<NodeId>| from.map_or(0, |f| net.device(f).config.router_id);
    let mut states: Vec<Vec<AbsState>> = vec![Vec::new(); n];
    let mut dirty: BTreeSet<u32> = BTreeSet::new();
    for (node, st) in seed_states(net, prefix)
        .into_iter()
        .chain(extra_seeds.iter().cloned())
    {
        states[node.0 as usize].push(st);
        dirty.insert(node.0);
    }
    while let Some(u) = dirty.pop_first() {
        let u = NodeId(u);
        for s in net.sessions_of(u) {
            if !edge_allowed(u, s) {
                continue;
            }
            let transfer = edge_transfer(net, u, s, prefix, &states[u.0 as usize]);
            let v = s.peer;
            let mut changed = false;
            for cand in transfer.outputs {
                let set = &mut states[v.0 as usize];
                if set.contains(&cand) {
                    continue;
                }
                if set
                    .iter()
                    .any(|ex| shadows(ex, &cand, v, &igp_dist, &router_id))
                {
                    continue;
                }
                // Reverse discard: states the newcomer dominates can no
                // longer be best either — drop them to keep sets small.
                set.retain(|ex| !shadows(&cand, ex, v, &igp_dist, &router_id));
                set.push(cand);
                if set.len() > MAX_STATES_PER_NODE {
                    return None;
                }
                changed = true;
            }
            if changed {
                dirty.insert(v.0);
            }
        }
    }
    Some(states)
}

/// Where the abstract pass reads iBGP session conditions from.
pub enum SessionConds<'a> {
    /// The sweep's shared base arena (PR 6): the same conditions the
    /// exact simulation would attach, so both stages price alike.
    Base(&'a AttachedBase),
    /// Treat every iBGP session as unconditionally alive — the
    /// region-local semantics used when verifying a module against
    /// neighbor summaries.
    AssumeUp,
}

pub(crate) struct CondEdge {
    pub(crate) u: u32,
    pub(crate) v: u32,
    pub(crate) cond: Bdd,
    pub(crate) guaranteed: bool,
}

/// Gauss–Seidel reachability fixpoint: `val[v] ∨= val[u] ∧ cond(u→v)`.
/// Returns `Ok(None)` if the round cap is hit (the flow is monotone so
/// this shouldn't happen; the cap guards non-termination regardless).
pub(crate) fn bdd_fixpoint(
    mgr: &mut BddManager,
    n: usize,
    seeds: &[NodeId],
    edges: &[CondEdge],
) -> Result<Option<Vec<Bdd>>, BudgetBreach> {
    let mut val = vec![Bdd::FALSE; n];
    for s in seeds {
        val[s.0 as usize] = Bdd::TRUE;
    }
    for _ in 0..n + 2 {
        let mut changed = false;
        for e in edges {
            let inflow = mgr.and(val[e.u as usize], e.cond);
            let joined = mgr.or(val[e.v as usize], inflow);
            if joined != val[e.v as usize] {
                val[e.v as usize] = joined;
                changed = true;
            }
        }
        if let Some(breach) = mgr.budget_exceeded() {
            return Err(breach);
        }
        if !changed {
            return Ok(Some(val));
        }
    }
    Ok(None)
}

/// What the abstract pass proved about one prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixProof {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Nodes that hold a route with all links alive (sorted by id).
    pub scope: Vec<NodeId>,
    /// Scope nodes whose reachability `≤ k` failures can break.
    pub fragile: Vec<NodeId>,
    /// Size of the largest per-node reachability BDD.
    pub max_reach_formula_len: usize,
}

/// Outcome of the abstract pass over one family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbstractOutcome {
    /// The sandwich is tight: these results are exact within the ball.
    Proved(Vec<PrefixProof>),
    /// The abstraction couldn't settle the family; fall through to the
    /// exact simulation (the reason is flight-recorder provenance).
    Inconclusive(&'static str),
}

/// `true` when `prefix` participates in any aggregation on any device —
/// aggregation couples prefixes within a family, which the per-prefix
/// abstract pass does not model.
fn aggregates_interact(net: &NetworkModel, prefix: Ipv4Prefix) -> bool {
    net.topology.nodes().any(|n| {
        net.device(n)
            .config
            .bgp
            .as_ref()
            .map(|b| {
                b.aggregates
                    .iter()
                    .any(|a| a.prefix == prefix || a.prefix.contains(prefix))
            })
            .unwrap_or(false)
    })
}

/// Attempts to prove `family`'s reachability results without an exact
/// simulation. Sound within the `≤ k`-failure ball: `Proved` scope and
/// fragile sets are byte-identical to what the exact pass would report;
/// `Inconclusive` means "run the exact pass", never "the check fails".
pub fn prove_family(
    net: &NetworkModel,
    sessions: SessionConds<'_>,
    mgr: &mut BddManager,
    family: &[Ipv4Prefix],
    k: u32,
) -> Result<AbstractOutcome, BudgetBreach> {
    let n = net.topology.node_count();
    let mut proofs = Vec::with_capacity(family.len());
    for &prefix in family {
        if aggregates_interact(net, prefix) {
            return Ok(AbstractOutcome::Inconclusive("aggregation in play"));
        }
        let Some(states) = oa_closure(net, prefix, &[], |_, _| true) else {
            return Ok(AbstractOutcome::Inconclusive("abstract state blow-up"));
        };
        let seeds: Vec<NodeId> = net
            .topology
            .nodes()
            .filter(|v| states[v.0 as usize].iter().any(|s| s.from.is_none()))
            .collect();
        let mut edges = Vec::new();
        for u in net.topology.nodes() {
            for s in net.sessions_of(u) {
                let t = edge_transfer(net, u, s, prefix, &states[u.0 as usize]);
                if !t.possible && !t.guaranteed {
                    continue;
                }
                let cond = match s.kind {
                    SessionKind::Ebgp => match s.link {
                        Some(link) => mgr.var(net.link_var(link)),
                        None => {
                            return Ok(AbstractOutcome::Inconclusive("linkless ebgp session"))
                        }
                    },
                    SessionKind::Ibgp => match &sessions {
                        SessionConds::AssumeUp => Bdd::TRUE,
                        SessionConds::Base(base) => {
                            let key = if u.0 < s.peer.0 {
                                (u.0, s.peer.0)
                            } else {
                                (s.peer.0, u.0)
                            };
                            match base.session(key) {
                                Some(c) => c,
                                None if !net.runs_isis(u) || !net.runs_isis(s.peer) => Bdd::TRUE,
                                None => {
                                    return Ok(AbstractOutcome::Inconclusive(
                                        "missing session condition",
                                    ))
                                }
                            }
                        }
                    },
                };
                edges.push(CondEdge {
                    u: u.0,
                    v: s.peer.0,
                    cond,
                    guaranteed: t.guaranteed,
                });
            }
        }
        if let Some(breach) = mgr.budget_exceeded() {
            return Err(breach);
        }
        let ua_edges: Vec<CondEdge> = edges
            .iter()
            .filter(|e| e.guaranteed)
            .map(|e| CondEdge {
                u: e.u,
                v: e.v,
                cond: e.cond,
                guaranteed: true,
            })
            .collect();
        let Some(ua) = bdd_fixpoint(mgr, n, &seeds, &ua_edges)? else {
            return Ok(AbstractOutcome::Inconclusive("fixpoint divergence"));
        };
        let Some(ob) = bdd_fixpoint(mgr, n, &seeds, &edges)? else {
            return Ok(AbstractOutcome::Inconclusive("fixpoint divergence"));
        };
        for i in 0..n {
            let gap = mgr.and_not(ob[i], ua[i]);
            if !gap.is_false() && mgr.min_failures_to_satisfy(gap) <= k {
                return Ok(AbstractOutcome::Inconclusive("abstraction gap"));
            }
            if let Some(breach) = mgr.budget_exceeded() {
                return Err(breach);
            }
        }
        let mut scope = Vec::new();
        let mut fragile = Vec::new();
        let mut max_len = 0usize;
        for (i, &v) in ua.iter().enumerate() {
            if v.is_false() {
                continue;
            }
            max_len = max_len.max(mgr.size(v));
            if mgr.eval(v, &[]) {
                scope.push(NodeId(i as u32));
                if mgr.min_failures_to_falsify(v) <= k {
                    fragile.push(NodeId(i as u32));
                }
            }
        }
        if let Some(breach) = mgr.budget_exceeded() {
            return Err(breach);
        }
        proofs.push(PrefixProof {
            prefix,
            scope,
            fragile,
            max_reach_formula_len: max_len,
        });
    }
    Ok(AbstractOutcome::Proved(proofs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn build(texts: &[&str]) -> NetworkModel {
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    fn prove(
        net: &NetworkModel,
        mgr: &mut BddManager,
        k: u32,
    ) -> Result<AbstractOutcome, BudgetBreach> {
        prove_family(net, SessionConds::AssumeUp, mgr, &[pfx("10.0.0.0/24")], k)
    }

    /// A 3-node eBGP chain with plain policies settles: UA == OB, and the
    /// proof's scope is the whole chain.
    #[test]
    fn plain_chain_is_proved() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n network 10.0.0.0/24\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\nrouter bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 300\n",
            "hostname C\ninterface e0\n peer B\nrouter bgp 300\n neighbor B remote-as 200\n",
        ]);
        let mut mgr = BddManager::new();
        let out = prove(&net, &mut mgr, 1).expect("no budget");
        let AbstractOutcome::Proved(proofs) = out else {
            panic!("expected Proved, got {out:?}");
        };
        assert_eq!(proofs.len(), 1);
        let names: Vec<&str> = proofs[0]
            .scope
            .iter()
            .map(|n| net.topology.name(*n))
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
        // B and C lose the route under single-link failures.
        let fragile: Vec<&str> = proofs[0]
            .fragile
            .iter()
            .map(|n| net.topology.name(*n))
            .collect();
        assert_eq!(fragile, vec!["B", "C"]);
    }

    /// B hears the prefix from both A1 and A2; routes via A2 are tagged
    /// and denied toward C. Whether C gets the route depends on which
    /// entry is best at B — genuinely selection-dependent, so the
    /// abstraction must hand the family to the exact pass.
    #[test]
    fn selection_dependent_policy_is_inconclusive() {
        let net = build(&[
            "hostname A1\ninterface e0\n peer B\nrouter bgp 100\n network 10.0.0.0/24\n neighbor B remote-as 300\n",
            "hostname A2\ninterface e0\n peer B\nrouter bgp 200\n network 10.0.0.0/24\n neighbor B remote-as 300\n",
            concat!(
                "hostname B\ninterface e0\n peer A1\ninterface e1\n peer A2\ninterface e2\n peer C\n",
                "route-map TAG permit 10\n set community 65000:2\n",
                "route-map NO2 deny 10\n match community 65000:2\nroute-map NO2 permit 20\n",
                "router bgp 300\n neighbor A1 remote-as 100\n neighbor A2 remote-as 200\n",
                " neighbor A2 route-map TAG in\n neighbor C remote-as 400\n neighbor C route-map NO2 out\n",
            ),
            "hostname C\ninterface e0\n peer B\nrouter bgp 400\n neighbor B remote-as 300\n",
        ]);
        let mut mgr = BddManager::new();
        let out = prove(&net, &mut mgr, 1).expect("no budget");
        assert_eq!(out, AbstractOutcome::Inconclusive("abstraction gap"));
    }

    /// DC originates over eBGP into PE; PE is an rr-client of both core
    /// reflectors CR1/CR2, which mesh as non-clients. The re-reflected
    /// copies are dominated duplicates; without shadow discard they
    /// poison the mesh-edge guarantees and the family would (wrongly)
    /// look unsettleable.
    #[test]
    fn reflected_route_is_shadow_discarded_and_proved() {
        let net = build(&[
            "hostname DC\ninterface e0\n peer PE\nrouter bgp 65001\n network 10.0.0.0/24\n neighbor PE remote-as 64500\n",
            concat!(
                "hostname PE\ninterface e0\n peer DC\ninterface e1\n peer CR1\ninterface e2\n peer CR2\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor DC remote-as 65001\n",
                " neighbor CR1 remote-as 64500\n neighbor CR2 remote-as 64500\n",
            ),
            concat!(
                "hostname CR1\ninterface e0\n peer PE\ninterface e1\n peer CR2\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor PE remote-as 64500\n",
                " neighbor PE route-reflector-client\n neighbor CR2 remote-as 64500\n",
            ),
            concat!(
                "hostname CR2\ninterface e0\n peer PE\ninterface e1\n peer CR1\n",
                "router isis\n area 1\nrouter bgp 64500\n neighbor PE remote-as 64500\n",
                " neighbor PE route-reflector-client\n neighbor CR1 remote-as 64500\n",
            ),
        ]);
        let states = oa_closure(&net, pfx("10.0.0.0/24"), &[], |_, _| true).expect("no blow-up");
        let cr1 = net.topology.node("CR1").expect("CR1 exists");
        // Shadow discard keeps exactly one state at the reflector: the
        // direct client copy (the re-reflected one is dominated).
        assert_eq!(states[cr1.0 as usize].len(), 1);
        assert_eq!(states[cr1.0 as usize][0].learned, LearnedFrom::IbgpClient);
        let mut mgr = BddManager::new();
        let out = prove(&net, &mut mgr, 1).expect("no budget");
        assert!(
            matches!(out, AbstractOutcome::Proved(_)),
            "expected Proved, got {out:?}"
        );
    }

    /// C shares A's AS number: standard eBGP loop prevention drops the
    /// route at C's ingress in every scenario, so the abstraction still
    /// settles the family — with C outside the scope.
    #[test]
    fn as_loop_excludes_node_but_proves() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n network 10.0.0.0/24\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\nrouter bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 100\n",
            "hostname C\ninterface e0\n peer B\nrouter bgp 100\n neighbor B remote-as 200\n",
        ]);
        let mut mgr = BddManager::new();
        let out = prove(&net, &mut mgr, 1).expect("no budget");
        let AbstractOutcome::Proved(proofs) = out else {
            panic!("expected Proved, got {out:?}");
        };
        let names: Vec<&str> = proofs[0]
            .scope
            .iter()
            .map(|n| net.topology.name(*n))
            .collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn aggregates_bail_to_exact() {
        let net = build(&[
            concat!(
                "hostname A\ninterface e0\n peer B\nrouter bgp 100\n network 10.0.0.0/24\n",
                " aggregate-address 10.0.0.0/16\n neighbor B remote-as 200\n",
            ),
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n neighbor A remote-as 100\n",
        ]);
        let mut mgr = BddManager::new();
        let out = prove(&net, &mut mgr, 1).expect("no budget");
        assert_eq!(out, AbstractOutcome::Inconclusive("aggregation in play"));
    }

    #[test]
    fn budget_breach_surfaces_as_err() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n network 10.0.0.0/24\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\nrouter bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 300\n",
            "hostname C\ninterface e0\n peer B\nrouter bgp 300\n neighbor B remote-as 200\n",
        ]);
        let mut mgr = BddManager::new();
        mgr.set_budget(hoyan_logic::BddBudget {
            max_live_nodes: None,
            max_ops: Some(0),
        });
        assert!(prove(&net, &mut mgr, 1).is_err());
    }
}
