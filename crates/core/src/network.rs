//! The network model: behavior models wired together by the topology, plus
//! the BGP session table.

use hoyan_config::{DeviceConfig, IsisLevel, Vendor};
use hoyan_device::{BehaviorModel, SessionKind, VsbProfile};
use hoyan_logic::{BddOrdering, VarOrder};
use hoyan_nettypes::{LinkId, NodeId};

use crate::topology::{Topology, TopologyError};

/// One established BGP session, from the perspective of `local`.
#[derive(Clone, Debug)]
pub struct BgpSession {
    /// The remote node.
    pub peer: NodeId,
    /// eBGP or iBGP.
    pub kind: SessionKind,
    /// Index of the neighbor block in the local device's BGP config.
    pub neighbor_idx: usize,
    /// The direct link for eBGP sessions (iBGP rides on IS-IS).
    pub link: Option<LinkId>,
}

/// The complete model: topology + per-device behavior models + sessions.
pub struct NetworkModel {
    /// The physical topology.
    pub topology: Topology,
    /// Behavior models indexed by node id.
    pub devices: Vec<BehaviorModel>,
    /// Established BGP sessions per node. A session exists only when *both*
    /// sides declare each other with matching AS numbers, and (for eBGP)
    /// they are directly linked.
    pub sessions: Vec<Vec<BgpSession>>,
    /// The link-id ↔ BDD-variable bijection every simulation over this
    /// model must use ([`NetworkModel::link_var`] / [`NetworkModel::var_link`]).
    pub order: VarOrder,
}

impl NetworkModel {
    /// Builds a network model. `profile` chooses the VSB profile per
    /// vendor — pass [`VsbProfile::ground_truth`] for an oracle network or
    /// the verifier's current (possibly flawed) model registry.
    pub fn from_configs(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
    ) -> Result<NetworkModel, TopologyError> {
        NetworkModel::from_configs_ordered(configs, profile, BddOrdering::Registration)
    }

    /// [`NetworkModel::from_configs`] with an explicit BDD variable
    /// ordering. [`BddOrdering::Registration`] keeps the historical
    /// identity mapping; the topology-aware orders run a deterministic
    /// DFS/BFS walk ([`Topology::link_visit_order`]) so links sharing
    /// paths get adjacent variable indices.
    pub fn from_configs_ordered(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        ordering: BddOrdering,
    ) -> Result<NetworkModel, TopologyError> {
        let topology = Topology::from_configs(&configs)?;
        let order = link_order(&topology, ordering);
        let devices: Vec<BehaviorModel> = configs
            .into_iter()
            .map(|c| {
                let vsb = profile(c.vendor);
                BehaviorModel::new(c, vsb)
            })
            .collect();

        let mut sessions = vec![Vec::new(); devices.len()];
        for (i, dev) in devices.iter().enumerate() {
            let local = NodeId(i as u32);
            let Some(bgp) = dev.config.bgp.as_ref() else {
                continue;
            };
            for (ni, n) in bgp.neighbors.iter().enumerate() {
                let Some(peer) = topology.node(&n.peer) else {
                    continue; // neighbor to a device outside the snapshot
                };
                let peer_dev = &devices[peer.0 as usize];
                let Some(peer_bgp) = peer_dev.config.bgp.as_ref() else {
                    continue;
                };
                // The peer must declare us back, and the AS numbers must
                // agree from both perspectives (taking local-as into
                // account: the AS we present is local_as if configured).
                let Some(reverse) = peer_bgp.neighbor(topology.name(local)) else {
                    continue;
                };
                let we_present = n.local_as.unwrap_or(bgp.asn);
                let they_present = reverse.local_as.unwrap_or(peer_bgp.asn);
                if n.remote_as != they_present || reverse.remote_as != we_present {
                    continue;
                }
                let kind = if n.remote_as == bgp.asn {
                    SessionKind::Ibgp
                } else {
                    SessionKind::Ebgp
                };
                let link = topology.link_between(local, peer);
                if kind == SessionKind::Ebgp && link.is_none() {
                    continue; // eBGP requires a direct link in our model
                }
                sessions[i].push(BgpSession {
                    peer,
                    kind,
                    neighbor_idx: ni,
                    link,
                });
            }
        }
        Ok(NetworkModel {
            topology,
            devices,
            sessions,
            order,
        })
    }

    /// The BDD aliveness variable of `link` under the model's order.
    #[inline]
    pub fn link_var(&self, link: LinkId) -> u32 {
        self.order.var_of(link.0)
    }

    /// The link whose aliveness BDD variable `var` tests — the inverse of
    /// [`NetworkModel::link_var`], used when rendering witnesses.
    #[inline]
    pub fn var_link(&self, var: u32) -> LinkId {
        LinkId(self.order.link_of(var))
    }

    /// The behavior model of a node.
    pub fn device(&self, n: NodeId) -> &BehaviorModel {
        &self.devices[n.0 as usize]
    }

    /// Established sessions of a node.
    pub fn sessions_of(&self, n: NodeId) -> &[BgpSession] {
        &self.sessions[n.0 as usize]
    }

    /// Whether a node runs IS-IS.
    pub fn runs_isis(&self, n: NodeId) -> bool {
        self.device(n).config.isis.is_some()
    }

    /// Whether an IS-IS adjacency forms across `link` between `a` and `b`:
    /// both run IS-IS and share a level (L1 additionally requires the same
    /// area). Route penetration between levels is always on, matching the
    /// paper's network (Appendix C ties L1/L2 penetration to communities;
    /// we model penetration as enabled).
    pub fn isis_adjacency(&self, a: NodeId, b: NodeId) -> bool {
        let (Some(ia), Some(ib)) = (
            self.device(a).config.isis.as_ref(),
            self.device(b).config.isis.as_ref(),
        ) else {
            return false;
        };
        if ia.protocol != ib.protocol {
            return false; // IS-IS and OSPF do not form adjacencies
        }
        if ia.protocol == hoyan_config::IgpKind::Ospf {
            // OSPF: area 0 is the backbone; same-area or either-side-
            // backbone adjacency (simplified ABR model).
            return ia.area == ib.area || ia.area == 0 || ib.area == 0;
        }
        let l1 = |l: IsisLevel| matches!(l, IsisLevel::L1 | IsisLevel::L1L2);
        let l2 = |l: IsisLevel| matches!(l, IsisLevel::L2 | IsisLevel::L1L2);
        (l1(ia.level) && l1(ib.level) && ia.area == ib.area) || (l2(ia.level) && l2(ib.level))
    }

    /// All-alive IS-IS distances from `src` (Dijkstra over adjacency),
    /// used for the IGP-metric step of the BGP decision process.
    pub fn igp_distances(&self, src: NodeId) -> Vec<Option<u64>> {
        let n = self.topology.node_count();
        let mut dist: Vec<Option<u64>> = vec![None; n];
        if !self.runs_isis(src) {
            dist[src.0 as usize] = Some(0);
            return dist;
        }
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.0 as usize] = Some(0);
        heap.push(std::cmp::Reverse((0u64, src.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist[u as usize] != Some(d) {
                continue;
            }
            let u_id = NodeId(u);
            for &(v, link) in self.topology.neighbors(u_id) {
                if !self.isis_adjacency(u_id, v) {
                    continue;
                }
                let nd = d + self.topology.metric_from(u_id, link) as u64;
                if dist[v.0 as usize].is_none_or(|old| nd < old) {
                    dist[v.0 as usize] = Some(nd);
                    heap.push(std::cmp::Reverse((nd, v.0)));
                }
            }
        }
        dist
    }
}

/// Computes the link→variable bijection for `ordering` over `topo`,
/// bumping the `bdd.order.*` counters when a non-trivial pass runs.
pub fn link_order(topo: &Topology, ordering: BddOrdering) -> VarOrder {
    let bfs = match ordering {
        BddOrdering::Registration => return VarOrder::identity(topo.link_count()),
        BddOrdering::Dfs => false,
        BddOrdering::Bfs => true,
    };
    hoyan_obs::metric!(counter "bdd.order.passes").inc();
    hoyan_obs::metric!(counter "bdd.order.links").add(topo.link_count() as u64);
    // The walk numbers every link exactly once, so this cannot fail; the
    // identity fallback keeps the function total without a panic path.
    VarOrder::from_visit_order(&topo.link_visit_order(bfs))
        .unwrap_or_else(|| VarOrder::identity(topo.link_count()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;

    fn build(texts: &[&str]) -> NetworkModel {
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn sessions_require_mutual_declaration() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n neighbor A remote-as 100\n",
            "hostname C\n", // no interfaces, no bgp
        ]);
        let a = net.topology.node("A").unwrap();
        let b = net.topology.node("B").unwrap();
        assert_eq!(net.sessions_of(a).len(), 1);
        assert_eq!(net.sessions_of(a)[0].peer, b);
        assert_eq!(net.sessions_of(a)[0].kind, SessionKind::Ebgp);
        assert!(net.sessions_of(a)[0].link.is_some());
    }

    #[test]
    fn mismatched_as_numbers_do_not_form_a_session() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n neighbor B remote-as 999\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n neighbor A remote-as 100\n",
        ]);
        let a = net.topology.node("A").unwrap();
        assert!(net.sessions_of(a).is_empty());
    }

    #[test]
    fn local_as_satisfies_the_peer_expectation() {
        // B expects AS 150; A's real AS is 100 but presents local-as 150.
        let net = build(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 100\n neighbor B remote-as 200\n neighbor B local-as 150\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n neighbor A remote-as 150\n",
        ]);
        let a = net.topology.node("A").unwrap();
        assert_eq!(net.sessions_of(a).len(), 1);
    }

    #[test]
    fn ibgp_session_without_direct_link() {
        let net = build(&[
            "hostname A\ninterface e0\n peer M\nrouter bgp 100\n neighbor B remote-as 100\nrouter isis\n area 1\n",
            "hostname B\ninterface e0\n peer M\nrouter bgp 100\n neighbor A remote-as 100\nrouter isis\n area 1\n",
            "hostname M\ninterface e0\n peer A\ninterface e1\n peer B\nrouter isis\n area 1\n",
        ]);
        let a = net.topology.node("A").unwrap();
        assert_eq!(net.sessions_of(a).len(), 1);
        assert_eq!(net.sessions_of(a)[0].kind, SessionKind::Ibgp);
        assert!(net.sessions_of(a)[0].link.is_none());
    }

    #[test]
    fn isis_adjacency_levels_and_areas() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\ninterface e1\n peer C\nrouter isis\n area 1\n is-level level-1\n",
            "hostname B\ninterface e0\n peer A\nrouter isis\n area 2\n is-level level-1\n",
            "hostname C\ninterface e0\n peer A\nrouter isis\n area 2\n is-level level-1-2\n",
        ]);
        let a = net.topology.node("A").unwrap();
        let b = net.topology.node("B").unwrap();
        let c = net.topology.node("C").unwrap();
        // Different areas, both L1-only: no adjacency.
        assert!(!net.isis_adjacency(a, b));
        // A is L1 in area 1; C is L1L2 in area 2: no L1 (area differs), no
        // L2 (A is not L2-capable).
        assert!(!net.isis_adjacency(a, c));
        // Same check is symmetric.
        assert!(!net.isis_adjacency(c, a));
    }

    #[test]
    fn ospf_uses_the_same_machinery() {
        // "OSPF follows the same process" (§5.4): two OSPF routers in area
        // 0 form an adjacency; an OSPF and an IS-IS router do not.
        let net = build(&[
            "hostname A
interface e0
 peer B
interface e1
 peer C
router ospf
 area 0
",
            "hostname B
interface e0
 peer A
router ospf
 area 5
",
            "hostname C
interface e0
 peer A
router isis
 area 0
",
        ]);
        let a = net.topology.node("A").unwrap();
        let b = net.topology.node("B").unwrap();
        let c = net.topology.node("C").unwrap();
        assert!(net.isis_adjacency(a, b), "ABR adjacency via backbone");
        assert!(!net.isis_adjacency(a, c), "mixed protocols never adjacent");
        let d = net.igp_distances(a);
        assert_eq!(d[b.0 as usize], Some(10));
    }

    #[test]
    fn igp_distances_respect_metrics() {
        let net = build(&[
            "hostname A\ninterface e0\n peer B\n link-metric 10\ninterface e1\n peer C\n link-metric 100\nrouter isis\n area 1\n",
            "hostname B\ninterface e0\n peer A\n link-metric 10\ninterface e1\n peer C\n link-metric 10\nrouter isis\n area 1\n",
            "hostname C\ninterface e0\n peer A\n link-metric 100\ninterface e1\n peer B\n link-metric 10\nrouter isis\n area 1\n",
        ]);
        let a = net.topology.node("A").unwrap();
        let c = net.topology.node("C").unwrap();
        let d = net.igp_distances(a);
        assert_eq!(d[c.0 as usize], Some(20)); // via B, not the direct 100
    }

    #[test]
    fn ordered_model_carries_a_permutation() {
        let texts = [
            "hostname A\ninterface e0\n peer B\ninterface e1\n peer C\n",
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\n",
            "hostname C\ninterface e0\n peer A\ninterface e1\n peer B\n",
        ];
        let configs = |()| texts.iter().map(|t| parse_config(t).unwrap()).collect::<Vec<_>>();
        let reg = NetworkModel::from_configs_ordered(
            configs(()),
            VsbProfile::ground_truth,
            BddOrdering::Registration,
        )
        .unwrap();
        assert!(reg.order.is_identity());
        for ordering in [BddOrdering::Dfs, BddOrdering::Bfs] {
            let net = NetworkModel::from_configs_ordered(
                configs(()),
                VsbProfile::ground_truth,
                ordering,
            )
            .unwrap();
            assert_eq!(net.order.len(), net.topology.link_count());
            for l in net.topology.nodes().flat_map(|n| {
                net.topology.neighbors(n).iter().map(|&(_, l)| l)
            }) {
                // link_var/var_link invert each other on every real link.
                assert_eq!(net.var_link(net.link_var(l)), l);
            }
        }
    }
}
