//! Network topology, derived from device configurations.
//!
//! Two devices are linked when each has an interface whose `peer` names the
//! other. Every link owns a Boolean *aliveness variable* — its [`LinkId`]
//! doubles as the BDD variable index used in topology conditions.

use std::collections::HashMap;

use hoyan_config::DeviceConfig;
use hoyan_nettypes::{Ipv4Addr, Ipv4Prefix, LinkId, NodeId};

/// An error constructing a topology from configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// Two devices share a hostname.
    DuplicateHostname(String),
    /// An interface names a peer with no configuration.
    UnknownPeer {
        /// The device with the dangling interface.
        device: String,
        /// The peer it names.
        peer: String,
    },
    /// Device X has an interface to Y, but Y has none back to X.
    AsymmetricLink {
        /// The device declaring the link.
        device: String,
        /// The peer missing the reverse declaration.
        peer: String,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateHostname(h) => write!(f, "duplicate hostname {h}"),
            TopologyError::UnknownPeer { device, peer } => {
                write!(f, "{device} has an interface to unknown device {peer}")
            }
            TopologyError::AsymmetricLink { device, peer } => {
                write!(f, "{device} declares a link to {peer} but not vice versa")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The functional role a router plays in the WAN, recovered from topogen's
/// hostname convention `<ROLE><region>x<index>` (e.g. `CR2x0`, `PE0x3`).
/// Hand-written fixtures that don't follow the convention get
/// [`RouterRole::Unknown`] — the region partitioner then falls back to
/// connectivity components.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouterRole {
    /// Backbone core router (`CR`).
    Core,
    /// Provider edge toward customer sites (`PE`).
    ProviderEdge,
    /// Metro aggregation router (`MAN`).
    Man,
    /// Customer data-center edge (`DC`).
    DataCenter,
    /// External ISP peer (`ISP`).
    Isp,
    /// Hostname does not follow the role convention.
    Unknown,
}

impl RouterRole {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RouterRole::Core => "core",
            RouterRole::ProviderEdge => "pe",
            RouterRole::Man => "man",
            RouterRole::DataCenter => "dc",
            RouterRole::Isp => "isp",
            RouterRole::Unknown => "unknown",
        }
    }
}

/// Parses `<LETTERS><digits>x<digits>` hostnames into a role and region
/// hint. Only the full pattern with a known role prefix classifies;
/// anything else ("PEACH", "A", "CR2") is `Unknown`.
fn parse_role(hostname: &str) -> (RouterRole, Option<u32>) {
    let letters_end = hostname
        .find(|c: char| !c.is_ascii_uppercase())
        .unwrap_or(hostname.len());
    let (letters, rest) = hostname.split_at(letters_end);
    let role = match letters {
        "CR" => RouterRole::Core,
        "PE" => RouterRole::ProviderEdge,
        "MAN" => RouterRole::Man,
        "DC" => RouterRole::DataCenter,
        "ISP" => RouterRole::Isp,
        _ => return (RouterRole::Unknown, None),
    };
    let Some((region, index)) = rest.split_once('x') else {
        return (RouterRole::Unknown, None);
    };
    if region.is_empty()
        || index.is_empty()
        || !region.bytes().all(|b| b.is_ascii_digit())
        || !index.bytes().all(|b| b.is_ascii_digit())
    {
        return (RouterRole::Unknown, None);
    }
    match region.parse::<u32>() {
        Ok(r) => (role, Some(r)),
        Err(_) => (RouterRole::Unknown, None),
    }
}

/// The physical topology: named nodes and undirected links.
#[derive(Clone, Debug)]
pub struct Topology {
    names: Vec<String>,
    roles: Vec<(RouterRole, Option<u32>)>,
    links: Vec<(NodeId, NodeId)>,
    link_metrics: Vec<(u32, u32)>, // (metric at .0 side, metric at .1 side)
    by_name: HashMap<String, NodeId>,
    link_by_pair: HashMap<(NodeId, NodeId), LinkId>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Derives the topology from a set of device configurations.
    pub fn from_configs(configs: &[DeviceConfig]) -> Result<Topology, TopologyError> {
        let mut by_name = HashMap::new();
        for (i, c) in configs.iter().enumerate() {
            if by_name.insert(c.hostname.clone(), NodeId(i as u32)).is_some() {
                return Err(TopologyError::DuplicateHostname(c.hostname.clone()));
            }
        }
        let mut links = Vec::new();
        let mut link_metrics = Vec::new();
        let mut link_by_pair = HashMap::new();
        for (i, c) in configs.iter().enumerate() {
            let a = NodeId(i as u32);
            for iface in &c.interfaces {
                let b = *by_name
                    .get(&iface.peer)
                    .ok_or_else(|| TopologyError::UnknownPeer {
                        device: c.hostname.clone(),
                        peer: iface.peer.clone(),
                    })?;
                let peer_cfg = &configs[b.0 as usize];
                let reverse = peer_cfg.interface_to(&c.hostname);
                let reverse = reverse.ok_or_else(|| TopologyError::AsymmetricLink {
                    device: c.hostname.clone(),
                    peer: iface.peer.clone(),
                })?;
                if a.0 < b.0 {
                    let id = LinkId(links.len() as u32);
                    links.push((a, b));
                    link_metrics.push((iface.link_metric, reverse.link_metric));
                    link_by_pair.insert((a, b), id);
                    link_by_pair.insert((b, a), id);
                }
            }
        }
        let mut adjacency = vec![Vec::new(); configs.len()];
        for (idx, (a, b)) in links.iter().enumerate() {
            adjacency[a.0 as usize].push((*b, LinkId(idx as u32)));
            adjacency[b.0 as usize].push((*a, LinkId(idx as u32)));
        }
        Ok(Topology {
            names: configs.iter().map(|c| c.hostname.clone()).collect(),
            roles: configs.iter().map(|c| parse_role(&c.hostname)).collect(),
            links,
            link_metrics,
            by_name,
            link_by_pair,
            adjacency,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links (also the number of aliveness variables).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Node id by hostname.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Hostname of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0 as usize]
    }

    /// The router's role, recovered from its hostname.
    pub fn role(&self, n: NodeId) -> RouterRole {
        self.roles[n.0 as usize].0
    }

    /// The region number encoded in the hostname, when the role convention
    /// applies (`PE2x1` → region 2).
    pub fn region_hint(&self, n: NodeId) -> Option<u32> {
        self.roles[n.0 as usize].1
    }

    /// The link between two nodes, if directly connected.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.link_by_pair.get(&(a, b)).copied()
    }

    /// The endpoints of a link.
    pub fn link_ends(&self, l: LinkId) -> (NodeId, NodeId) {
        self.links[l.0 as usize]
    }

    /// Neighbors of `n` with the connecting link.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.0 as usize]
    }

    /// Link ids in the order a deterministic graph walk first encounters
    /// them — the substrate of the topology-aware BDD variable orderings.
    /// The walk starts at node 0, scans each visited node's adjacency in
    /// link-registration order, numbers every not-yet-numbered incident
    /// link, and continues depth-first (`bfs = false`) or breadth-first
    /// (`bfs = true`); remaining components are walked in node-id order.
    /// The result is a permutation of `0..link_count()`: links touching
    /// the same node (and, transitively, the same paths) get adjacent
    /// positions, which is what keeps path-condition BDDs narrow.
    pub fn link_visit_order(&self, bfs: bool) -> Vec<u32> {
        let mut seen = vec![false; self.node_count()];
        let mut numbered = vec![false; self.link_count()];
        let mut order = Vec::with_capacity(self.link_count());
        for start in 0..self.node_count() {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            if bfs {
                // BFS numbers a node's whole star before moving outward:
                // links at the same distance from the start share a band.
                let mut frontier = std::collections::VecDeque::from([NodeId(start as u32)]);
                while let Some(u) = frontier.pop_front() {
                    for &(v, link) in self.neighbors(u) {
                        if !numbered[link.0 as usize] {
                            numbered[link.0 as usize] = true;
                            order.push(link.0);
                        }
                        if !seen[v.0 as usize] {
                            seen[v.0 as usize] = true;
                            frontier.push_back(v);
                        }
                    }
                }
            } else {
                // DFS numbers each link the moment the descent first
                // crosses it, so the links of a root-to-leaf path occupy
                // *consecutive* positions — the layout path-shaped
                // reachability conjunctions want.
                let mut stack: Vec<(NodeId, usize)> = vec![(NodeId(start as u32), 0)];
                while let Some(top) = stack.last_mut() {
                    let (u, i) = *top;
                    let nbrs = self.neighbors(u);
                    if i >= nbrs.len() {
                        stack.pop();
                        continue;
                    }
                    top.1 += 1;
                    let (v, link) = nbrs[i];
                    if !numbered[link.0 as usize] {
                        numbered[link.0 as usize] = true;
                        order.push(link.0);
                    }
                    if !seen[v.0 as usize] {
                        seen[v.0 as usize] = true;
                        stack.push((v, 0));
                    }
                }
            }
        }
        // Every link is incident to a visited node, so the walk numbers
        // them all; keep the loop as a structural guarantee regardless.
        for l in 0..self.link_count() {
            if !numbered[l] {
                order.push(l as u32);
            }
        }
        order
    }

    /// The IS-IS metric of the link as configured on `from`'s side.
    pub fn metric_from(&self, from: NodeId, link: LinkId) -> u32 {
        let (a, _b) = self.links[link.0 as usize];
        let (ma, mb) = self.link_metrics[link.0 as usize];
        if from == a {
            ma
        } else {
            mb
        }
    }

    /// The synthetic loopback /32 of a node, used as the destination prefix
    /// when IS-IS is run as a path-vector protocol (Appendix C).
    pub fn loopback(&self, n: NodeId) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::new(10, 255, (n.0 >> 8) as u8, n.0 as u8), 32)
    }

    /// Inverse of [`Topology::loopback`].
    pub fn node_of_loopback(&self, p: Ipv4Prefix) -> Option<NodeId> {
        if p.len() != 32 {
            return None;
        }
        let [a, b, c, d] = p.network().octets();
        if a != 10 || b != 255 {
            return None;
        }
        let id = ((c as u32) << 8) | d as u32;
        (id < self.names.len() as u32).then_some(NodeId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;

    fn cfg(text: &str) -> DeviceConfig {
        parse_config(text).unwrap()
    }

    fn triangle() -> Vec<DeviceConfig> {
        vec![
            cfg("hostname A\ninterface e0\n peer B\ninterface e1\n peer C\n link-metric 5\n"),
            cfg("hostname B\ninterface e0\n peer A\ninterface e1\n peer C\n"),
            cfg("hostname C\ninterface e0\n peer A\n link-metric 7\ninterface e1\n peer B\n"),
        ]
    }

    #[test]
    fn builds_triangle() {
        let t = Topology::from_configs(&triangle()).unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        let a = t.node("A").unwrap();
        let b = t.node("B").unwrap();
        let c = t.node("C").unwrap();
        assert!(t.link_between(a, b).is_some());
        assert_eq!(t.link_between(a, b), t.link_between(b, a));
        assert_eq!(t.neighbors(a).len(), 2);
        assert_eq!(t.name(c), "C");
    }

    #[test]
    fn per_side_metrics() {
        let t = Topology::from_configs(&triangle()).unwrap();
        let a = t.node("A").unwrap();
        let c = t.node("C").unwrap();
        let l = t.link_between(a, c).unwrap();
        assert_eq!(t.metric_from(a, l), 5);
        assert_eq!(t.metric_from(c, l), 7);
    }

    #[test]
    fn rejects_duplicate_hostname() {
        let cfgs = vec![cfg("hostname A\n"), cfg("hostname A\n")];
        assert_eq!(
            Topology::from_configs(&cfgs).err(),
            Some(TopologyError::DuplicateHostname("A".into()))
        );
    }

    #[test]
    fn rejects_unknown_peer() {
        let cfgs = vec![cfg("hostname A\ninterface e0\n peer GHOST\n")];
        assert!(matches!(
            Topology::from_configs(&cfgs),
            Err(TopologyError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric_link() {
        let cfgs = vec![cfg("hostname A\ninterface e0\n peer B\n"), cfg("hostname B\n")];
        assert!(matches!(
            Topology::from_configs(&cfgs),
            Err(TopologyError::AsymmetricLink { .. })
        ));
    }

    #[test]
    fn link_visit_orders_are_permutations() {
        let t = Topology::from_configs(&triangle()).unwrap();
        for bfs in [false, true] {
            let order = t.link_visit_order(bfs);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..t.link_count() as u32).collect::<Vec<_>>(),
                "walk (bfs={bfs}) must number every link exactly once"
            );
            // Determinism: the same walk twice yields the same order.
            assert_eq!(order, t.link_visit_order(bfs));
        }
    }

    #[test]
    fn dfs_and_bfs_walks_differ_on_a_path_plus_chord() {
        // A path A-B-C-D with chord A-D: DFS from A runs down the path
        // before numbering the chord's far encounters differently than BFS,
        // which numbers all of A's incident links first.
        let cfgs = vec![
            cfg("hostname A\ninterface e0\n peer B\ninterface e1\n peer D\n"),
            cfg("hostname B\ninterface e0\n peer A\ninterface e1\n peer C\n"),
            cfg("hostname C\ninterface e0\n peer B\ninterface e1\n peer D\n"),
            cfg("hostname D\ninterface e0\n peer C\ninterface e1\n peer A\n"),
        ];
        let t = Topology::from_configs(&cfgs).unwrap();
        let dfs = t.link_visit_order(false);
        let bfs = t.link_visit_order(true);
        assert_ne!(dfs, bfs, "the two walks must explore differently here");
    }

    #[test]
    fn role_parsing_follows_the_full_convention() {
        assert_eq!(parse_role("CR2x0"), (RouterRole::Core, Some(2)));
        assert_eq!(parse_role("PE0x3"), (RouterRole::ProviderEdge, Some(0)));
        assert_eq!(parse_role("MAN11x7"), (RouterRole::Man, Some(11)));
        assert_eq!(parse_role("DC1x0"), (RouterRole::DataCenter, Some(1)));
        assert_eq!(parse_role("ISP4x2"), (RouterRole::Isp, Some(4)));
        // Anything short of the full <ROLE><digits>x<digits> pattern is
        // Unknown: no false positives on hand-written fixture names.
        for bad in ["A", "PEACH", "CR2", "PEx1", "PE2x", "PE2xq", "XRx1", "pe2x0"] {
            assert_eq!(parse_role(bad), (RouterRole::Unknown, None), "{bad}");
        }
    }

    #[test]
    fn fixture_without_convention_has_unknown_roles() {
        let t = Topology::from_configs(&triangle()).unwrap();
        for n in t.nodes() {
            assert_eq!(t.role(n), RouterRole::Unknown);
            assert_eq!(t.region_hint(n), None);
        }
    }

    #[test]
    fn loopback_roundtrip() {
        let t = Topology::from_configs(&triangle()).unwrap();
        for n in t.nodes() {
            assert_eq!(t.node_of_loopback(t.loopback(n)), Some(n));
        }
        assert_eq!(t.node_of_loopback("10.255.0.200/32".parse().unwrap()), None);
        assert_eq!(t.node_of_loopback("10.254.0.0/32".parse().unwrap()), None);
    }
}
