//! IS-IS support (Appendix C): the IGP is verified by *translating it into a
//! path-vector protocol* and running the same conditioned propagation engine
//! used for BGP, with the accumulated link weight as the ranking attribute.
//!
//! The result is an [`IsisDb`]: for every (router, destination-router) pair,
//! the ranked next hops with topology conditions, the unconditioned
//! shortest-path distance matrix (for the BGP IGP-metric tie-break), and the
//! reachability condition that iBGP sessions ride on.

use std::collections::HashMap;

use hoyan_logic::{Bdd, BddManager};
use hoyan_nettypes::NodeId;

use crate::network::NetworkModel;
use crate::propagate::{SimError, Simulation};

/// One conditioned IS-IS forwarding alternative.
#[derive(Clone, Debug)]
pub struct IsisHop {
    /// Condition under which this alternative exists.
    pub cond: Bdd,
    /// The neighbor the packet is forwarded to.
    pub next_hop: NodeId,
    /// Accumulated metric of the path this alternative represents.
    pub metric: u64,
}

/// Conditioned IS-IS routing state for the whole network.
pub struct IsisDb {
    /// Manager owning all conditions in this database.
    pub mgr: BddManager,
    reach: HashMap<(u32, u32), Bdd>,
    hops: HashMap<(u32, u32), Vec<IsisHop>>,
    /// All-alive distance matrix (`dist[u][v]`), `None` = unreachable.
    pub dist: Vec<Vec<Option<u64>>>,
    /// Pruning statistics of the underlying IGP simulation.
    pub stats: crate::propagate::PruneStats,
}

impl IsisDb {
    /// Runs one IGP simulation per destination router (fanned out across
    /// threads — per-destination propagations are independent, mirroring
    /// the paper's per-prefix parallelism) and merges the conditioned
    /// results into one database. `k = None` disables more-than-k pruning.
    pub fn build(net: &NetworkModel, k: Option<u32>) -> Result<IsisDb, SimError> {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let _span = hoyan_obs::span("isis.build");
        let dests: Vec<NodeId> = net.topology.nodes().filter(|n| net.runs_isis(*n)).collect();
        type DestResult = (NodeId, BddManager, Vec<(NodeId, Bdd, Vec<(Bdd, NodeId, u64)>)>);
        let results: std::sync::Mutex<Vec<DestResult>> = std::sync::Mutex::new(Vec::new());
        let error: std::sync::Mutex<Option<SimError>> = std::sync::Mutex::new(None);
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(dests.len().max(1));
        let stats_mutex = std::sync::Mutex::new(crate::propagate::PruneStats::default());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| loop {
                        if failed.load(Ordering::Acquire) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= dests.len() {
                            break;
                        }
                        let dest = dests[i];
                        let _spf = hoyan_obs::span("isis.spf");
                        let mut sim = Simulation::new_igp_for(net, k, &[dest]);
                        if let Err(e) = sim.run() {
                            error
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .get_or_insert(e);
                            failed.store(true, Ordering::Release);
                            break;
                        }
                        let lp = net.topology.loopback(dest);
                        let mut rows = Vec::new();
                        for u in net.topology.nodes() {
                            if u == dest {
                                continue;
                            }
                            let entries: Vec<(Bdd, NodeId, u64)> = sim
                                .entries(u, lp)
                                .iter()
                                .map(|e| (e.cond, e.from_node.unwrap_or(dest), e.attrs.isis_weight))
                                .collect();
                            if entries.is_empty() {
                                continue;
                            }
                            let conds: Vec<Bdd> = entries.iter().map(|(c, _, _)| *c).collect();
                            let any = sim.mgr.or_all_within(conds, k);
                            rows.push((u, any, entries));
                        }
                        // A peer may have errored while this destination was
                        // simulating; don't publish partial results past it.
                        if failed.load(Ordering::Acquire) {
                            break;
                        }
                        hoyan_obs::metric!(counter "isis.spf_runs").inc();
                        stats_mutex
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .merge(&sim.stats);
                        results
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push((dest, sim.into_mgr(), rows));
                    })
                })
                .collect();
            // Propagate the first worker panic with its original payload.
            let mut panic_payload = None;
            for h in handles {
                if let Err(p) = h.join() {
                    panic_payload.get_or_insert(p);
                }
            }
            if let Some(p) = panic_payload {
                std::panic::resume_unwind(p);
            }
        });
        if let Some(e) = error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        let stats = stats_mutex.into_inner().unwrap_or_else(|p| p.into_inner());

        let mut mgr = BddManager::new();
        let mut reach = HashMap::new();
        let mut hops = HashMap::new();
        let mut results = results.into_inner().unwrap_or_else(|p| p.into_inner());
        results.sort_by_key(|(d, _, _)| d.0);
        for (dest, src_mgr, rows) in results {
            for (u, any, entries) in rows {
                let any = mgr.import(&src_mgr, any);
                reach.insert((u.0, dest.0), any);
                let hop_rows: Vec<IsisHop> = entries
                    .into_iter()
                    .map(|(c, next_hop, metric)| IsisHop {
                        cond: mgr.import(&src_mgr, c),
                        next_hop,
                        metric,
                    })
                    .collect();
                hops.insert((u.0, dest.0), hop_rows);
            }
        }
        let dist = (0..net.topology.node_count())
            .map(|i| net.igp_distances(NodeId(i as u32)))
            .collect();
        Ok(IsisDb {
            mgr,
            reach,
            hops,
            dist,
            stats,
        })
    }

    /// Condition under which `u` has an IS-IS route to `v` (TRUE when
    /// `u == v`, FALSE when no path exists at all).
    pub fn reach_cond(&self, u: NodeId, v: NodeId) -> Bdd {
        if u == v {
            return Bdd::TRUE;
        }
        self.reach.get(&(u.0, v.0)).copied().unwrap_or(Bdd::FALSE)
    }

    /// Ranked conditioned next hops from `u` toward `v` (best first).
    pub fn hops(&self, u: NodeId, v: NodeId) -> &[IsisHop] {
        self.hops.get(&(u.0, v.0)).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_logic::bdd::INF_FAILURES;

    fn net(texts: &[&str]) -> NetworkModel {
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    /// A(=)B(=)C chain plus a direct A-C backup link with a high metric.
    fn chain_with_backup() -> NetworkModel {
        net(&[
            "hostname A\ninterface e0\n peer B\n link-metric 10\ninterface e1\n peer C\n link-metric 100\nrouter isis\n area 1\n",
            "hostname B\ninterface e0\n peer A\n link-metric 10\ninterface e1\n peer C\n link-metric 10\nrouter isis\n area 1\n",
            "hostname C\ninterface e0\n peer A\n link-metric 100\ninterface e1\n peer B\n link-metric 10\nrouter isis\n area 1\n",
        ])
    }

    #[test]
    fn reachability_survives_one_failure_with_backup() {
        let n = chain_with_backup();
        let mut db = IsisDb::build(&n, Some(3)).unwrap();
        let a = n.topology.node("A").unwrap();
        let c = n.topology.node("C").unwrap();
        let cond = db.reach_cond(a, c);
        // Two disjoint paths: need 2 failures to disconnect.
        assert_eq!(db.mgr.min_failures_to_falsify(cond), 2);
    }

    #[test]
    fn best_hop_follows_metric() {
        let n = chain_with_backup();
        let db = IsisDb::build(&n, Some(3)).unwrap();
        let a = n.topology.node("A").unwrap();
        let b = n.topology.node("B").unwrap();
        let c = n.topology.node("C").unwrap();
        let hops = db.hops(a, c);
        assert!(!hops.is_empty());
        // Best alternative goes via B with metric 20.
        assert_eq!(hops[0].next_hop, b);
        assert_eq!(hops[0].metric, 20);
        // The direct expensive link is a (worse) alternative.
        assert!(hops.iter().any(|h| h.next_hop == c && h.metric == 100));
    }

    #[test]
    fn distances_match_dijkstra() {
        let n = chain_with_backup();
        let db = IsisDb::build(&n, Some(3)).unwrap();
        let a = n.topology.node("A").unwrap();
        let c = n.topology.node("C").unwrap();
        assert_eq!(db.dist[a.0 as usize][c.0 as usize], Some(20));
    }

    #[test]
    fn self_reachability_is_true() {
        let n = chain_with_backup();
        let db = IsisDb::build(&n, Some(1)).unwrap();
        let a = n.topology.node("A").unwrap();
        assert!(db.reach_cond(a, a).is_true());
    }

    #[test]
    fn non_isis_node_is_unreachable() {
        let n = net(&[
            "hostname A\ninterface e0\n peer B\nrouter isis\n area 1\n",
            "hostname B\ninterface e0\n peer A\n", // no IS-IS
        ]);
        let mut db = IsisDb::build(&n, Some(3)).unwrap();
        let a = n.topology.node("A").unwrap();
        let b = n.topology.node("B").unwrap();
        assert!(db.reach_cond(a, b).is_false());
        assert_eq!(db.mgr.min_failures_to_falsify(Bdd::TRUE), INF_FAILURES);
    }

    #[test]
    fn k_zero_keeps_only_ball_relevant_alternatives() {
        let n = chain_with_backup();
        // k=0: the backup alternative only matters under a failure, so the
        // ball-minimal RIB holds just the primary.
        let db0 = IsisDb::build(&n, Some(0)).unwrap();
        let a = n.topology.node("A").unwrap();
        let c = n.topology.node("C").unwrap();
        let hops0 = db0.hops(a, c);
        assert_eq!(hops0.len(), 1);
        assert_eq!(hops0[0].metric, 20);
        assert!(db0.stats.dropped_over_k > 0);
        // k=1: the backup is inside the ball and must be retained.
        let db1 = IsisDb::build(&n, Some(1)).unwrap();
        let hops1 = db1.hops(a, c);
        assert_eq!(hops1.len(), 2);
    }
}
