//! `hoyan serve` — the resident verification daemon (ROADMAP item 2).
//!
//! Every one-shot `hoyan` query pays full startup: parse → compile → BDD
//! build. The daemon pays it once, keeps `ConfigSnapshot` →
//! [`Verifier`] → [`FamilyCache`] resident, and answers queries over a
//! line-delimited JSON protocol on a plain [`TcpListener`] (std-only: the
//! hermetic policy rules out async runtimes — see `tests/hermetic.rs`).
//!
//! # Protocol
//!
//! One JSON object per line, one response line per request, on the same
//! connection, in order. Requests carry a `kind` plus kind-specific
//! fields and an optional `id` that is echoed back first:
//!
//! ```text
//! -> {"id":"q1","kind":"reach","prefix":"10.0.0.0/24","device":"CR1x0"}
//! <- {"id":"q1","ok":true,"kind":"reach","prefix":"10.0.0.0/24",
//!     "device":"CR1x0","k":1,"reachable_now":true,"resilient":true,
//!     "source":"cache"}
//! ```
//!
//! Kinds: `reach` (per-device route reachability), `equiv` (role
//! equivalence of two devices), `whatif` (config push → snapshot diff →
//! [`Verifier::reverify_opts`] of dirty families only), `stats`
//! (daemon counters), `shutdown`. Errors are structured — a malformed
//! line yields `{"ok":false,"error":"parse",...}` and keeps the
//! connection open.
//!
//! # Admission control
//!
//! Two layers, both deterministic:
//!
//! * **Connections**: `workers` connections are served concurrently;
//!   up to `queue_cap` more may wait. Beyond that the accept loop
//!   answers `{"ok":false,"error":"overloaded","retry_after_ms":N}` and
//!   closes — a rejected client never ties up a worker.
//! * **Requests**: work triggered by a request (a cache-miss `reach`
//!   simulation, a `whatif` reverify) runs under the PR-5
//!   [`FamilyBudget`]: the server-wide caps tightened by any
//!   `budget_nodes` / `budget_ops` / `deadline_ms` fields on the request
//!   itself. A breach is billed to the flight recorder and answered with
//!   a structured `over_budget` error; the worker, the connection and
//!   every other in-flight request keep running. Cache hits are served
//!   from the resident reports and never consult the budget.
//!
//! The resident baseline sweep (at bind time) runs *unbudgeted*: it is
//! operator-initiated, and quarantining baseline families would turn
//! every later hit into a budgeted miss.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use hoyan_config::{parse_config, ConfigSnapshot, DeviceConfig};
use hoyan_device::VsbProfile;
use hoyan_nettypes::Ipv4Prefix;
use hoyan_rt::json::{self, Value};

use crate::snapshot::FamilyCache;
use crate::verify::{panic_message, FamilyBudget, FamilyCost, SweepOptions, Verifier};
use crate::propagate::{SimError, Simulation};

/// Daemon configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Connections served concurrently (each worker owns one connection
    /// at a time).
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the accept
    /// loop starts rejecting with `overloaded`.
    pub queue_cap: usize,
    /// Failure budget the resident cache is built at; cached `reach`
    /// answers are at this `k`.
    pub k: u32,
    /// Threads for the warm-up sweep and for `whatif` reverifies.
    pub sweep_threads: usize,
    /// Server-wide per-request resource caps (requests may tighten,
    /// never loosen). `Default` = uncapped.
    pub budget: FamilyBudget,
    /// *Floor* of the advisory backoff carried on `overloaded`
    /// rejections. The advertised value scales with how deep the wait
    /// queue already is (see [`Server`]'s admission docs): a static
    /// hint tells every rejected client to retry at the same moment,
    /// which re-creates the overload it is backing off from.
    pub retry_after_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 4,
            queue_cap: 64,
            k: 1,
            sweep_threads: 1,
            budget: FamilyBudget::default(),
            retry_after_ms: 100,
        }
    }
}

/// Why the daemon failed to come up.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind.
    Bind(String),
    /// The configurations did not compile into a verifier.
    Build(String),
    /// The warm-up sweep failed.
    Sweep(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::Build(e) => write!(f, "build: {e}"),
            ServeError::Sweep(e) => write!(f, "warm sweep: {e}"),
        }
    }
}

/// Counter snapshot returned by [`Server::run`] when the daemon drains.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Request lines received (including malformed ones).
    pub requests: u64,
    /// Connections rejected by the bounded queue.
    pub rejected: u64,
}

/// The resident compiled state. Swapped atomically (behind an
/// `RwLock<Arc<..>>`) on a successful `whatif` push; readers clone the
/// `Arc` and answer from a consistent snapshot even while a push is
/// rebuilding.
struct Resident {
    snapshot: ConfigSnapshot,
    verifier: Verifier,
    cache: FamilyCache,
    isis_k: Option<u32>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    rejected: AtomicU64,
    reach: AtomicU64,
    equiv: AtomicU64,
    whatif: AtomicU64,
    stats: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    over_budget: AtomicU64,
    reverify_dirty: AtomicU64,
    reverify_reused: AtomicU64,
    malformed: AtomicU64,
}

/// Accepted-connection handoff. `waiting` holds connections no worker has
/// claimed yet; `busy` counts workers currently serving one. Both change
/// only under the owning lock, so admission decisions are exact — no
/// startup or hand-off window where a free worker looks absent.
#[derive(Default)]
struct ConnQueue {
    waiting: VecDeque<TcpStream>,
    busy: usize,
}

/// The resident verification daemon. [`Server::bind`] compiles the
/// snapshot and runs the warm-up sweep; [`Server::run`] serves until a
/// `shutdown` request arrives.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    opts: ServeOptions,
    state: RwLock<Arc<Resident>>,
    /// Serializes `whatif` pushes: diff → reverify → swap is one
    /// critical section, while readers keep answering from the old
    /// `Arc`.
    push_lock: Mutex<()>,
    queue: Mutex<ConnQueue>,
    ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    seq: AtomicU64,
}

impl Server {
    /// Compiles `configs`, runs the warm-up sweep at `opts.k`, and binds
    /// `addr` (use port 0 for an ephemeral port; see
    /// [`Server::local_addr`]).
    pub fn bind(
        configs: Vec<DeviceConfig>,
        addr: &str,
        opts: ServeOptions,
    ) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Bind(format!("{addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(e.to_string()))?;
        let snapshot = ConfigSnapshot::new(configs);
        let isis_k = Some(opts.k.max(3));
        let verifier = Verifier::new(
            snapshot.devices().to_vec(),
            VsbProfile::ground_truth,
            isis_k,
        )
        .map_err(|e| ServeError::Build(e.to_string()))?;
        let (_, cache) = verifier
            .verify_all_routes_cached(opts.k, opts.sweep_threads.max(1))
            .map_err(|e| ServeError::Sweep(e.to_string()))?;
        Ok(Server {
            listener,
            addr: local,
            opts,
            state: RwLock::new(Arc::new(Resident {
                snapshot,
                verifier,
                cache,
                isis_k,
            })),
            push_lock: Mutex::new(()),
            queue: Mutex::new(ConnQueue::default()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            seq: AtomicU64::new(0),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Devices in the resident snapshot.
    pub fn device_count(&self) -> usize {
        self.resident().verifier.net.devices.len()
    }

    /// Families in the resident cache.
    pub fn family_count(&self) -> usize {
        self.resident().cache.len()
    }

    fn resident(&self) -> Arc<Resident> {
        Arc::clone(&self.state.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Out-of-band equivalent of a `shutdown` request: `run` drains and
    /// returns. For supervisors (and tests) that must stop a daemon whose
    /// connection slots are saturated.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Serves until a `shutdown` request arrives, then drains the workers
    /// and returns the final counters.
    pub fn run(&self) -> ServeSummary {
        self.listener
            .set_nonblocking(true)
            .expect("listener must support non-blocking accept");
        std::thread::scope(|s| {
            for _ in 0..self.opts.workers.max(1) {
                s.spawn(|| self.worker_loop());
            }
            self.accept_loop();
            self.ready.notify_all();
        });
        ServeSummary {
            requests: self.counters.requests.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    fn accept_loop(&self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // One request line, one response line: Nagle only adds
                    // delayed-ACK stalls to that pattern.
                    let _ = stream.set_nodelay(true);
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Bounded-queue admission: enqueue for a worker, or answer
    /// `overloaded` and close without ever tying up a worker. A
    /// connection is rejected only when every worker has a connection
    /// *and* `queue_cap` more are already waiting (so `queue_cap: 0`
    /// means "serve at most `workers` connections, queue none"). The
    /// busy count — not an idle count — makes admission exact from the
    /// first accept, before the worker threads have even started waiting.
    fn admit(&self, stream: TcpStream) {
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        let free = self.opts.workers.max(1).saturating_sub(q.busy);
        if q.waiting.len() >= self.opts.queue_cap + free {
            let retry_ms = self.retry_after_ms(q.waiting.len());
            drop(q);
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            hoyan_obs::metric!(counter "serve.rejected").inc();
            let resp = Value::Obj(vec![
                ("ok".to_string(), Value::Bool(false)),
                ("error".to_string(), Value::Str("overloaded".to_string())),
                (
                    "retry_after_ms".to_string(),
                    Value::Num(retry_ms as f64),
                ),
            ]);
            let mut s = stream;
            let _ = s.write_all(format!("{resp}\n").as_bytes());
            let _ = s.flush();
            return;
        }
        q.waiting.push_back(stream);
        drop(q);
        self.ready.notify_one();
    }

    /// Advisory backoff for an `overloaded` rejection: the configured
    /// floor when the queue has just filled, growing linearly with how
    /// many connections are already waiting per worker —
    /// `floor * (1 + waiting/workers)` — so the deeper the backlog, the
    /// longer rejected clients are told to stay away, and retries spread
    /// out instead of stampeding back at a fixed interval.
    fn retry_after_ms(&self, waiting: usize) -> u64 {
        let workers = self.opts.workers.max(1) as u64;
        self.opts
            .retry_after_ms
            .saturating_mul(1 + waiting as u64 / workers)
    }

    fn worker_loop(&self) {
        loop {
            let stream = {
                let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if let Some(s) = q.waiting.pop_front() {
                        // Claimed under the same lock `admit` holds, so a
                        // popped-but-not-yet-served connection still counts
                        // against the worker pool.
                        q.busy += 1;
                        break Some(s);
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (guard, _) = self
                        .ready
                        .wait_timeout(q, Duration::from_millis(25))
                        .unwrap_or_else(|p| p.into_inner());
                    q = guard;
                }
            };
            match stream {
                Some(s) => {
                    self.serve_conn(s);
                    hoyan_obs::flush_thread_events();
                    self.queue.lock().unwrap_or_else(|p| p.into_inner()).busy -= 1;
                }
                None => return,
            }
        }
    }

    /// Serves one connection until EOF, a write failure, or shutdown.
    /// Reads use a short timeout so the worker keeps observing the
    /// shutdown flag even on an idle connection; a partial line read
    /// before a timeout stays accumulated in `line`.
    fn serve_conn(&self, stream: TcpStream) {
        if stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
        {
            return;
        }
        let reader_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = BufReader::new(reader_half);
        let mut writer = stream;
        let mut line = String::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match reader.read_line(&mut line) {
                Ok(0) => {
                    // EOF: a final unterminated line is still a request.
                    let last = line.trim().to_string();
                    if !last.is_empty() {
                        self.respond(&mut writer, &last);
                    }
                    return;
                }
                Ok(_) => {
                    let req = line.trim().to_string();
                    line.clear();
                    if req.is_empty() {
                        continue;
                    }
                    if !self.respond(&mut writer, &req) {
                        return;
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Handles one request line and writes the response line. Returns
    /// `false` when the connection should close (shutdown acknowledged,
    /// or the peer is gone).
    fn respond(&self, writer: &mut TcpStream, req: &str) -> bool {
        let (resp, close) = self.handle_line(req);
        let mut out = resp.to_string();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            return false;
        }
        let _ = writer.flush();
        !close
    }

    /// Parses and dispatches one request line. Never panics outward: the
    /// handler runs under `catch_unwind`, so a request that trips a bug
    /// is answered with a structured `panic` error and the worker lives.
    fn handle_line(&self, raw: &str) -> (Value, bool) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        hoyan_obs::metric!(counter "serve.requests").inc();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let v = match json::parse(raw) {
            Ok(v) => v,
            Err(e) => {
                self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return (error_response(None, "parse", &e.to_string()), false);
            }
        };
        let id = v.get("id").cloned();
        let kind = match v.get("kind").and_then(Value::as_str) {
            Some(k) => k.to_string(),
            None => {
                return (
                    error_response(id.as_ref(), "bad_request", "missing string field `kind`"),
                    false,
                )
            }
        };
        if kind == "shutdown" {
            self.shutdown.store(true, Ordering::SeqCst);
            return (ok_response(id.as_ref(), "shutdown", Vec::new()), true);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match kind.as_str() {
                "reach" => self.handle_reach(id.as_ref(), &v, seq),
                "equiv" => self.handle_equiv(id.as_ref(), &v),
                "whatif" => self.handle_whatif(id.as_ref(), &v),
                "stats" => self.handle_stats(id.as_ref()),
                other => error_response(
                    id.as_ref(),
                    "bad_request",
                    &format!("unknown kind `{other}`"),
                ),
            }
        }));
        match outcome {
            Ok(resp) => (resp, false),
            Err(payload) => (
                error_response(id.as_ref(), "panic", &panic_message(payload.as_ref())),
                false,
            ),
        }
    }

    /// The request's effective budget: the server caps tightened by any
    /// caps the request carries. A request can only narrow its own
    /// allowance, never widen the server's.
    fn effective_budget(&self, req: &Value) -> FamilyBudget {
        fn tighten(server: Option<u64>, request: Option<u64>) -> Option<u64> {
            match (server, request) {
                (Some(s), Some(r)) => Some(s.min(r)),
                (None, r) => r,
                (s, None) => s,
            }
        }
        let b = self.opts.budget;
        FamilyBudget {
            max_live_nodes: tighten(
                b.max_live_nodes.map(|n| n as u64),
                req_u64(req, "budget_nodes"),
            )
            .map(|n| n as usize),
            max_ite_ops: tighten(b.max_ite_ops, req_u64(req, "budget_ops")),
            deadline_ms: tighten(b.deadline_ms, req_u64(req, "deadline_ms")),
        }
    }

    fn handle_reach(&self, id: Option<&Value>, req: &Value, seq: u64) -> Value {
        self.counters.reach.fetch_add(1, Ordering::Relaxed);
        let Some(prefix_s) = req.get("prefix").and_then(Value::as_str) else {
            return error_response(id, "bad_request", "reach needs a string `prefix`");
        };
        let Some(device) = req.get("device").and_then(Value::as_str) else {
            return error_response(id, "bad_request", "reach needs a string `device`");
        };
        let prefix: Ipv4Prefix = match prefix_s.parse() {
            Ok(p) => p,
            Err(_) => {
                return error_response(id, "bad_request", &format!("bad prefix `{prefix_s}`"))
            }
        };
        let state = self.resident();
        let k = match req_u64(req, "k") {
            Some(k) => k as u32,
            None => state.cache.k,
        };
        let Some(node) = state.verifier.net.topology.node(device) else {
            return error_response(id, "unknown_device", device);
        };
        let canonical = state.verifier.net.topology.name(node).to_string();
        let family = state.verifier.family_of(prefix);

        // Cache hit: the resident sweep already answered this at `k`.
        // Scope/fragile membership is exactly what a fresh sweep reports.
        if k == state.cache.k {
            if let Some(cf) = state.cache.get(&family) {
                if let Some(r) = cf.reports.iter().find(|r| r.prefix == prefix) {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    hoyan_obs::metric!(counter "serve.cache_hits").inc();
                    let reachable = r.scope.iter().any(|h| h == &canonical);
                    let resilient = reachable && !r.fragile.iter().any(|h| h == &canonical);
                    return render_reach_response(
                        id, prefix, &canonical, k, reachable, resilient, "cache",
                    );
                }
            }
        }

        // Miss (different k, or a prefix outside the cached families):
        // a fresh family simulation under the effective budget.
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        hoyan_obs::metric!(counter "serve.cache_misses").inc();
        let budget = self.effective_budget(req);
        let started = std::time::Instant::now();
        let mut sim =
            Simulation::new_bgp(&state.verifier.net, family, Some(k), Some(&state.verifier.isis));
        sim.set_budget(
            hoyan_logic::BddBudget {
                max_live_nodes: budget.max_live_nodes,
                max_ops: budget.max_ite_ops,
            },
            budget.deadline_ms,
        );
        let run = sim.run();
        let breached = matches!(
            run,
            Err(SimError::OverBudget(_)) | Err(SimError::DeadlineExceeded { .. })
        );
        // Bill the flight recorder whatever the outcome: hostile
        // requests show up in attribution with their partial cost.
        if hoyan_obs::events_enabled() {
            let wall = if hoyan_obs::timing() {
                started.elapsed().as_nanos() as u64
            } else {
                0
            };
            let cost = FamilyCost::from_manager(&sim.mgr, wall);
            hoyan_obs::record_unit_cost(cost.unit_cost(
                seq,
                format!("serve:{prefix}"),
                breached,
                false,
            ));
        }
        match run {
            Ok(()) => {}
            Err(e @ SimError::OverBudget(_)) | Err(e @ SimError::DeadlineExceeded { .. }) => {
                self.counters.over_budget.fetch_add(1, Ordering::Relaxed);
                return error_response(id, "over_budget", &e.to_string());
            }
            Err(e) => return error_response(id, "sim", &e.to_string()),
        }
        let cond = sim.reach_cond(node, prefix);
        let reachable = sim.mgr.eval(cond, &[]);
        let min_failures = sim.mgr.min_failures_to_falsify(cond);
        render_reach_response(
            id,
            prefix,
            &canonical,
            k,
            reachable,
            min_failures > k,
            "sim",
        )
    }

    fn handle_equiv(&self, id: Option<&Value>, req: &Value) -> Value {
        self.counters.equiv.fetch_add(1, Ordering::Relaxed);
        let Some(a) = req.get("a").and_then(Value::as_str) else {
            return error_response(id, "bad_request", "equiv needs a string `a`");
        };
        let Some(b) = req.get("b").and_then(Value::as_str) else {
            return error_response(id, "bad_request", "equiv needs a string `b`");
        };
        let state = self.resident();
        match state.verifier.role_equivalence(a, b) {
            Ok(rep) => ok_response(
                id,
                "equiv",
                vec![
                    ("a".to_string(), Value::Str(a.to_string())),
                    ("b".to_string(), Value::Str(b.to_string())),
                    ("equivalent".to_string(), Value::Bool(rep.equivalent)),
                    (
                        "first_difference".to_string(),
                        match rep.first_difference {
                            Some(p) => Value::Str(p.to_string()),
                            None => Value::Null,
                        },
                    ),
                ],
            ),
            Err(SimError::UnknownDevice(d)) => error_response(id, "unknown_device", &d),
            Err(e) => error_response(id, "sim", &e.to_string()),
        }
    }

    /// Config push: parse the pushed texts, diff against the resident
    /// snapshot, reverify only the dirtied families, then atomically
    /// swap the resident state. Queries racing the push answer from the
    /// old snapshot until the swap.
    fn handle_whatif(&self, id: Option<&Value>, req: &Value) -> Value {
        self.counters.whatif.fetch_add(1, Ordering::Relaxed);
        let _push = self.push_lock.lock().unwrap_or_else(|p| p.into_inner());
        let cur = self.resident();
        let mut devices = cur.snapshot.devices().to_vec();
        if let Some(arr) = req.get("configs").and_then(Value::as_arr) {
            for item in arr {
                let Some(text) = item.as_str() else {
                    return error_response(id, "bad_request", "`configs` entries must be strings");
                };
                let cfg = match parse_config(text) {
                    Ok(c) => c,
                    Err(e) => return error_response(id, "config", &e.to_string()),
                };
                match devices.iter_mut().find(|d| d.hostname == cfg.hostname) {
                    Some(slot) => *slot = cfg,
                    None => devices.push(cfg),
                }
            }
        }
        if let Some(arr) = req.get("remove").and_then(Value::as_arr) {
            for item in arr {
                let Some(host) = item.as_str() else {
                    return error_response(id, "bad_request", "`remove` entries must be strings");
                };
                devices.retain(|d| d.hostname != host);
            }
        }
        let next_snap = ConfigSnapshot::new(devices);
        let delta = cur.snapshot.diff(&next_snap);
        if delta.is_empty() {
            return ok_response(
                id,
                "whatif",
                vec![
                    ("devices_changed".to_string(), Value::Num(0.0)),
                    ("dirty".to_string(), Value::Num(0.0)),
                    ("reused".to_string(), Value::Num(cur.cache.len() as f64)),
                    ("quarantined".to_string(), Value::Num(0.0)),
                    ("families".to_string(), Value::Num(cur.cache.len() as f64)),
                ],
            );
        }
        let verifier = match Verifier::new(
            next_snap.devices().to_vec(),
            VsbProfile::ground_truth,
            cur.isis_k,
        ) {
            Ok(v) => v,
            Err(e) => return error_response(id, "config", &e.to_string()),
        };
        let sweep_opts = SweepOptions {
            budget: self.opts.budget,
            ..SweepOptions::default()
        };
        let outcome = match verifier.reverify_opts(
            &delta,
            &cur.cache,
            cur.cache.k,
            self.opts.sweep_threads.max(1),
            &sweep_opts,
        ) {
            Ok(o) => o,
            Err(e) => return error_response(id, "sim", &e.to_string()),
        };
        self.counters
            .reverify_dirty
            .fetch_add(outcome.recomputed as u64, Ordering::Relaxed);
        self.counters
            .reverify_reused
            .fetch_add(outcome.reused as u64, Ordering::Relaxed);
        hoyan_obs::metric!(counter "serve.reverify_dirty").add(outcome.recomputed as u64);
        let resp = ok_response(
            id,
            "whatif",
            vec![
                (
                    "devices_changed".to_string(),
                    Value::Num(delta.device_count() as f64),
                ),
                ("dirty".to_string(), Value::Num(outcome.recomputed as f64)),
                ("reused".to_string(), Value::Num(outcome.reused as f64)),
                (
                    "quarantined".to_string(),
                    Value::Num(outcome.quarantined.len() as f64),
                ),
                (
                    "families".to_string(),
                    Value::Num(outcome.cache.len() as f64),
                ),
            ],
        );
        let next = Arc::new(Resident {
            snapshot: next_snap,
            verifier,
            cache: outcome.cache,
            isis_k: cur.isis_k,
        });
        *self.state.write().unwrap_or_else(|p| p.into_inner()) = next;
        resp
    }

    fn handle_stats(&self, id: Option<&Value>) -> Value {
        self.counters.stats.fetch_add(1, Ordering::Relaxed);
        let state = self.resident();
        let c = &self.counters;
        let n = |a: &AtomicU64| Value::Num(a.load(Ordering::Relaxed) as f64);
        ok_response(
            id,
            "stats",
            vec![
                (
                    "devices".to_string(),
                    Value::Num(state.verifier.net.devices.len() as f64),
                ),
                ("families".to_string(), Value::Num(state.cache.len() as f64)),
                ("cache_k".to_string(), Value::Num(state.cache.k as f64)),
                ("requests".to_string(), n(&c.requests)),
                ("rejected".to_string(), n(&c.rejected)),
                ("reach".to_string(), n(&c.reach)),
                ("equiv".to_string(), n(&c.equiv)),
                ("whatif".to_string(), n(&c.whatif)),
                ("stats".to_string(), n(&c.stats)),
                ("cache_hits".to_string(), n(&c.cache_hits)),
                ("cache_misses".to_string(), n(&c.cache_misses)),
                ("over_budget".to_string(), n(&c.over_budget)),
                ("reverify_dirty".to_string(), n(&c.reverify_dirty)),
                ("reverify_reused".to_string(), n(&c.reverify_reused)),
                ("malformed".to_string(), n(&c.malformed)),
                // The backoff an `overloaded` rejection would advertise
                // right now, given the current queue depth — lets clients
                // and tests observe the load-scaled value.
                (
                    "retry_after_ms".to_string(),
                    Value::Num(self.retry_after_ms(
                        self.queue
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .waiting
                            .len(),
                    ) as f64),
                ),
            ],
        )
    }
}

fn req_u64(req: &Value, key: &str) -> Option<u64> {
    let f = req.get(key).and_then(Value::as_f64)?;
    if f.is_finite() && f >= 0.0 {
        Some(f as u64)
    } else {
        Some(0)
    }
}

fn error_response(id: Option<&Value>, code: &str, detail: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    fields.push(("ok".to_string(), Value::Bool(false)));
    fields.push(("error".to_string(), Value::Str(code.to_string())));
    fields.push(("detail".to_string(), Value::Str(detail.to_string())));
    Value::Obj(fields)
}

fn ok_response(id: Option<&Value>, kind: &str, fields: Vec<(String, Value)>) -> Value {
    let mut all = Vec::new();
    if let Some(id) = id {
        all.push(("id".to_string(), id.clone()));
    }
    all.push(("ok".to_string(), Value::Bool(true)));
    all.push(("kind".to_string(), Value::Str(kind.to_string())));
    all.extend(fields);
    Value::Obj(all)
}

/// Renders a successful `reach` response. Public so the load generator
/// and tests can render the *expected* wire line from an independently
/// computed sweep report and compare byte-for-byte.
pub fn render_reach_response(
    id: Option<&Value>,
    prefix: Ipv4Prefix,
    device: &str,
    k: u32,
    reachable_now: bool,
    resilient: bool,
    source: &str,
) -> Value {
    ok_response(
        id,
        "reach",
        vec![
            ("prefix".to_string(), Value::Str(prefix.to_string())),
            ("device".to_string(), Value::Str(device.to_string())),
            ("k".to_string(), Value::Num(k as f64)),
            ("reachable_now".to_string(), Value::Bool(reachable_now)),
            ("resilient".to_string(), Value::Bool(resilient)),
            ("source".to_string(), Value::Str(source.to_string())),
        ],
    )
}
