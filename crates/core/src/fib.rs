//! Conditioned FIB construction (§5.5): per-device merge of BGP RIBs,
//! static routes and IS-IS routes by administrative preference, every rule
//! keeping its topology condition.

use hoyan_device::LearnedFrom;
use hoyan_logic::Bdd;
use hoyan_nettypes::{Ipv4Addr, Ipv4Prefix, NodeId};

use crate::propagate::{Mode, Proto, Simulation};

/// Where a FIB rule forwards to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FibAction {
    /// Deliver locally — this device is (a) gateway of the prefix.
    Local,
    /// Forward toward a BGP next hop (may be remote; resolved via IS-IS).
    Forward(NodeId),
}

/// One conditioned FIB rule.
#[derive(Clone, Debug)]
pub struct FibRule {
    /// The destination prefix of the rule.
    pub prefix: Ipv4Prefix,
    /// Forwarding action.
    pub action: FibAction,
    /// Topology condition for the rule to exist.
    pub cond: Bdd,
    /// Administrative preference used for ordering (lower = better).
    pub pref: u32,
}

/// Builds the ranked FIB rules of `node` that match destination `dst`,
/// most-specific prefix first, then by administrative preference, then by
/// RIB rank. The caller applies the §5.5 exclusivity chain during lookup.
pub fn fib_rules_for(
    sim: &mut Simulation<'_>,
    net: &crate::network::NetworkModel,
    node: NodeId,
    dst: Ipv4Addr,
) -> Vec<FibRule> {
    let dev = net.device(node);
    let prefs = dev.config.preferences;
    // Group rules per matching prefix so LPM ordering comes first.
    let mut matching: Vec<Ipv4Prefix> = sim
        .prefixes()
        .iter()
        .copied()
        .filter(|p| p.contains_addr(dst))
        .collect();
    matching.sort_by(|a, b| b.len().cmp(&a.len())); // longest first

    let mut out = Vec::new();
    for prefix in matching {
        let mut rules: Vec<FibRule> = Vec::new();
        // Static routes for this exact prefix.
        for s in &dev.config.static_routes {
            if s.prefix != prefix {
                continue;
            }
            let Some(nh) = net.topology.node(&s.next_hop) else {
                continue;
            };
            // Statics enter RIBs without initial topology conditions (§5.4).
            rules.push(FibRule {
                prefix,
                action: FibAction::Forward(nh),
                cond: Bdd::TRUE,
                pref: s.preference,
            });
        }
        // Simulated protocol entries (ranked; keep rank order within the
        // same preference class via stable sort below).
        let views = sim.rib(node, prefix);
        for v in views {
            let (action, pref) = match v.proto {
                Proto::Aggregate => (FibAction::Local, 0),
                Proto::Isis => (
                    match v.from_node {
                        None => FibAction::Local,
                        Some(f) => FibAction::Forward(f),
                    },
                    prefs.isis,
                ),
                Proto::Bgp => match v.next_hop {
                    // Locally originated: a `network` statement means the
                    // subnet is attached here (local delivery); an entry
                    // redistributed from a static must not shadow the
                    // static that actually forwards, so it adds no rule.
                    None if v.attrs.origin == hoyan_nettypes::Origin::Incomplete
                        && v.from_node.is_none() =>
                    {
                        continue;
                    }
                    None => (FibAction::Local, 0),
                    Some(nh) if nh == node => (FibAction::Local, 0),
                    Some(nh) => {
                        let pref = match v.learned_from {
                            LearnedFrom::Ebgp => prefs.ebgp,
                            LearnedFrom::IbgpClient | LearnedFrom::IbgpNonClient => prefs.ibgp,
                            LearnedFrom::Local => 0,
                        };
                        (FibAction::Forward(nh), pref)
                    }
                },
            };
            rules.push(FibRule {
                prefix,
                action,
                cond: v.cond,
                pref,
            });
        }
        rules.sort_by_key(|r| r.pref);
        out.extend(rules);
    }
    out
}

/// Whether `node` is a gateway for `prefix` in this simulation: it
/// originates the prefix locally (network statement, redistribution or
/// aggregate).
pub fn is_gateway(
    _sim: &mut Simulation<'_>,
    net: &crate::network::NetworkModel,
    node: NodeId,
    prefix: Ipv4Prefix,
) -> bool {
    // Only a `network` statement marks the subnet as attached to this
    // device. Redistributed statics point *through* the device and
    // aggregates are synthetic — neither makes it the subnet's gateway.
    net.device(node)
        .config
        .bgp
        .as_ref()
        .is_some_and(|bgp| bgp.networks.contains(&prefix))
}

/// Marker: FIBs only make sense for BGP-mode simulations.
pub fn assert_bgp_mode(_sim: &Simulation<'_>) {
    // Mode is private state; the constructor functions guarantee it.
    let _ = Mode::Bgp;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    use crate::network::NetworkModel;

    fn line_net() -> NetworkModel {
        let configs = vec![
            parse_config(
                "hostname GW\ninterface e0\n peer R\nrouter bgp 100\n network 10.0.1.0/24\n neighbor R remote-as 200\n",
            )
            .unwrap(),
            parse_config(
                "hostname R\ninterface e0\n peer GW\nrouter bgp 200\n neighbor GW remote-as 100\nip route 10.9.0.0/16 GW preference 5\n",
            )
            .unwrap(),
        ];
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn gateway_detection_and_forwarding_rule() {
        let net = line_net();
        let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.1.0/24")], Some(3), None);
        sim.run().unwrap();
        let gw = net.topology.node("GW").unwrap();
        let r = net.topology.node("R").unwrap();
        assert!(is_gateway(&mut sim, &net, gw, pfx("10.0.1.0/24")));
        assert!(!is_gateway(&mut sim, &net, r, pfx("10.0.1.0/24")));

        let rules = fib_rules_for(&mut sim, &net, r, "10.0.1.7".parse().unwrap());
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].action, FibAction::Forward(gw));
    }

    #[test]
    fn static_route_outranks_bgp() {
        let net = line_net();
        let mut sim = Simulation::new_bgp(&net, vec![pfx("10.9.0.0/16")], Some(3), None);
        sim.run().unwrap();
        let r = net.topology.node("R").unwrap();
        let rules = fib_rules_for(&mut sim, &net, r, "10.9.1.1".parse().unwrap());
        assert!(!rules.is_empty());
        assert_eq!(rules[0].pref, 5);
        assert!(rules[0].cond.is_true());
    }

    #[test]
    fn lpm_orders_more_specific_first() {
        let net = line_net();
        let mut sim = Simulation::new_bgp(
            &net,
            vec![pfx("10.0.0.0/8"), pfx("10.0.1.0/24")],
            Some(3),
            None,
        );
        // GW announces only 10.0.1.0/24; add a static for /8 at R to get two
        // matching prefixes.
        sim.run().unwrap();
        let r = net.topology.node("R").unwrap();
        let rules = fib_rules_for(&mut sim, &net, r, "10.0.1.7".parse().unwrap());
        // All /24 rules come before any /8 rule.
        let first_8 = rules.iter().position(|r| r.prefix.len() == 8);
        let last_24 = rules.iter().rposition(|r| r.prefix.len() == 24);
        if let (Some(f8), Some(l24)) = (first_8, last_24) {
            assert!(l24 < f8);
        }
    }
}
