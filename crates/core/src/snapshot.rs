//! The compiled-network and family-cache stages of the incremental
//! pipeline: `ConfigSnapshot` (parsed IR, `hoyan-config::diff`) →
//! [`CompiledNetwork`] (network model + conditioned IS-IS database behind
//! `Arc`s, built once and shared by every query) → per-family
//! `Simulation`s whose dependency traces feed a [`FamilyCache`].
//!
//! The cache invalidation rules live in [`classify_family`]; see
//! DESIGN.md's "Snapshot & delta pipeline" section for the soundness
//! argument.
//!
//! ## Cache entries hold no BDD handles
//!
//! Both the fresh and the incremental sweep run families on workers that
//! keep one warm `BddManager` arena each, recycled between families (see
//! `Verifier::sweep_families`). A [`CachedPrefixReport`] therefore stores
//! only plain data — hostnames, counts, formula *lengths* — never `Bdd`
//! handles: a handle is only meaningful inside the arena segment that
//! allocated it, and that segment is reset as soon as the family finishes.
//! `replay` reconstructs reports purely from this plain data, which is what
//! makes cached families safe to reuse across verifier instances and
//! processes.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use hoyan_config::{DeviceConfig, SnapshotDelta, Vendor};
use hoyan_device::VsbProfile;
use hoyan_nettypes::{Ipv4Prefix, LinkId};

use crate::isis::IsisDb;
use crate::network::NetworkModel;
use crate::propagate::{DepTrace, PruneStats};
use crate::topology::Topology;
use crate::verify::{PrefixReport, VerifierError};

/// The expensive, reusable middle stage of verification: the network model
/// and the conditioned IS-IS database, shareable across verifiers and
/// queries at the cost of two `Arc` clones.
#[derive(Clone)]
pub struct CompiledNetwork {
    /// The network model (topology, sessions, behavior models).
    pub net: Arc<NetworkModel>,
    /// The conditioned IS-IS database (iBGP session conditions).
    pub isis: Arc<IsisDb>,
    /// The failure budget the IS-IS database was built at.
    pub isis_k: Option<u32>,
}

impl CompiledNetwork {
    /// Compiles configurations into the shared model (the same work
    /// `Verifier::new` used to do inline).
    pub fn build(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        isis_k: Option<u32>,
    ) -> Result<CompiledNetwork, VerifierError> {
        Self::build_ordered(configs, profile, isis_k, hoyan_logic::BddOrdering::Registration)
    }

    /// [`CompiledNetwork::build`] with an explicit BDD variable ordering.
    /// The ordering is baked into the model (`net.order`), so the IS-IS
    /// database built here and every later simulation share one variable
    /// space — a must, since conditions are imported across their managers.
    pub fn build_ordered(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        isis_k: Option<u32>,
        ordering: hoyan_logic::BddOrdering,
    ) -> Result<CompiledNetwork, VerifierError> {
        let net = NetworkModel::from_configs_ordered(configs, profile, ordering)?;
        let isis = IsisDb::build(&net, isis_k)?;
        Ok(CompiledNetwork {
            net: Arc::new(net),
            isis: Arc::new(isis),
            isis_k,
        })
    }
}

/// A family's dependency footprint, keyed by *hostname* (node and link ids
/// are renumbered whenever the device set changes, hostnames are stable
/// across snapshots).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FamilyDeps {
    /// Devices that seeded an origin entry for the family.
    pub origin_devices: BTreeSet<String>,
    /// Every device the family's propagation touched (origins, senders,
    /// and receivers — including receivers that dropped at ingress).
    pub touched_devices: BTreeSet<String>,
    /// Links that carried or conditioned a message, as normalized
    /// `(a, b)` hostname pairs.
    pub touched_links: BTreeSet<(String, String)>,
}

impl FamilyDeps {
    /// Resolves a simulation's node/link-id trace to hostnames.
    pub fn from_trace(trace: &DepTrace, topo: &Topology) -> FamilyDeps {
        let name = |id: &u32| topo.name(hoyan_nettypes::NodeId(*id)).to_string();
        let link = |id: &u32| {
            let (a, b) = topo.link_ends(LinkId(*id));
            let (a, b) = (topo.name(a).to_string(), topo.name(b).to_string());
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        };
        FamilyDeps {
            origin_devices: trace.origin_nodes.iter().map(name).collect(),
            touched_devices: trace.touched_nodes.iter().map(name).collect(),
            touched_links: trace.touched_links.iter().map(link).collect(),
        }
    }
}

/// An index from origin prefixes to the devices that can originate them,
/// built once per sweep from the compiled model's configs.
///
/// This is the *pre-simulation* counterpart of [`FamilyDeps`]: a full
/// footprint only exists after a family has been simulated, but the
/// scheduler needs locality information up front. Families that share
/// origin devices propagate along mostly-identical paths and build the
/// same link conditions, so batching them onto one worker keeps that
/// worker's ITE cache and arena warm (see `Verifier::sweep_families`).
pub struct OriginIndex {
    /// `(prefix, node id)` pairs sorted by network address — descendant
    /// lookups are a contiguous run in this order.
    sorted: Vec<(Ipv4Prefix, u32)>,
    /// Exact-prefix lookups for the ancestor walk.
    exact: HashMap<Ipv4Prefix, Vec<u32>>,
}

impl OriginIndex {
    /// Scans every device's origin surface (networks, aggregates,
    /// statics) into the index.
    pub fn build(net: &NetworkModel) -> OriginIndex {
        let mut sorted = Vec::new();
        let mut exact: HashMap<Ipv4Prefix, Vec<u32>> = HashMap::new();
        for (i, dev) in net.devices.iter().enumerate() {
            for p in hoyan_config::origin_prefixes(&dev.config) {
                sorted.push((p, i as u32));
                exact.entry(p).or_default().push(i as u32);
            }
        }
        sorted.sort_unstable_by_key(|(p, i)| (p.network(), p.len(), *i));
        OriginIndex { sorted, exact }
    }

    /// Every device that can originate a prefix overlapping the family,
    /// ascending and deduplicated. Runs in O(family · (32 + matches)):
    /// ancestors come from at most 33 exact lookups per prefix,
    /// descendants from one contiguous scan of the sorted pairs.
    pub fn origin_devices(&self, family: &[Ipv4Prefix]) -> Vec<u32> {
        let mut out = Vec::new();
        for &p in family {
            // Ancestors and the prefix itself.
            for len in 0..=p.len() {
                let anc = Ipv4Prefix::new(p.network(), len);
                if let Some(ids) = self.exact.get(&anc) {
                    out.extend_from_slice(ids);
                }
            }
            // Strict descendants: network address inside `p`'s range and
            // a longer mask. Canonical prefixes make the run contiguous.
            let start = self
                .sorted
                .partition_point(|(q, _)| q.network() < p.network());
            for (q, id) in &self.sorted[start..] {
                if !p.contains_addr(q.network()) {
                    break;
                }
                if q.len() > p.len() {
                    out.push(*id);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A [`PrefixReport`] in cache form: node ids replaced by hostnames so the
/// report survives node renumbering between snapshots.
#[derive(Clone, Debug)]
pub struct CachedPrefixReport {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// The family's pruning statistics.
    pub stats: PruneStats,
    /// Largest topology-condition formula during propagation.
    pub max_cond_len: usize,
    /// Largest final reachability formula.
    pub max_reach_formula_len: usize,
    /// Devices that can receive a route (all-alive), by hostname.
    pub scope: Vec<String>,
    /// Devices not resilient to the cached `k`, by hostname.
    pub fragile: Vec<String>,
    /// Whether this report heads its co-simulated family.
    pub family_head: bool,
    /// Wall-clock simulation time of the original run (informational).
    pub sim_time: Duration,
    /// Wall-clock query time of the original run (informational).
    pub query_time: Duration,
}

impl CachedPrefixReport {
    /// Converts a fresh report into cache form.
    pub fn from_report(r: &PrefixReport, topo: &Topology) -> CachedPrefixReport {
        let names =
            |ns: &[hoyan_nettypes::NodeId]| ns.iter().map(|n| topo.name(*n).to_string()).collect();
        CachedPrefixReport {
            prefix: r.prefix,
            stats: r.stats,
            max_cond_len: r.max_cond_len,
            max_reach_formula_len: r.max_reach_formula_len,
            scope: names(&r.scope),
            fragile: names(&r.fragile),
            family_head: r.family_head,
            sim_time: r.sim_time,
            query_time: r.query_time,
        }
    }

    /// Replays the cached report against a (possibly renumbered) topology.
    /// Returns `None` when a hostname no longer exists — the caller must
    /// then treat the family as dirty (the removed-device dirty rule makes
    /// this unreachable for families classified clean).
    pub fn replay(&self, topo: &Topology) -> Option<PrefixReport> {
        let nodes = |names: &[String]| {
            let mut out = Vec::with_capacity(names.len());
            for n in names {
                out.push(topo.node(n)?);
            }
            // Fresh sweeps list scope/fragile in node-id order; renumbering
            // can permute that, so restore the invariant.
            out.sort();
            Some(out)
        };
        Some(PrefixReport {
            prefix: self.prefix,
            sim_time: self.sim_time,
            query_time: self.query_time,
            stats: self.stats,
            max_cond_len: self.max_cond_len,
            max_reach_formula_len: self.max_reach_formula_len,
            scope: nodes(&self.scope)?,
            fragile: nodes(&self.fragile)?,
            family_head: self.family_head,
        })
    }
}

/// One cached family: its prefix set (the cache key), its reports, and its
/// dependency footprint.
#[derive(Clone, Debug)]
pub struct CachedFamily {
    /// The family's prefixes, sorted (as produced by `Verifier::families`).
    pub prefixes: Vec<Ipv4Prefix>,
    /// The per-prefix reports of the baseline sweep.
    pub reports: Vec<CachedPrefixReport>,
    /// The family's dependency footprint.
    pub deps: FamilyDeps,
    /// The BDD bill the baseline sweep paid for this family. Carried so a
    /// later `reverify` can attribute reused families (at zero marginal
    /// cost) alongside recomputed ones.
    pub cost: crate::verify::FamilyCost,
}

/// The sweep cache: every family's reports and dependency footprint at one
/// failure budget. Keyed by the exact sorted prefix set, so a family whose
/// *composition* changes (a prefix appearing or disappearing from its
/// overlap closure) naturally misses and is re-simulated.
#[derive(Clone, Debug, Default)]
pub struct FamilyCache {
    /// The failure budget the cache was built at. Traces and reports are
    /// budget-specific; `reverify` refuses to reuse across budgets.
    pub k: u32,
    /// The IS-IS precomputation budget the baseline verifier was built at.
    /// Session conditions are conditioned on it, so reports from a cache
    /// built at a different `isis_k` are not comparable — `reverify`
    /// refuses to reuse across IS-IS budgets too.
    pub isis_k: Option<u32>,
    families: HashMap<Vec<Ipv4Prefix>, CachedFamily>,
}

impl FamilyCache {
    /// An empty cache for sweep budget `k` and IS-IS budget `isis_k`.
    pub fn new(k: u32, isis_k: Option<u32>) -> FamilyCache {
        FamilyCache {
            k,
            isis_k,
            families: HashMap::new(),
        }
    }

    /// Inserts a family (keyed by its prefix set).
    pub fn insert(&mut self, family: CachedFamily) {
        self.families.insert(family.prefixes.clone(), family);
    }

    /// Looks a family up by its exact (sorted) prefix set.
    pub fn get(&self, prefixes: &[Ipv4Prefix]) -> Option<&CachedFamily> {
        self.families.get(prefixes)
    }

    /// Number of cached families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

/// Why a family must be re-simulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirtyReason {
    /// The requested sweep budget `k` or the verifier's IS-IS budget
    /// `isis_k` differs from the cache's.
    BudgetChanged,
    /// The family (this exact prefix set) is not in the cache — new
    /// prefixes, or an overlap-closure composition change.
    NotCached,
    /// The delta can alter the IGP graph; every iBGP session condition is
    /// potentially stale.
    IgpChanged,
    /// A device the family touched was removed.
    DeviceRemoved(String),
    /// A device was added next to a touched device (new sessions can form
    /// with peers that pre-declared it).
    DeviceAdded(String),
    /// A touched device (or a device adjacent to one) changed its session,
    /// policy or interface surface.
    DeviceChanged(String),
    /// A device changed how it originates a prefix overlapping the family.
    OriginChanged(String),
    /// A cached hostname no longer resolves in the new topology.
    ReplayFailed,
}

impl std::fmt::Display for DirtyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirtyReason::BudgetChanged => write!(f, "failure budget changed"),
            DirtyReason::NotCached => write!(f, "not in cache"),
            DirtyReason::IgpChanged => write!(f, "IS-IS reachability changed"),
            DirtyReason::DeviceRemoved(d) => write!(f, "touched device {d} removed"),
            DirtyReason::DeviceAdded(d) => write!(f, "device {d} added next to propagation"),
            DirtyReason::DeviceChanged(d) => write!(f, "touched device {d} changed"),
            DirtyReason::OriginChanged(d) => write!(f, "origin changed on {d}"),
            DirtyReason::ReplayFailed => write!(f, "cached report no longer replayable"),
        }
    }
}

/// The cache invalidation rules: decides whether a cached family survives
/// `delta`. Returns `None` when the family is clean (its cached reports
/// can be replayed verbatim), or the first reason it is dirty.
///
/// Soundness rests on the dependency trace: a device the propagation never
/// touched never had its configuration read by the family's simulation, so
/// changing it cannot alter the fixpoint — *except* through the three
/// escape hatches handled explicitly: (a) the IGP graph (iBGP session
/// conditions are global, any IGP-affecting delta dirties everything),
/// (b) session formation (a new/changed device can form sessions with an
/// unmodified peer that already declared it — caught by intersecting the
/// device's declared-peer set with the touched set; the route reaching the
/// new session must come *from* a touched device), and (c) origin changes
/// (seeding reads origin config before any propagation — caught by
/// overlapping the origin-prefix delta with the family's prefixes; for an
/// added or removed device, its whole origin set *is* the delta, and the
/// overlap must be checked even when no touched device is involved: an
/// added device announcing an already-known prefix leaves the family's
/// cache key unchanged while seeding a new origin).
pub fn classify_family(
    prefixes: &[Ipv4Prefix],
    deps: &FamilyDeps,
    delta: &SnapshotDelta,
) -> Option<DirtyReason> {
    if delta.igp_affecting {
        return Some(DirtyReason::IgpChanged);
    }
    let touched = |h: &String| deps.touched_devices.contains(h);
    let overlaps_family = |origins: &BTreeSet<Ipv4Prefix>| {
        prefixes
            .iter()
            .any(|p| origins.iter().any(|q| p.contains(*q) || q.contains(*p)))
    };
    for d in &delta.removed {
        if touched(&d.hostname) {
            return Some(DirtyReason::DeviceRemoved(d.hostname.clone()));
        }
        if overlaps_family(&d.origin_prefixes) {
            return Some(DirtyReason::OriginChanged(d.hostname.clone()));
        }
    }
    for d in &delta.added {
        if d.peers.iter().any(touched) {
            return Some(DirtyReason::DeviceAdded(d.hostname.clone()));
        }
        if overlaps_family(&d.origin_prefixes) {
            return Some(DirtyReason::OriginChanged(d.hostname.clone()));
        }
    }
    for m in &delta.modified {
        if (m.policy_changed || m.interfaces_changed)
            && (touched(&m.hostname) || m.peers.iter().any(touched))
        {
            return Some(DirtyReason::DeviceChanged(m.hostname.clone()));
        }
        if m.origins_changed
            && prefixes.iter().any(|p| {
                m.origin_prefix_delta
                    .iter()
                    .any(|q| p.contains(*q) || q.contains(*p))
            })
        {
            return Some(DirtyReason::OriginChanged(m.hostname.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::ConfigSnapshot;

    fn deps(touched: &[&str]) -> FamilyDeps {
        FamilyDeps {
            origin_devices: BTreeSet::new(),
            touched_devices: touched.iter().map(|s| s.to_string()).collect(),
            touched_links: BTreeSet::new(),
        }
    }

    #[test]
    fn origin_index_finds_overlapping_origins() {
        use hoyan_device::VsbProfile;
        let texts = [
            "hostname A\ninterface e0\n peer B\ninterface e1\n peer C\nrouter bgp 100\n network 10.0.0.0/22\n network 10.0.1.0/24\n neighbor B remote-as 200\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 200\n network 10.9.0.0/24\n neighbor A remote-as 100\n",
            "hostname C\ninterface e0\n peer A\nip route 10.0.2.0/24 B preference 5\n",
        ];
        let configs: Vec<DeviceConfig> = texts
            .iter()
            .map(|t| hoyan_config::parse_config(t).unwrap())
            .collect();
        let net = NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap();
        let idx = OriginIndex::build(&net);
        let a = net.topology.node("A").unwrap().0;
        let b = net.topology.node("B").unwrap().0;
        let c = net.topology.node("C").unwrap().0;
        // The /22 family: A originates it (and a leaf inside it), C's
        // static is a strict descendant; B's 10.9/24 does not overlap.
        let fam: Vec<Ipv4Prefix> = vec!["10.0.0.0/22".parse().unwrap()];
        assert_eq!(idx.origin_devices(&fam), vec![a.min(c), a.max(c)]);
        // A leaf query also finds the covering aggregate (ancestor walk).
        let leaf: Vec<Ipv4Prefix> = vec!["10.0.1.0/24".parse().unwrap()];
        assert_eq!(idx.origin_devices(&leaf), vec![a]);
        let other: Vec<Ipv4Prefix> = vec!["10.9.0.0/24".parse().unwrap()];
        assert_eq!(idx.origin_devices(&other), vec![b]);
        let none: Vec<Ipv4Prefix> = vec!["172.16.0.0/16".parse().unwrap()];
        assert!(idx.origin_devices(&none).is_empty());
    }

    fn cfgs(texts: &[&str]) -> Vec<DeviceConfig> {
        texts
            .iter()
            .map(|t| hoyan_config::parse_config(t).unwrap())
            .collect()
    }

    #[test]
    fn untouched_device_changes_keep_families_clean() {
        let a = cfgs(&[
            "hostname A\ninterface e0\n peer B\nrouter bgp 1\n network 10.0.0.0/24\n neighbor B remote-as 2\n",
            "hostname B\ninterface e0\n peer A\nrouter bgp 2\n neighbor A remote-as 1\n",
            "hostname C\nrouter bgp 3\n network 10.7.0.0/24\n",
        ]);
        let mut after = a.clone();
        after[2].bgp.as_mut().unwrap().neighbors.clear(); // no-op: already empty
        after[2].router_id = 99; // policy-class change on C
        let delta = ConfigSnapshot::new(a).diff(&ConfigSnapshot::new(after));
        let fam: Vec<Ipv4Prefix> = vec!["10.0.0.0/24".parse().unwrap()];
        // C untouched by this family -> clean.
        assert_eq!(classify_family(&fam, &deps(&["A", "B"]), &delta), None);
        // C touched -> dirty.
        assert!(matches!(
            classify_family(&fam, &deps(&["A", "B", "C"]), &delta),
            Some(DirtyReason::DeviceChanged(d)) if d == "C"
        ));
    }

    #[test]
    fn origin_overlap_rule() {
        let a = cfgs(&["hostname A\nrouter bgp 1\n network 10.0.0.0/24\n"]);
        let mut after = a.clone();
        after[0]
            .bgp
            .as_mut()
            .unwrap()
            .networks
            .push("10.1.0.0/24".parse().unwrap());
        let delta = ConfigSnapshot::new(a).diff(&ConfigSnapshot::new(after));
        let d = deps(&[]); // A not touched by either family under test
        let overlapping: Vec<Ipv4Prefix> = vec!["10.1.0.0/16".parse().unwrap()];
        assert!(matches!(
            classify_family(&overlapping, &d, &delta),
            Some(DirtyReason::OriginChanged(_))
        ));
        let unrelated: Vec<Ipv4Prefix> = vec!["192.0.2.0/24".parse().unwrap()];
        assert_eq!(classify_family(&unrelated, &d, &delta), None);
    }

    #[test]
    fn added_device_dirties_families_touching_its_peers() {
        let a = cfgs(&["hostname A\nrouter bgp 1\n network 10.0.0.0/24\n"]);
        let mut after_v = a.clone();
        after_v.push(
            hoyan_config::parse_config(
                "hostname Z\ninterface e0\n peer A\nrouter bgp 9\n neighbor A remote-as 1\n",
            )
            .unwrap(),
        );
        let delta = ConfigSnapshot::new(a).diff(&ConfigSnapshot::new(after_v));
        let fam: Vec<Ipv4Prefix> = vec!["10.0.0.0/24".parse().unwrap()];
        assert!(matches!(
            classify_family(&fam, &deps(&["A"]), &delta),
            Some(DirtyReason::DeviceAdded(z)) if z == "Z"
        ));
        assert_eq!(classify_family(&fam, &deps(&["B"]), &delta), None);
    }

    #[test]
    fn added_origin_device_dirties_overlapping_families() {
        // Z appears announcing a prefix the family already contains, and
        // attaches (via pre-provisioned mutual config on C) only to a device
        // the family never touched. The cache key is unchanged and the peer
        // rule sees nothing — only the origin-overlap rule catches it.
        let a = cfgs(&[
            "hostname A\nrouter bgp 1\n network 10.0.0.0/24\n",
            "hostname C\ninterface e0\n peer Z\nrouter bgp 3\n neighbor Z remote-as 9\n",
        ]);
        let mut after = a.clone();
        after.push(
            hoyan_config::parse_config(
                "hostname Z\ninterface e0\n peer C\nrouter bgp 9\n network 10.0.0.0/24\n neighbor C remote-as 3\n",
            )
            .unwrap(),
        );
        let delta = ConfigSnapshot::new(a.clone()).diff(&ConfigSnapshot::new(after.clone()));
        let fam: Vec<Ipv4Prefix> = vec!["10.0.0.0/24".parse().unwrap()];
        assert!(matches!(
            classify_family(&fam, &deps(&["A"]), &delta),
            Some(DirtyReason::OriginChanged(z)) if z == "Z"
        ));
        // A family Z's origins cannot overlap stays clean.
        let other: Vec<Ipv4Prefix> = vec!["192.0.2.0/24".parse().unwrap()];
        assert_eq!(classify_family(&other, &deps(&["A"]), &delta), None);
        // And removing Z again dirties the overlapping family even when the
        // cached trace somehow missed it.
        let rev = ConfigSnapshot::new(after).diff(&ConfigSnapshot::new(a));
        assert!(matches!(
            classify_family(&fam, &deps(&["A"]), &rev),
            Some(DirtyReason::OriginChanged(z)) if z == "Z"
        ));
    }

    #[test]
    fn igp_affecting_delta_dirties_everything() {
        let a = cfgs(&[
            "hostname A\ninterface e0\n peer B\nrouter isis\n area 0\n",
            "hostname B\ninterface e0\n peer A\nrouter isis\n area 0\n",
        ]);
        let mut after = a.clone();
        after[0].interfaces[0].link_metric = 99;
        let delta = ConfigSnapshot::new(a).diff(&ConfigSnapshot::new(after));
        let fam: Vec<Ipv4Prefix> = vec!["10.0.0.0/24".parse().unwrap()];
        assert_eq!(
            classify_family(&fam, &deps(&[]), &delta),
            Some(DirtyReason::IgpChanged)
        );
    }
}
