//! Packet reachability (§5.5, Appendix D): symbolic execution of a packet
//! over the conditioned FIBs, with per-branch topology conditions, LPM rule
//! ranking, data-plane ACLs, and recursive next-hop resolution through the
//! conditioned IS-IS database.

use hoyan_device::Packet;
use hoyan_logic::Bdd;
use hoyan_nettypes::{Ipv4Prefix, NodeId};

/// How equal-cost IGP alternatives are treated during next-hop resolution.
/// The paper's Hoyan defers ECMP-level reasoning (Appendix D, future work);
/// this reproduction implements it as an extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EcmpMode {
    /// Follow one deterministic best alternative per scenario (the paper's
    /// behavior, justified by its device-group architecture).
    #[default]
    ExclusiveBest,
    /// The packet is delivered if **any** equal-cost copy reaches the
    /// gateway (hash luck).
    AnyPath,
    /// The packet is delivered only if **every** equal-cost copy reaches
    /// the gateway (no flow may blackhole regardless of hashing).
    AllPaths,
}

use crate::fib::{fib_rules_for, is_gateway, FibAction};
use crate::isis::IsisDb;
use crate::network::NetworkModel;
use crate::propagate::Simulation;

/// Outcome of a symbolic packet walk.
#[derive(Clone, Debug)]
pub struct PacketWalk {
    /// Condition under which the packet reaches a gateway of the subnet.
    pub reach_cond: Bdd,
    /// Number of branches explored.
    pub branches: u64,
    /// Branches abandoned because a forwarding loop appeared.
    pub loops: u64,
}

struct Walker<'a, 'n> {
    sim: &'a mut Simulation<'n>,
    net: &'a NetworkModel,
    isis: Option<&'a IsisDb>,
    dst_prefix: Ipv4Prefix,
    packet: Packet,
    k: Option<u32>,
    ecmp: EcmpMode,
    reach: Bdd,
    branches: u64,
    loops: u64,
}

impl Walker<'_, '_> {
    fn prune(&mut self, cond: Bdd) -> Option<Bdd> {
        if cond.is_false() {
            return None;
        }
        if let Some(k) = self.k {
            if self.sim.mgr.min_failures_to_satisfy(cond) > k {
                return None;
            }
        }
        Some(cond)
    }

    /// Forwards the packet across the link `from -> to` (egress ACL, link
    /// aliveness, ingress ACL at the receiver) and continues the walk,
    /// returning the condition under which the packet reaches the gateway
    /// through this hop.
    fn hop(&mut self, from: NodeId, to: NodeId, cond: Bdd, visited: &mut Vec<NodeId>) -> Bdd {
        let from_name = self.net.topology.name(from).to_string();
        let to_name = self.net.topology.name(to).to_string();
        if !self.net.device(from).data_egress(&to_name, &self.packet) {
            return Bdd::FALSE;
        }
        let Some(link) = self.net.topology.link_between(from, to) else {
            return Bdd::FALSE; // next hop is not physically adjacent
        };
        let link_var = self.sim.mgr.var(self.net.link_var(link));
        let cond = self.sim.mgr.and(cond, link_var);
        let Some(cond) = self.prune(cond) else {
            return Bdd::FALSE;
        };
        if !self.net.device(to).data_ingress(&from_name, &self.packet) {
            return Bdd::FALSE;
        }
        self.walk(to, cond, visited)
    }

    /// Returns the condition under which the packet, entering `node` under
    /// `cond`, reaches a gateway of the destination subnet.
    fn walk(&mut self, node: NodeId, cond: Bdd, visited: &mut Vec<NodeId>) -> Bdd {
        self.branches += 1;
        if visited.contains(&node) {
            self.loops += 1;
            return Bdd::FALSE;
        }
        visited.push(node);

        // Delivered? The gateway of the destination subnet absorbs it.
        if is_gateway(self.sim, self.net, node, self.dst_prefix) {
            visited.pop();
            return cond;
        }

        let mut reached = Bdd::FALSE;
        // FIB lookup with the §5.5 exclusivity chain.
        let rules = fib_rules_for(self.sim, self.net, node, self.packet.dst);
        let mut neg_acc = Bdd::TRUE;
        for rule in rules {
            let exists_here = self.sim.mgr.and(neg_acc, rule.cond);
            neg_acc = self.sim.mgr.and_not(neg_acc, rule.cond);
            let branch = self.sim.mgr.and(cond, exists_here);
            let Some(branch) = self.prune(branch) else {
                continue;
            };
            match rule.action {
                FibAction::Local => {
                    // A local rule on a non-gateway node means the route
                    // points at this device (e.g. an aggregate): the packet
                    // terminates here without reaching the subnet.
                }
                FibAction::Forward(nh) => {
                    let sub = if self.net.topology.link_between(node, nh).is_some() {
                        self.hop(node, nh, branch, visited)
                    } else {
                        // Remote BGP next hop: the packet is carried along
                        // the IGP toward `nh` (transit nodes forward on the
                        // IGP underlay, not per-hop BGP lookups) and BGP
                        // lookup resumes at `nh`.
                        self.tunnel_step(node, nh, branch, visited)
                    };
                    reached = self.sim.mgr.or(reached, sub);
                }
            }
        }
        visited.pop();
        reached
    }

    /// Crossing one IGP hop toward the tunnel endpoint `nh`: the landing
    /// node continues tunneling unless it *is* `nh` (where BGP forwarding
    /// resumes via the normal walk).
    fn tunnel_hop(
        &mut self,
        from: NodeId,
        to: NodeId,
        nh: NodeId,
        cond: Bdd,
        visited: &mut Vec<NodeId>,
    ) -> Bdd {
        let from_name = self.net.topology.name(from).to_string();
        let to_name = self.net.topology.name(to).to_string();
        if !self.net.device(from).data_egress(&to_name, &self.packet) {
            return Bdd::FALSE;
        }
        let Some(link) = self.net.topology.link_between(from, to) else {
            return Bdd::FALSE;
        };
        let link_var = self.sim.mgr.var(self.net.link_var(link));
        let cond = self.sim.mgr.and(cond, link_var);
        let Some(cond) = self.prune(cond) else {
            return Bdd::FALSE;
        };
        if !self.net.device(to).data_ingress(&from_name, &self.packet) {
            return Bdd::FALSE;
        }
        if to == nh {
            return self.walk(to, cond, visited);
        }
        if visited.contains(&to) {
            self.loops += 1;
            return Bdd::FALSE;
        }
        visited.push(to);
        let out = self.tunnel_step(to, nh, cond, visited);
        visited.pop();
        out
    }

    /// One IGP forwarding decision toward the tunnel endpoint `nh`, with
    /// ECMP handling over equal-metric alternatives.
    fn tunnel_step(
        &mut self,
        node: NodeId,
        nh: NodeId,
        branch: Bdd,
        visited: &mut Vec<NodeId>,
    ) -> Bdd {
        let Some(db) = self.isis else {
            return Bdd::FALSE;
        };
        let ihops: Vec<(Bdd, NodeId, u64)> = db
            .hops(node, nh)
            .iter()
            .map(|h| (h.cond, h.next_hop, h.metric))
            .collect();
        // Equal-cost group: the best-metric alternatives. No hops at all
        // means the IGP cannot carry the packet here.
        let Some(best_metric) = ihops.iter().map(|(_, _, m)| *m).min() else {
            return Bdd::FALSE;
        };
        let ecmp_group: Vec<(Bdd, NodeId, u64)> = ihops
            .iter()
            .filter(|(_, _, m)| *m == best_metric)
            .cloned()
            .collect();
        let mut reached = Bdd::FALSE;
        if self.ecmp != EcmpMode::ExclusiveBest && ecmp_group.len() > 1 {
            // Branch to every equal-cost copy; combine per the mode. The
            // copies apply under the conjunction of the branch and the
            // group member's existence condition.
            let mut combined: Option<Bdd> = None;
            for (hcond_src, ihop, _) in &ecmp_group {
                let hcond = self.sim.mgr.import(&db.mgr, *hcond_src);
                let b = self.sim.mgr.and(branch, hcond);
                let sub = match self.prune(b) {
                    None => Bdd::FALSE,
                    Some(b) => self.tunnel_hop(node, *ihop, nh, b, visited),
                };
                combined = Some(match (combined, self.ecmp) {
                    (None, _) => sub,
                    (Some(acc), EcmpMode::AnyPath) => self.sim.mgr.or(acc, sub),
                    (Some(acc), EcmpMode::AllPaths) => self.sim.mgr.and(acc, sub),
                    (Some(acc), EcmpMode::ExclusiveBest) => acc, // unreachable
                });
            }
            reached = self.sim.mgr.or(reached, combined.unwrap_or(Bdd::FALSE));
            // Non-best alternatives still apply when the whole group is
            // conditioned away; fall through the exclusivity chain below
            // for them only.
        }
        // Exclusivity chain over (remaining) alternatives — the default
        // deterministic-single-path semantics.
        let mut ineg = Bdd::TRUE;
        for (hcond_src, ihop, metric) in &ihops {
            if self.ecmp != EcmpMode::ExclusiveBest
                && ecmp_group.len() > 1
                && *metric == best_metric
            {
                // Consume the group's conditions so worse alternatives only
                // fire when every group member is absent.
                let hcond = self.sim.mgr.import(&db.mgr, *hcond_src);
                ineg = self.sim.mgr.and_not(ineg, hcond);
                continue;
            }
            let hcond = self.sim.mgr.import(&db.mgr, *hcond_src);
            let active = self.sim.mgr.and(ineg, hcond);
            ineg = self.sim.mgr.and_not(ineg, hcond);
            let b = self.sim.mgr.and(branch, active);
            let Some(b) = self.prune(b) else {
                continue;
            };
            let sub = self.tunnel_hop(node, *ihop, nh, b, visited);
            reached = self.sim.mgr.or(reached, sub);
        }
        reached
    }
}

/// Symbolically executes `packet` from `src` toward the gateway(s) of
/// `dst_prefix`, returning the reachability condition and walk statistics.
///
/// `sim` must be a converged BGP simulation whose prefix family covers
/// `dst_prefix` (and any covering aggregates/less-specifics of interest).
pub fn packet_reach(
    sim: &mut Simulation<'_>,
    net: &NetworkModel,
    isis: Option<&IsisDb>,
    src: NodeId,
    dst_prefix: Ipv4Prefix,
    packet: Packet,
    k: Option<u32>,
) -> PacketWalk {
    packet_reach_ecmp(sim, net, isis, src, dst_prefix, packet, k, EcmpMode::ExclusiveBest)
}

/// [`packet_reach`] with explicit ECMP semantics over equal-cost IGP
/// alternatives (extension; the paper defers ECMP reasoning).
#[allow(clippy::too_many_arguments)]
pub fn packet_reach_ecmp(
    sim: &mut Simulation<'_>,
    net: &NetworkModel,
    isis: Option<&IsisDb>,
    src: NodeId,
    dst_prefix: Ipv4Prefix,
    packet: Packet,
    k: Option<u32>,
    ecmp: EcmpMode,
) -> PacketWalk {
    let mut w = Walker {
        sim,
        net,
        isis,
        dst_prefix,
        packet,
        k,
        ecmp,
        reach: Bdd::FALSE,
        branches: 0,
        loops: 0,
    };
    let mut visited = Vec::new();
    let reach = w.walk(src, Bdd::TRUE, &mut visited);
    w.reach = reach;
    PacketWalk {
        reach_cond: w.reach,
        branches: w.branches,
        loops: w.loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::{parse_config, AclProto};
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn packet_to(dst: &str) -> Packet {
        Packet {
            src: "1.1.1.1".parse().unwrap(),
            dst: dst.parse().unwrap(),
            proto: AclProto::Tcp,
        }
    }

    fn diamond() -> NetworkModel {
        // GW announces 10.0.1.0/24; S can reach it via M1 or M2.
        let configs = vec![
            parse_config(concat!(
                "hostname GW\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname M1\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname M2\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 300\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname S\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 400\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ))
            .unwrap(),
        ];
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn packet_survives_single_failure_in_diamond() {
        let net = diamond();
        let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.1.0/24")], Some(3), None);
        sim.run().unwrap();
        let s = net.topology.node("S").unwrap();
        let walk = packet_reach(
            &mut sim,
            &net,
            None,
            s,
            pfx("10.0.1.0/24"),
            packet_to("10.0.1.5"),
            Some(3),
        );
        // Two disjoint 2-link paths: disconnecting needs 2 failures.
        assert_eq!(sim.mgr.min_failures_to_falsify(walk.reach_cond), 2);
        assert_eq!(walk.loops, 0);
    }

    #[test]
    fn gateway_reaches_itself() {
        let net = diamond();
        let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.1.0/24")], Some(3), None);
        sim.run().unwrap();
        let gw = net.topology.node("GW").unwrap();
        let walk = packet_reach(
            &mut sim,
            &net,
            None,
            gw,
            pfx("10.0.1.0/24"),
            packet_to("10.0.1.5"),
            Some(3),
        );
        assert!(walk.reach_cond.is_true());
    }

    #[test]
    fn acl_blocks_packets_but_not_routes() {
        // Paper §5.1: route reachability does not imply packet reachability.
        let mut configs = diamond();
        // Rebuild with an inbound ACL at GW denying TCP to the subnet on
        // both interfaces.
        let texts = [
            concat!(
                "hostname GW\ninterface e0\n peer M1\n access-group BLOCK in\ninterface e1\n peer M2\n access-group BLOCK in\n",
                "access-list BLOCK deny tcp any 10.0.1.0/24\naccess-list BLOCK permit ip any any\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ).to_string(),
        ];
        let gw_cfg = parse_config(&texts[0]).unwrap();
        configs.devices[0] =
            hoyan_device::BehaviorModel::new(gw_cfg, VsbProfile::ground_truth(hoyan_config::Vendor::A));
        let net = configs;
        let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.1.0/24")], Some(3), None);
        sim.run().unwrap();
        let s = net.topology.node("S").unwrap();
        // Route still propagates to S.
        let rc = sim.reach_cond(s, pfx("10.0.1.0/24"));
        assert!(!rc.is_false());
        // Packet is dropped by the ACL on GW's ingress.
        let walk = packet_reach(
            &mut sim,
            &net,
            None,
            s,
            pfx("10.0.1.0/24"),
            packet_to("10.0.1.5"),
            Some(3),
        );
        assert!(walk.reach_cond.is_false());
    }
}
