#![warn(missing_docs)]

//! Hoyan's core: the "global simulation & local formal modeling" verifier.
//!
//! The crate wires device behavior models into a [`network::NetworkModel`],
//! runs the conditioned route-propagation engine ([`propagate`]), supports
//! IS-IS via its path-vector translation ([`isis`]), derives conditioned
//! FIBs ([`fib`]) and symbolic packet walks ([`packet`]), detects
//! route-update racing ([`racing`]), and exposes it all through
//! [`verify::Verifier`].
//!
//! Every route update, RIB rule, FIB rule and packet branch carries a
//! *topology condition* — a BDD over link-aliveness variables — which is
//! what lets one simulation answer reachability under **all** scenarios of
//! at most `k` link failures (§5), with aggressive pruning of branches whose
//! conditions are impossible or need more than `k` failures (§5.6).

pub mod abstract_sim;
pub mod fib;
pub mod isis;
pub mod network;
pub mod packet;
pub mod propagate;
pub mod racing;
pub mod region;
pub mod serve;
pub mod snapshot;
pub mod topology;
pub mod verify;

pub use abstract_sim::{prove_family, AbstractOutcome, PrefixProof, SessionConds};
pub use fib::{fib_rules_for, is_gateway, FibAction, FibRule};
pub use isis::{IsisDb, IsisHop};
pub use network::{link_order, BgpSession, NetworkModel};
pub use packet::{packet_reach, packet_reach_ecmp, EcmpMode, PacketWalk};
pub use propagate::{
    AttachedBase, DepTrace, Entry, Mode, Proto, PruneStats, RibView, SharedBase, SimError,
    Simulation, LOCAL_WEIGHT,
};
pub use racing::{racing_check, RacingReport};
pub use region::{
    summarize_regions, verify_region, RegionMap, RegionScope, RegionSummary, SummaryEntry,
};
pub use serve::{render_reach_response, ServeError, ServeOptions, ServeSummary, Server};
pub use snapshot::{
    classify_family, CachedFamily, CachedPrefixReport, CompiledNetwork, DirtyReason, FamilyCache,
    FamilyDeps, OriginIndex,
};
pub use topology::{Topology, TopologyError};
pub use verify::{
    AbstractionMode, EquivalenceReport, FamilyBudget, FamilyCost, FamilyOutcome, FamilyProvenance,
    PipelineStage, PrefixReport, QuarantinedFamily, ReachReport, ReverifyOutcome, StreamSummary,
    StreamedFamily, SweepOptions, SweepReport, SweepSchedule, Verifier, VerifierError,
};
