//! The user-facing verification API.
//!
//! A [`Verifier`] owns the network model built from a configuration
//! snapshot plus the conditioned IS-IS database, and answers the queries the
//! paper's operators ask: route reachability under `k` failures, packet
//! reachability, device/role equivalence, route-update racing, and
//! propagation-scope audits. Per-prefix work is independent, so
//! [`Verifier::verify_all_routes`] fans out across threads (CPU-bound work
//! on scoped threads, per the networking guides — no async runtime).

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hoyan_config::{DeviceConfig, SnapshotDelta, Vendor};
use hoyan_device::{Packet, VsbProfile};
use hoyan_nettypes::{Ipv4Prefix, NodeId};

use crate::isis::IsisDb;
use crate::network::NetworkModel;
use crate::packet::packet_reach;
use crate::propagate::{AttachedBase, PruneStats, SharedBase, SimError, Simulation};
use crate::racing::{racing_check, RacingReport};
use crate::snapshot::{
    classify_family, CachedFamily, CachedPrefixReport, CompiledNetwork, DirtyReason, FamilyCache,
    FamilyDeps,
};
use crate::topology::TopologyError;
use hoyan_logic::BddManager;

/// Construction failure.
#[derive(Debug)]
pub enum VerifierError {
    /// The configurations do not form a consistent topology.
    Topology(TopologyError),
    /// The IS-IS (or a route) simulation failed to converge.
    Sim(SimError),
}

impl std::fmt::Display for VerifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifierError::Topology(e) => write!(f, "topology error: {e}"),
            VerifierError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for VerifierError {}

impl From<TopologyError> for VerifierError {
    fn from(e: TopologyError) -> Self {
        VerifierError::Topology(e)
    }
}

impl From<SimError> for VerifierError {
    fn from(e: SimError) -> Self {
        VerifierError::Sim(e)
    }
}

/// Answer to a reachability query.
#[derive(Clone, Debug)]
pub struct ReachReport {
    /// Reachable with every link alive.
    pub reachable_now: bool,
    /// Minimum number of link failures that break reachability
    /// ([`hoyan_logic::bdd::INF_FAILURES`] if no failure set can).
    pub min_failures_to_break: u32,
    /// Whether reachability survives every scenario of at most `k` failures.
    pub resilient: bool,
    /// A minimal breaking failure set (link names), if one exists.
    pub witness: Option<Vec<String>>,
    /// Size of the final reachability formula (Figure 13 metric).
    pub formula_len: usize,
    /// Peak topology-condition formula size seen while the underlying
    /// simulation propagated (Figure 11 metric).
    pub max_formula_len: u64,
}

/// Result of comparing two devices for role equivalence.
#[derive(Clone, Debug)]
pub struct EquivalenceReport {
    /// Whether the two devices are equivalent.
    pub equivalent: bool,
    /// First prefix on which they diverge.
    pub first_difference: Option<Ipv4Prefix>,
}

/// Per-prefix outcome of a full-network verification sweep.
#[derive(Clone, Debug)]
pub struct PrefixReport {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Time to simulate the prefix family (Figure 8).
    pub sim_time: Duration,
    /// Time to answer the reachability queries (Figure 9).
    pub query_time: Duration,
    /// Pruning statistics (Figure 12).
    pub stats: PruneStats,
    /// Largest topology-condition formula during propagation (Figure 11).
    pub max_cond_len: usize,
    /// Largest final reachability formula (Figure 13).
    pub max_reach_formula_len: usize,
    /// Nodes that can receive a route for the prefix (all-alive).
    pub scope: Vec<NodeId>,
    /// Nodes whose reachability is *not* resilient to the queried `k`.
    pub fragile: Vec<NodeId>,
    /// Whether this report is the first of its co-simulated family (the
    /// family's stats are shared; aggregate over heads only).
    pub family_head: bool,
}

/// Why a family was quarantined instead of reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FamilyOutcome {
    /// The family's simulation or queries failed — a [`SimError`] or a
    /// worker panic (`reason` carries the message).
    Failed {
        /// Human-readable failure description.
        reason: String,
    },
    /// The family exhausted its [`FamilyBudget`]: the deterministic BDD
    /// caps, or the opt-in (non-deterministic) wall-clock deadline.
    OverBudget {
        /// Human-readable breach description.
        reason: String,
    },
    /// Modular-pipeline provenance: the abstract first pass settled the
    /// family (the over/under-approximation sandwich was tight within the
    /// failure ball), so no exact refinement was needed for its verdicts.
    ProvedAbstract,
    /// Modular-pipeline provenance: the abstract pass was inconclusive and
    /// the exact simulation settled the family.
    RefinedExact,
}

impl std::fmt::Display for FamilyOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyOutcome::Failed { reason } => write!(f, "failed: {reason}"),
            FamilyOutcome::OverBudget { reason } => write!(f, "over budget: {reason}"),
            FamilyOutcome::ProvedAbstract => write!(f, "proved by abstract pass"),
            FamilyOutcome::RefinedExact => write!(f, "refined by exact simulation"),
        }
    }
}

/// Resource cost of one family's sweep segment, read off the family's BDD
/// arena at segment end (see [`hoyan_logic::BddManager::tallies`]: a
/// freshly recycled arena starts every tally at zero, so the snapshot is
/// exactly this family's delta — the same values the recycle folds into
/// the global counters). Plain data: safe to cache across processes and
/// deterministic across thread counts, except `wall_ns`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamilyCost {
    /// BDD solver steps the family burned (its `bdd.ops` delta).
    pub ops: u64,
    /// ITE operation-cache hits.
    pub ite_cache_hits: u64,
    /// ITE operation-cache misses.
    pub ite_cache_misses: u64,
    /// Mark-and-sweep GC passes inside the family's segment.
    pub gc_runs: u64,
    /// Nodes those GC passes reclaimed.
    pub nodes_reclaimed: u64,
    /// Peak live nodes above the shared base, terminals included.
    pub peak_family_nodes: u64,
    /// Wall time in nanoseconds. 0 unless `hoyan_obs::set_timing` opted
    /// into wall-clock capture — the deterministic default keeps costs
    /// byte-identical across runs and thread counts.
    pub wall_ns: u64,
}

impl FamilyCost {
    pub(crate) fn from_manager(mgr: &BddManager, wall_ns: u64) -> FamilyCost {
        let t = mgr.tallies();
        FamilyCost {
            ops: t.ops,
            ite_cache_hits: t.ite_cache_hits,
            ite_cache_misses: t.ite_cache_misses,
            gc_runs: t.gc_runs,
            nodes_reclaimed: t.nodes_reclaimed,
            peak_family_nodes: mgr.family_peak_live() as u64,
            wall_ns,
        }
    }

    /// ITE operation-cache hit rate in `[0, 1]`; 0 when the cache was
    /// never consulted.
    pub fn ite_hit_rate(&self) -> f64 {
        let total = self.ite_cache_hits + self.ite_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.ite_cache_hits as f64 / total as f64
        }
    }

    pub(crate) fn unit_cost(
        &self,
        unit: u64,
        label: String,
        quarantined: bool,
        reused: bool,
    ) -> hoyan_obs::UnitCost {
        hoyan_obs::UnitCost {
            unit,
            label,
            ops: self.ops,
            peak_nodes: self.peak_family_nodes,
            ite_hits: self.ite_cache_hits,
            ite_misses: self.ite_cache_misses,
            gc_runs: self.gc_runs,
            wall_ns: self.wall_ns,
            quarantined,
            reused,
        }
    }
}

/// Human-readable family label: the head prefix, `(+n)` for batched tails.
fn family_label(fam: &[Ipv4Prefix]) -> String {
    match fam.len() {
        0 => String::new(),
        1 => fam[0].to_string(),
        n => format!("{} (+{})", fam[0], n - 1),
    }
}

/// A prefix family a fault-tolerant sweep excluded from its reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedFamily {
    /// Index into the sweep's family list (for [`Verifier::reverify`] that
    /// is the *dirty* list, so identify families by `prefixes`).
    pub index: usize,
    /// The family's prefixes, sorted.
    pub prefixes: Vec<Ipv4Prefix>,
    /// What took the family out.
    pub outcome: FamilyOutcome,
    /// The *partial* cost the family burned before failing — captured from
    /// the arena the error path hands back, so quarantined work is
    /// attributed, not lost. Zero for panics (the arena unwound with the
    /// simulation, flushing its tallies to the global counters
    /// unattributed).
    pub cost: FamilyCost,
}

/// Output of a fault-tolerant sweep: per-prefix reports for every family
/// that completed, plus the families that did not. An empty `quarantined`
/// means full coverage — callers that need all-or-nothing semantics set
/// [`SweepOptions::fail_fast`] instead of checking this after the fact.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-prefix reports of the surviving families, sorted by prefix.
    pub reports: Vec<PrefixReport>,
    /// Families whose simulation failed, panicked or blew a budget,
    /// ordered by family index. Deterministic at any thread count as long
    /// as no wall-clock deadline is configured.
    pub quarantined: Vec<QuarantinedFamily>,
    /// Per-family stage provenance, ordered by family index. Empty for
    /// monolithic sweeps and for `--abstraction off`; populated by the
    /// modular pipeline with [`FamilyOutcome::ProvedAbstract`] /
    /// [`FamilyOutcome::RefinedExact`]. Additive metadata: deliberately
    /// *outside* the modular-vs-monolithic byte-identity contract, which
    /// covers `reports` and `quarantined`.
    pub provenance: Vec<FamilyProvenance>,
}

/// Which pipeline stage settled one family of a modular sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyProvenance {
    /// Index into the sweep's family list.
    pub index: usize,
    /// The family's prefixes, sorted.
    pub prefixes: Vec<Ipv4Prefix>,
    /// [`FamilyOutcome::ProvedAbstract`] or [`FamilyOutcome::RefinedExact`].
    pub outcome: FamilyOutcome,
}

/// The stages of the modular verification pipeline (`sweep --modular`).
/// A monolithic sweep runs [`PipelineStage::Exact`] only; the modular
/// pipeline partitions once per sweep, then runs the abstract first pass
/// and (where needed) the exact refinement per family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineStage {
    /// Region partitioning and boundary bookkeeping (once per sweep).
    Partition,
    /// The abstract route-nondeterminism first pass (per family).
    Abstract,
    /// The exact conditioned simulation (per family).
    Exact,
}

impl PipelineStage {
    /// Stable span/provenance name for the stage.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::Partition => "verify.partition",
            PipelineStage::Abstract => "verify.abstract",
            PipelineStage::Exact => "verify.exact",
        }
    }
}

/// What the modular pipeline's abstract first pass is allowed to decide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AbstractionMode {
    /// Skip the abstract pass entirely; every family runs exact.
    Off,
    /// Run the abstract pass for provenance and counters, but still settle
    /// every family exactly — reports are byte-identical to a monolithic
    /// sweep *by construction*.
    #[default]
    ProveOnly,
    /// Families the abstract pass proves skip the exact simulation; their
    /// reports are synthesized from the proofs (soundness: the abstract
    /// pass only ever returns proofs that are exact within the ball, and
    /// anything inconclusive falls through to the exact stage).
    Full,
}

/// Per-family resource caps for a sweep. The node and op caps are
/// *operation-counted*: they trip at the same point in the family's own
/// work regardless of machine speed, scheduling or thread count, so the
/// quarantined set stays deterministic. The deadline is the one wall-clock
/// escape hatch and is off by default precisely because it breaks that
/// contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamilyBudget {
    /// Cap on live BDD nodes per family (deterministic).
    pub max_live_nodes: Option<usize>,
    /// Cap on BDD (ITE + cost-walk) operations per family (deterministic).
    pub max_ite_ops: Option<u64>,
    /// Opt-in wall-clock deadline per family, in milliseconds.
    /// **Non-deterministic**: which families trip depends on machine load.
    pub deadline_ms: Option<u64>,
}

impl FamilyBudget {
    fn bdd(&self) -> hoyan_logic::BddBudget {
        hoyan_logic::BddBudget {
            max_live_nodes: self.max_live_nodes,
            max_ops: self.max_ite_ops,
        }
    }
}

/// How [`Verifier::sweep_families`] hands families to workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepSchedule {
    /// A bare atomic claim counter: the next free worker takes the next
    /// family index, and the arena is recycled between families. The
    /// historical behavior and the default.
    #[default]
    RoundRobin,
    /// Dependency-aware batching: families whose pre-simulation origin
    /// footprints ([`crate::snapshot::OriginIndex`]) overlap are grouped
    /// into batches run back-to-back on one arena *without* recycling —
    /// consecutive families re-hit the ITE cache and unique table they
    /// share. Batches are planned deterministically up front and stolen
    /// whole between per-worker deques, so reports and counters stay
    /// identical to `RoundRobin` at any thread count; only the work (and
    /// the `bdd.ops` / `bdd.ite_cache_*` bill) shrinks.
    Deps,
}

/// Maximum families per [`SweepSchedule::Deps`] batch. Bounds how much
/// warm-arena state a chain accumulates (under warm chaining the node
/// budget sees predecessors' still-live nodes until a GC) and keeps
/// enough batches in flight to spread across workers.
const DEPS_BATCH_MAX: usize = 16;

/// One unit of a streaming sweep's output, handed to the caller's sink as
/// soon as it exists instead of being accumulated in memory — the point of
/// [`Verifier::verify_all_routes_streaming`]: peak report memory is
/// bounded by the channel depth (O(threads)), not by the family count.
#[derive(Clone, Debug)]
pub enum StreamedFamily {
    /// A family completed. Delivered in *arrival* order (whichever worker
    /// finishes first), not family order — `index` identifies the family,
    /// and each report carries its prefix.
    Done {
        /// Index into the sweep's family list.
        index: usize,
        /// The family's per-prefix reports, head first.
        reports: Vec<PrefixReport>,
        /// The family's resource bill.
        cost: FamilyCost,
    },
    /// A family was quarantined. Delivered after the workers drain, in
    /// index order (quarantine verdicts are folded post-join to keep them
    /// deterministic — see [`Verifier::verify_all_routes`]).
    Quarantined(QuarantinedFamily),
}

/// What a streaming sweep returns after every report has been handed to
/// the sink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Families that completed (their reports went to the sink).
    pub families: usize,
    /// Prefixes those families covered.
    pub prefixes: usize,
    /// Families quarantined (also streamed to the sink).
    pub quarantined: usize,
}

/// Sweep configuration beyond `k` and the thread count.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Abort the whole sweep on the first family failure (the
    /// pre-quarantine behavior): the sweep returns `Err` with the
    /// lowest-index family's error, and a worker panic resumes unwinding.
    pub fail_fast: bool,
    /// Per-family resource caps.
    pub budget: FamilyBudget,
    /// Run the modular three-stage pipeline (partition → abstract first
    /// pass → exact refinement) instead of the monolithic per-family
    /// simulation. Off by default.
    pub modular: bool,
    /// What the abstract first pass may decide (ignored unless `modular`).
    pub abstraction: AbstractionMode,
    /// How families are scheduled onto workers.
    pub schedule: SweepSchedule,
}

/// How one family failed inside the sweep, before it is folded into a
/// [`FamilyOutcome`] (quarantine) or surfaced raw (fail-fast).
enum FamilyFailure {
    /// An error plus the partial cost the family burned before it — read
    /// off the handed-back arena before the recycle flushed it.
    Error(SimError, FamilyCost),
    Panic(Box<dyn std::any::Any + Send>),
}

/// Pops the next batch id for worker `w`: the front of its own deque
/// first, then — work stealing — a *whole* batch off the back of the
/// nearest busy peer in a fixed scan order. Batches are never split, so a
/// stolen batch's warm chain replays exactly as it would have at home.
fn claim_batch(
    w: usize,
    deques: &[std::sync::Mutex<std::collections::VecDeque<usize>>],
    steals: &mut u64,
) -> Option<usize> {
    if let Some(b) = deques[w]
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .pop_front()
    {
        return Some(b);
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(b) = deques[victim]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
        {
            *steals += 1;
            return Some(b);
        }
    }
    None
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The configuration verifier.
pub struct Verifier {
    /// The network model under verification (shared with the
    /// [`CompiledNetwork`] it was built from).
    pub net: Arc<NetworkModel>,
    /// Conditioned IS-IS database (iBGP session conditions, IGP metrics).
    pub isis: Arc<IsisDb>,
    isis_k: Option<u32>,
    known_prefixes: Vec<Ipv4Prefix>,
    sweep_stats: std::sync::Mutex<PruneStats>,
    /// Dependency traces from *unbounded-budget* runs (role-equivalence
    /// simulations). Budgeted sweep traces are deliberately kept out: a
    /// trace at budget `k` can miss devices an unbounded run reaches.
    equiv_deps: std::sync::Mutex<std::collections::HashMap<Vec<Ipv4Prefix>, FamilyDeps>>,
}

impl Verifier {
    /// Builds a verifier from configurations. `profile` supplies the VSB
    /// profile per vendor (the *behavior model registry* — possibly flawed;
    /// the tuner's job is to fix it). `isis_k` bounds the failure budget of
    /// the IS-IS precomputation; queries must use `k <= isis_k`.
    pub fn new(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        isis_k: Option<u32>,
    ) -> Result<Verifier, VerifierError> {
        Ok(Verifier::from_compiled(CompiledNetwork::build(
            configs, profile, isis_k,
        )?))
    }

    /// [`Verifier::new`] with an explicit BDD variable ordering — the
    /// engine behind `sweep --bdd-order`. Ordering changes node counts and
    /// `bdd.*` counters, never verdicts (see `tests/determinism.rs`).
    pub fn new_ordered(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        isis_k: Option<u32>,
        ordering: hoyan_logic::BddOrdering,
    ) -> Result<Verifier, VerifierError> {
        Ok(Verifier::from_compiled(CompiledNetwork::build_ordered(
            configs, profile, isis_k, ordering,
        )?))
    }

    /// Wraps an already-compiled network (the model and IS-IS database are
    /// shared, not rebuilt — the point of the snapshot → compiled-network
    /// pipeline).
    pub fn from_compiled(compiled: CompiledNetwork) -> Verifier {
        let mut known = std::collections::BTreeSet::new();
        for dev in &compiled.net.devices {
            if let Some(bgp) = dev.config.bgp.as_ref() {
                known.extend(bgp.networks.iter().copied());
                known.extend(bgp.aggregates.iter().map(|a| a.prefix));
            }
            known.extend(dev.config.static_routes.iter().map(|s| s.prefix));
        }
        Verifier {
            net: compiled.net,
            isis: compiled.isis,
            isis_k: compiled.isis_k,
            known_prefixes: known.into_iter().collect(),
            sweep_stats: std::sync::Mutex::new(PruneStats::default()),
            equiv_deps: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// A cheap handle to the verifier's compiled network (two `Arc`
    /// clones); other verifiers or queries can share it.
    pub fn compiled(&self) -> CompiledNetwork {
        CompiledNetwork {
            net: Arc::clone(&self.net),
            isis: Arc::clone(&self.isis),
            isis_k: self.isis_k,
        }
    }

    /// Aggregated pruning statistics across every family simulated by
    /// [`Verifier::verify_all_routes`] so far, including the per-family
    /// stats accumulated on worker threads (one contribution per family,
    /// matching a single-threaded run).
    pub fn sweep_stats(&self) -> PruneStats {
        *self.sweep_stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// All prefixes known to the snapshot (networks, aggregates, statics).
    pub fn known_prefixes(&self) -> &[Ipv4Prefix] {
        &self.known_prefixes
    }

    /// Resolves a device hostname, surfacing a typo as
    /// [`SimError::UnknownDevice`] instead of a panic (the CLI turns it
    /// into a friendly message).
    fn node_named(&self, device: &str) -> Result<NodeId, SimError> {
        self.net
            .topology
            .node(device)
            .ok_or_else(|| SimError::UnknownDevice(device.to_string()))
    }

    /// The family of prefixes that must be co-simulated with `prefix`:
    /// the overlap closure (aggregation and longest-prefix matching couple
    /// overlapping prefixes).
    pub fn family_of(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Prefix> {
        let mut family = vec![prefix];
        loop {
            let mut grew = false;
            for q in &self.known_prefixes {
                if family.contains(q) {
                    continue;
                }
                if family.iter().any(|p| p.contains(*q) || q.contains(*p)) {
                    family.push(*q);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        family.sort();
        family
    }

    /// Groups all known prefixes into disjoint families.
    pub fn families(&self) -> Vec<Vec<Ipv4Prefix>> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for p in &self.known_prefixes {
            if seen.contains(p) {
                continue;
            }
            let fam = self.family_of(*p);
            seen.extend(fam.iter().copied());
            out.push(fam);
        }
        out
    }

    /// Runs the conditioned simulation for `prefix`'s family at failure
    /// budget `k`.
    pub fn simulate(&self, prefix: Ipv4Prefix, k: Option<u32>) -> Result<Simulation<'_>, SimError> {
        let _sp = hoyan_obs::span("verify.sim");
        let family = self.family_of(prefix);
        let mut sim = Simulation::new_bgp(&self.net, family, k, Some(&self.isis));
        sim.run()?;
        Ok(sim)
    }

    fn reach_report(
        &self,
        sim: &mut Simulation<'_>,
        node: NodeId,
        prefix: Ipv4Prefix,
        k: u32,
    ) -> ReachReport {
        let _sp = hoyan_obs::span("verify.query");
        hoyan_obs::metric!(counter "verify.queries").inc();
        let v = sim.reach_cond(node, prefix);
        let reachable_now = sim.mgr.eval(v, &[]);
        let min_failures = sim.mgr.min_failures_to_falsify(v);
        // The falsifying set is over BDD *variables*; witnesses name links.
        let witness = sim.mgr.min_falsifying_failures(v).map(|vars| {
            vars.iter()
                .map(|l| {
                    let (a, b) = self.net.topology.link_ends(self.net.var_link(*l));
                    format!(
                        "{}-{}",
                        self.net.topology.name(a),
                        self.net.topology.name(b)
                    )
                })
                .collect()
        });
        ReachReport {
            reachable_now,
            min_failures_to_break: min_failures,
            resilient: min_failures > k,
            witness,
            formula_len: sim.mgr.size(v),
            max_formula_len: sim.stats.max_formula_len,
        }
    }

    /// Can `device` receive a route for `prefix`, and does that survive any
    /// `k` link failures? (§5.4.)
    pub fn route_reachability(
        &self,
        prefix: Ipv4Prefix,
        device: &str,
        k: u32,
    ) -> Result<ReachReport, SimError> {
        let node = self.node_named(device)?;
        let mut sim = self.simulate(prefix, Some(k))?;
        Ok(self.reach_report(&mut sim, node, prefix, k))
    }

    /// Can a packet from `src_device` reach the gateway of `dst_prefix`,
    /// under any `k` link failures? (§5.5.)
    pub fn packet_reachability(
        &self,
        src_device: &str,
        dst_prefix: Ipv4Prefix,
        packet: Packet,
        k: u32,
    ) -> Result<ReachReport, SimError> {
        let src = self.node_named(src_device)?;
        let mut sim = self.simulate(dst_prefix, Some(k))?;
        let walk = packet_reach(
            &mut sim,
            &self.net,
            Some(&self.isis),
            src,
            dst_prefix,
            packet,
            Some(k),
        );
        let v = walk.reach_cond;
        let reachable_now = sim.mgr.eval(v, &[]);
        let min_failures = sim.mgr.min_failures_to_falsify(v);
        let witness = sim.mgr.min_falsifying_failures(v).map(|vars| {
            vars.iter()
                .map(|l| {
                    let (a, b) = self.net.topology.link_ends(self.net.var_link(*l));
                    format!(
                        "{}-{}",
                        self.net.topology.name(a),
                        self.net.topology.name(b)
                    )
                })
                .collect()
        });
        Ok(ReachReport {
            reachable_now,
            min_failures_to_break: min_failures,
            resilient: min_failures > k,
            witness,
            formula_len: sim.mgr.size(v),
            max_formula_len: sim.stats.max_formula_len,
        })
    }

    /// Role equivalence (§7.2): do two devices receive the same routes and
    /// build the same RIBs (attribute-wise) for every known prefix?
    ///
    /// Families whose propagation touched neither device cannot distinguish
    /// them (both RIBs are empty for every prefix in the family), so they
    /// are skipped when a previous *unbounded* run recorded the family's
    /// dependency trace. The cache self-primes: each simulated family's
    /// trace is recorded, so repeated equivalence checks over the same
    /// snapshot converge to simulating only the families that matter.
    pub fn role_equivalence(&self, a: &str, b: &str) -> Result<EquivalenceReport, SimError> {
        let na = self.node_named(a)?;
        let nb = self.node_named(b)?;
        let an = self.net.topology.name(na);
        let bn = self.net.topology.name(nb);
        for fam in self.families() {
            let skip = {
                let deps = self.equiv_deps.lock().unwrap_or_else(|p| p.into_inner());
                deps.get(&fam).is_some_and(|d| {
                    !d.touched_devices.contains(an) && !d.touched_devices.contains(bn)
                })
            };
            if skip {
                hoyan_obs::metric!(counter "verify.equiv_families_skipped").inc();
                continue;
            }
            let mut sim = Simulation::new_bgp(&self.net, fam.clone(), None, Some(&self.isis));
            sim.run()?;
            self.equiv_deps
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(
                    fam.clone(),
                    FamilyDeps::from_trace(&sim.deps, &self.net.topology),
                );
            for p in fam {
                // Equivalent roles receive the same updates with the same
                // attributes over the same kinds of sessions.
                let ra: Vec<_> = sim
                    .rib(na, p)
                    .into_iter()
                    .map(|v| (v.attrs, v.learned_from))
                    .collect();
                let rb: Vec<_> = sim
                    .rib(nb, p)
                    .into_iter()
                    .map(|v| (v.attrs, v.learned_from))
                    .collect();
                if ra != rb {
                    return Ok(EquivalenceReport {
                        equivalent: false,
                        first_difference: Some(p),
                    });
                }
            }
        }
        Ok(EquivalenceReport {
            equivalent: true,
            first_difference: None,
        })
    }

    /// Router-failure tolerance (Table 1 lists "failures of router/link"):
    /// a router failure is the simultaneous failure of all its incident
    /// links. Returns the devices whose single failure makes `prefix`
    /// unreachable at `device` — empty means the reachability survives any
    /// one router going down.
    ///
    /// Requires the verifier's IS-IS budget to cover the largest incident
    /// link count (use a generous `isis_k` when auditing router failures).
    pub fn router_failure_tolerance(
        &self,
        prefix: Ipv4Prefix,
        device: &str,
    ) -> Result<Vec<String>, SimError> {
        let node = self.node_named(device)?;
        // Budget must admit conditions that only hold once a whole router's
        // links are down: use the max degree.
        let max_degree = self
            .net
            .topology
            .nodes()
            .map(|n| self.net.topology.neighbors(n).len() as u32)
            .max()
            .unwrap_or(0);
        let mut sim = Simulation::new_bgp(
            &self.net,
            self.family_of(prefix),
            Some(max_degree),
            Some(&self.isis),
        );
        sim.run()?;
        let v = sim.reach_cond(node, prefix);
        let mut fatal = Vec::new();
        for r in self.net.topology.nodes() {
            if r == node {
                continue; // the target going down is out of scope
            }
            // Gateways of the prefix going down trivially break it; still
            // report them (common-mode risk the §7.2 audit cares about).
            let mut assign = vec![true; self.net.topology.link_count()];
            for (_, link) in self.net.topology.neighbors(r) {
                // Assignments index BDD variables, not link ids.
                assign[self.net.link_var(*link) as usize] = false;
            }
            if !sim.mgr.eval(v, &assign) {
                fatal.push(self.net.topology.name(r).to_string());
            }
        }
        Ok(fatal)
    }

    /// Route-update racing analysis for one prefix (Appendix B).
    pub fn racing(&self, prefix: Ipv4Prefix) -> RacingReport {
        racing_check(&self.net, prefix, 2)
    }

    /// Which devices hold a route for `prefix` with all links alive — the
    /// propagation-scope audit behind the §7.2 IP-conflict case.
    pub fn propagation_scope(&self, prefix: Ipv4Prefix) -> Result<Vec<NodeId>, SimError> {
        let mut sim = self.simulate(prefix, Some(0))?;
        let nodes: Vec<NodeId> = self.net.topology.nodes().collect();
        Ok(nodes
            .into_iter()
            .filter(|n| {
                let v = sim.reach_cond(*n, prefix);
                sim.mgr.eval(v, &[])
            })
            .collect())
    }

    /// Simulates and queries one family in `arena`, returning the family's
    /// sweep output *and the arena* — warm again on both the success and the
    /// error path (a failed [`Simulation`] still surrenders its manager via
    /// [`Simulation::into_manager`], so quarantine-and-continue does not
    /// silently degrade workers to cold arenas). Only a panic loses the
    /// arena, because it unwinds through the owning simulation.
    fn run_family(
        &self,
        mut arena: BddManager,
        base: &AttachedBase,
        fam: &[Ipv4Prefix],
        index: usize,
        k: u32,
        opts: &SweepOptions,
    ) -> (Result<FamilySweep, SimError>, BddManager) {
        // Seeded injection site: tests and `experiments faults` arm it to
        // exercise quarantine deterministically; disarmed it is one relaxed
        // atomic load. A planned panic fires inside `hit` itself.
        let mut budget = opts.budget;
        match hoyan_rt::fault::hit("verify.family", index as u64) {
            None => {}
            Some(hoyan_rt::fault::Fault::Error) => {
                return (
                    Err(SimError::Injected {
                        site: "verify.family",
                        index: index as u64,
                    }),
                    arena,
                );
            }
            // Injected budget exhaustion goes through the *real* budget
            // machinery: cap the family at zero ops and let the safe-point
            // check trip.
            Some(hoyan_rt::fault::Fault::OverBudget) => budget.max_ite_ops = Some(0),
        }
        let t0 = Instant::now();
        // Stage 2 of the modular pipeline: the abstract first pass. Runs in
        // the *same* arena as the exact stage (its ops count against the
        // family budget), against the same shared-base session conditions,
        // so both stages price sessions alike. A proof in `Full` mode
        // settles the family without simulating; in `ProveOnly` mode the
        // proof is provenance and the exact stage still produces every
        // report — byte-identical to a monolithic sweep by construction.
        let mut provenance = None;
        if opts.modular && opts.abstraction != AbstractionMode::Off {
            // Own injection site so tests can fault the abstract stage
            // specifically: an error or breach here quarantines only this
            // family, exactly like an exact-stage fault.
            match hoyan_rt::fault::hit("verify.abstract", index as u64) {
                None => {}
                Some(hoyan_rt::fault::Fault::Error) => {
                    return (
                        Err(SimError::Injected {
                            site: "verify.abstract",
                            index: index as u64,
                        }),
                        arena,
                    );
                }
                Some(hoyan_rt::fault::Fault::OverBudget) => budget.max_ite_ops = Some(0),
            }
            let abs_span = hoyan_obs::span(PipelineStage::Abstract.name());
            arena.set_budget(budget.bdd());
            let outcome = crate::abstract_sim::prove_family(
                &self.net,
                crate::abstract_sim::SessionConds::Base(base),
                &mut arena,
                fam,
                k,
            );
            drop(abs_span);
            match outcome {
                Err(breach) => {
                    hoyan_obs::record(hoyan_obs::EventKind::BudgetBreach);
                    return (Err(SimError::OverBudget(breach)), arena);
                }
                Ok(crate::abstract_sim::AbstractOutcome::Proved(proofs)) => {
                    hoyan_obs::record(hoyan_obs::EventKind::StageAbstract { proved: true });
                    provenance = Some(FamilyOutcome::ProvedAbstract);
                    if opts.abstraction == AbstractionMode::Full {
                        // The proof settles the family: synthesize the
                        // reports it implies. Prune stats and cond sizes
                        // describe exact propagation, which never ran —
                        // they stay zero. Deps are conservatively "all of
                        // the network", so an incremental reverify always
                        // reclassifies the family dirty.
                        if let Some(breach) = arena.budget_exceeded() {
                            hoyan_obs::record(hoyan_obs::EventKind::BudgetBreach);
                            return (Err(SimError::OverBudget(breach)), arena);
                        }
                        let reports = proofs
                            .iter()
                            .enumerate()
                            .map(|(pi, proof)| PrefixReport {
                                prefix: proof.prefix,
                                sim_time: Duration::ZERO,
                                query_time: Duration::ZERO,
                                stats: PruneStats::default(),
                                max_cond_len: 0,
                                max_reach_formula_len: proof.max_reach_formula_len,
                                scope: proof.scope.clone(),
                                fragile: proof.fragile.clone(),
                                family_head: pi == 0,
                            })
                            .collect();
                        let wall_ns = if hoyan_obs::timing() {
                            t0.elapsed().as_nanos() as u64
                        } else {
                            0
                        };
                        let sweep = FamilySweep {
                            index,
                            stats: PruneStats::default(),
                            reports,
                            deps: self.whole_network_deps(),
                            cost: FamilyCost::from_manager(&arena, wall_ns),
                            provenance,
                        };
                        return (Ok(sweep), arena);
                    }
                }
                Ok(crate::abstract_sim::AbstractOutcome::Inconclusive(_reason)) => {
                    hoyan_obs::record(hoyan_obs::EventKind::StageAbstract { proved: false });
                    provenance = Some(FamilyOutcome::RefinedExact);
                }
            }
            hoyan_obs::record(hoyan_obs::EventKind::StageExact);
        }
        let sim_span = hoyan_obs::span("verify.sim");
        let mut sim = Simulation::new_bgp_in(
            arena,
            &self.net,
            fam.to_vec(),
            Some(k),
            Some(&self.isis),
        );
        sim.set_base(base.clone());
        sim.set_budget(budget.bdd(), budget.deadline_ms);
        if let Err(e) = sim.run() {
            return (Err(e), sim.into_manager());
        }
        drop(sim_span);
        let sim_time = t0.elapsed();
        let mut family_reports = Vec::with_capacity(fam.len());
        for (pi, p) in fam.iter().enumerate() {
            let _q_span = hoyan_obs::span("verify.query");
            let q0 = Instant::now();
            // Gather every in-scope device's reachability condition first,
            // then answer all the "survives k failures?" questions with a
            // single multi-root cost traversal: the shared walk prices each
            // node once even when conditions share structure, instead of
            // restarting the sweep per device.
            let mut scope: Vec<(NodeId, hoyan_logic::Bdd)> = Vec::new();
            for n in self.net.topology.nodes() {
                let v = sim.reach_cond(n, *p);
                if !v.is_false() && sim.mgr.eval(v, &[]) {
                    scope.push((n, v));
                }
            }
            let roots: Vec<hoyan_logic::Bdd> = scope.iter().map(|&(_, v)| v).collect();
            let break_costs = sim.mgr.min_failures_to_falsify_many(&roots);
            let mut scope_nodes = Vec::with_capacity(scope.len());
            let mut fragile = Vec::new();
            let mut max_len = 0usize;
            for (&(n, _), cost) in scope.iter().zip(&break_costs) {
                scope_nodes.push(n);
                let exact = sim.reach_cond_exact(n, *p);
                max_len = max_len.max(sim.mgr.size(exact));
                if *cost <= k {
                    fragile.push(n);
                }
            }
            family_reports.push(PrefixReport {
                prefix: *p,
                sim_time,
                query_time: q0.elapsed(),
                stats: sim.stats,
                max_cond_len: sim.max_cond_size,
                max_reach_formula_len: max_len,
                scope: scope_nodes,
                fragile,
                family_head: pi == 0,
            });
        }
        // The query phase allocates in the same arena; honor the caps over
        // the family's *whole* footprint, not just propagation.
        if let Some(breach) = sim.mgr.budget_exceeded() {
            hoyan_obs::record(hoyan_obs::EventKind::BudgetBreach);
            return (Err(SimError::OverBudget(breach)), sim.into_manager());
        }
        let wall_ns = if hoyan_obs::timing() {
            t0.elapsed().as_nanos() as u64
        } else {
            0
        };
        let sweep = FamilySweep {
            index,
            stats: sim.stats,
            reports: family_reports,
            deps: FamilyDeps::from_trace(&sim.deps, &self.net.topology),
            cost: FamilyCost::from_manager(&sim.mgr, wall_ns),
            provenance,
        };
        (Ok(sweep), sim.into_manager())
    }

    /// The most conservative [`FamilyDeps`]: every device and link. Used
    /// for abstract-proved families, whose exact propagation never ran and
    /// therefore never traced its true footprint — any snapshot change
    /// reclassifies them dirty, which is always sound.
    fn whole_network_deps(&self) -> FamilyDeps {
        let topo = &self.net.topology;
        let devices: std::collections::BTreeSet<String> =
            topo.nodes().map(|n| topo.name(n).to_string()).collect();
        let links = (0..topo.link_count())
            .map(|l| {
                let (a, b) = topo.link_ends(hoyan_nettypes::LinkId(l as u32));
                let (a, b) = (topo.name(a).to_string(), topo.name(b).to_string());
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        FamilyDeps {
            origin_devices: devices.clone(),
            touched_devices: devices,
            touched_links: links,
        }
    }

    /// Simulates the given prefix families at budget `k` on `threads` scoped
    /// `std::thread`s (CPU-bound work, no async runtime) and returns each
    /// family's reports plus the dependency trace its propagation recorded.
    /// Results come back ordered by family index, so callers see the same
    /// sequence for any thread count.
    ///
    /// Fault tolerance: each family runs under `catch_unwind`; an error,
    /// budget breach or panic quarantines *that family only* and the rest
    /// of the sweep completes. With [`SweepOptions::fail_fast`] the sweep
    /// instead aborts like the pre-quarantine implementation — but failures
    /// are recorded keyed by family index, so the surfaced error is the
    /// *lowest-index* failing family at any thread count (under the
    /// round-robin schedule claims are issued in index order, so once a
    /// failure at index `j` stops the claim counter, every index below it
    /// has been claimed and its outcome recorded before the workers drain;
    /// under [`SweepSchedule::Deps`] the surfaced error is the lowest
    /// *recorded* failing index, which can vary with the thread count —
    /// prefer the default schedule with `fail_fast`).
    ///
    /// Determinism: a family's reports are pushed atomically (all or
    /// nothing), the final list is sorted by family index, and the
    /// quarantine counters are bumped once, post-join — so reports,
    /// quarantined set and counters are identical for any thread count
    /// (see `tests/determinism.rs` and `tests/faults.rs`).
    fn sweep_families(
        &self,
        families: &[Vec<Ipv4Prefix>],
        k: u32,
        threads: usize,
        opts: &SweepOptions,
        units: Option<&[usize]>,
    ) -> Result<SweepOutcome, SimError> {
        self.sweep_families_sink(families, k, threads, opts, units, None)
    }

    /// Plans the [`SweepSchedule::Deps`] batches: families that share an
    /// origin device (per [`crate::snapshot::OriginIndex`] — the
    /// pre-simulation footprint, so no simulation is needed to plan) are
    /// unioned into clusters, and each cluster is split into runs of at
    /// most [`DEPS_BATCH_MAX`] families. A batch is the unit of both
    /// warmth and stealing: it always executes front-to-back on one arena,
    /// so its ITE-cache reuse is identical wherever it lands. The plan is
    /// computed on the calling thread from the family list and the configs
    /// alone — thread-count invariant, like every counter derived from it.
    fn plan_batches(&self, families: &[Vec<Ipv4Prefix>]) -> Vec<Vec<usize>> {
        let _sp = hoyan_obs::span("verify.schedule");
        let origins = crate::snapshot::OriginIndex::build(&self.net);
        // Union-find over family indices keyed by shared origin device.
        // Unions always point the larger root at the smaller, so a
        // cluster's root is its first family and the BTreeMap below walks
        // clusters in first-family order.
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut parent: Vec<usize> = (0..families.len()).collect();
        let mut owner: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (i, fam) in families.iter().enumerate() {
            for dev in origins.origin_devices(fam) {
                match owner.entry(dev) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let a = find(&mut parent, *e.get());
                        let b = find(&mut parent, i);
                        if a != b {
                            parent[a.max(b)] = a.min(b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(i);
                    }
                }
            }
        }
        let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..families.len() {
            clusters
                .entry(find(&mut parent, i))
                .or_default()
                .push(i);
        }
        let mut batches = Vec::new();
        for members in clusters.into_values() {
            for chunk in members.chunks(DEPS_BATCH_MAX) {
                batches.push(chunk.to_vec());
            }
        }
        batches
    }

    /// [`Verifier::sweep_families`] with an optional streaming sink: when
    /// `sink` is set, each completed family's reports are sent through a
    /// bounded channel as the worker finishes them (backpressure bounds
    /// the reports alive at once to O(threads)) and the returned
    /// [`SweepOutcome`] keeps report-less shells for the post-join
    /// bookkeeping. Quarantined families are streamed post-join, in index
    /// order. The sink runs on the calling thread.
    fn sweep_families_sink(
        &self,
        families: &[Vec<Ipv4Prefix>],
        k: u32,
        threads: usize,
        opts: &SweepOptions,
        units: Option<&[usize]>,
        mut sink: Option<&mut dyn FnMut(StreamedFamily)>,
    ) -> Result<SweepOutcome, SimError> {
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
        let _sweep = hoyan_obs::span("verify.sweep");
        // Fan-out occupancy: thread-count-dependent by nature, so a gauge
        // (the determinism contract covers counters/histograms only).
        hoyan_obs::metric!(gauge "verify.fanout_threads").record_max(threads.max(1) as u64);
        hoyan_obs::metric!(gauge "verify.fanout_families").record_max(families.len() as u64);
        // Flight-recorder unit ids: the local family index by default;
        // `reverify` passes the classification indices of its dirty list so
        // recorded events and costs carry global family ids.
        let unit_of = |i: usize| match units {
            Some(u) => u[i] as u64,
            None => i as u64,
        };
        let results = std::sync::Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);
        // Recorder worker ids (for the opt-in `--timing` trace only; with
        // timing off the trace never exposes worker identity).
        let worker_seq = AtomicUsize::new(0);
        // Armed only under fail-fast: quarantine never stops peers.
        let failed = AtomicBool::new(false);
        // Failures keyed by family index: the map, not lock-acquisition
        // order, decides which error fail-fast surfaces.
        let failures = std::sync::Mutex::new(std::collections::BTreeMap::<usize, FamilyFailure>::new());
        // The cross-family shared base: link literals + iBGP session
        // conditions, built once here and imported into every worker arena.
        let base = SharedBase::build(&self.net, Some(&self.isis));
        // Reported separately from the per-family costs: base construction
        // flushes into `bdd.ops` when the base drops at sweep end, and the
        // attribution must reconcile with that counter. Built on the
        // calling thread, so the value is thread-count invariant.
        hoyan_obs::metric!(counter "verify.shared_base_ops").add(base.construction_ops());
        let nw = threads.max(1);
        // The dependency-aware plan (None = round-robin claim counter).
        // Planned on the calling thread, so the batch count — a counter,
        // covered by the determinism contract — never depends on `nw`.
        let plan = match opts.schedule {
            SweepSchedule::RoundRobin => None,
            SweepSchedule::Deps => Some(self.plan_batches(families)),
        };
        if let Some(batches) = &plan {
            hoyan_obs::metric!(counter "verify.sched_batches").add(batches.len() as u64);
        }
        // Per-worker batch deques: batch `b` homes on worker `b % nw`; an
        // idle worker steals a *whole* batch from the back of the nearest
        // busy peer. How batches land on workers is timing-dependent, but
        // a batch's contents and order are not — so only the steal tally
        // (a gauge) varies with scheduling, never a counter.
        let deques: Vec<std::sync::Mutex<std::collections::VecDeque<usize>>> =
            (0..nw).map(|_| Default::default()).collect();
        if let Some(batches) = &plan {
            for b in 0..batches.len() {
                deques[b % nw]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push_back(b);
            }
        }
        let steals = AtomicU64::new(0);
        std::thread::scope(|s| {
            // Streaming channel: bounded at two families per worker, so a
            // slow sink throttles the sweep instead of buffering every
            // report.
            let (tx, rx) = if sink.is_some() {
                let (t, r) = std::sync::mpsc::sync_channel::<StreamedFamily>(nw * 2);
                (Some(t), Some(r))
            } else {
                (None, None)
            };
            // Shadow references: the worker closures are `move` (each owns
            // its clone of the streaming sender) and must not capture the
            // shared state by value.
            let this = self;
            let results = &results;
            let failures = &failures;
            let failed = &failed;
            let next = &next;
            let worker_seq = &worker_seq;
            let base = &base;
            let plan = &plan;
            let deques = &deques;
            let steals = &steals;
            let unit_of = &unit_of;
            let handles: Vec<_> = (0..nw)
                .map(|w| {
                    let tx = tx.clone();
                    s.spawn(move || {
                        hoyan_obs::set_worker(
                            worker_seq.fetch_add(1, Ordering::Relaxed) as u32
                        );
                        // One warm BDD arena per worker, recycled between
                        // families: node/table allocations survive, handles
                        // and tallies do not (each family still accounts —
                        // and collects — as if it owned a fresh manager, so
                        // counters stay identical at any thread count). The
                        // shared base is imported once per arena (tally-
                        // excluded) and survives every recycle.
                        let mut arena = BddManager::new();
                        let mut attached = base.attach(&mut arena);
                        // Deps-schedule worker state: the batch being
                        // drained, the cursor into it, and whether the
                        // warm chain from the previous family is intact.
                        let mut batch: &[usize] = &[];
                        let mut pos = 0usize;
                        let mut chain_warm = false;
                        let mut local_steals = 0u64;
                        loop {
                            if opts.fail_fast && failed.load(Ordering::Acquire) {
                                break;
                            }
                            // Claim the next family and decide the arena
                            // temperature it starts at.
                            let (i, warm) = match plan {
                                // Round-robin: the bare claim counter;
                                // every family starts cold.
                                None => {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= families.len() {
                                        break;
                                    }
                                    (i, false)
                                }
                                // Deps: drain the current batch front to
                                // back (warm after its first family), then
                                // pop the next home batch or steal one.
                                Some(batches) => {
                                    if pos >= batch.len() {
                                        let Some(b) =
                                            claim_batch(w, deques, &mut local_steals)
                                        else {
                                            break;
                                        };
                                        batch = &batches[b];
                                        pos = 0;
                                        chain_warm = false;
                                    }
                                    let i = batch[pos];
                                    pos += 1;
                                    let warm = chain_warm;
                                    chain_warm = true;
                                    (i, warm)
                                }
                            };
                            // Arena prep happens at claim time. Cold:
                            // recycle — flushes the previous segment's
                            // tallies (a no-op on a pristine arena) and
                            // drops everything above the shared base.
                            // Warm: keep nodes and caches, flush tallies
                            // and restart the per-family accounting, so
                            // each family still bills exactly its own
                            // delta (`BddManager::next_family_warm`).
                            if warm {
                                arena.next_family_warm();
                            } else {
                                arena.recycle();
                            }
                            let _fam_span = hoyan_obs::span("verify.family");
                            hoyan_obs::begin_unit(unit_of(i));
                            hoyan_obs::record(hoyan_obs::EventKind::FamilyStart);
                            let work = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                this.run_family(
                                    std::mem::take(&mut arena),
                                    &attached,
                                    &families[i],
                                    i,
                                    k,
                                    opts,
                                )
                            }));
                            let failure = match work {
                                Ok((Ok(mut sweep), mgr)) => {
                                    hoyan_obs::record(hoyan_obs::EventKind::FamilyEnd {
                                        ops: sweep.cost.ops,
                                        peak_nodes: sweep.cost.peak_family_nodes,
                                    });
                                    // The family's tallies stay on the
                                    // arena until the next claim recycles
                                    // or warm-chains it (or Drop flushes at
                                    // sweep end) — each segment folds into
                                    // the global counters exactly once
                                    // either way.
                                    arena = mgr;
                                    // Under fail-fast, partial output must
                                    // not be published past a peer's
                                    // failure (pre-quarantine semantics).
                                    if opts.fail_fast && failed.load(Ordering::Acquire) {
                                        break;
                                    }
                                    self.sweep_stats
                                        .lock()
                                        .unwrap_or_else(|p| p.into_inner())
                                        .merge(&sweep.stats);
                                    hoyan_obs::metric!(counter "verify.families").inc();
                                    hoyan_obs::metric!(counter "verify.prefixes")
                                        .add(families[i].len() as u64);
                                    if let Some(tx) = &tx {
                                        // Streaming: hand the reports to
                                        // the sink now (the bounded send
                                        // is the backpressure) and keep a
                                        // report-less shell for the
                                        // post-join bookkeeping.
                                        let reports = std::mem::take(&mut sweep.reports);
                                        sweep.deps = FamilyDeps::default();
                                        let _ = tx.send(StreamedFamily::Done {
                                            index: sweep.index,
                                            reports,
                                            cost: sweep.cost,
                                        });
                                    }
                                    results
                                        .lock()
                                        .unwrap_or_else(|p| p.into_inner())
                                        .push(sweep);
                                    continue;
                                }
                                Ok((Err(e), mgr)) => {
                                    // The error path hands the arena back
                                    // (via `into_manager`) with this
                                    // family's tallies still on it: read
                                    // the partial cost now; the next
                                    // claim's recycle flushes it. A warm
                                    // chain never survives a failure.
                                    let cost = FamilyCost::from_manager(&mgr, 0);
                                    hoyan_obs::record(hoyan_obs::EventKind::FamilyEnd {
                                        ops: cost.ops,
                                        peak_nodes: cost.peak_family_nodes,
                                    });
                                    arena = mgr;
                                    chain_warm = false;
                                    FamilyFailure::Error(e, cost)
                                }
                                Err(payload) => {
                                    // The arena unwound with the failed
                                    // simulation; this worker restarts cold
                                    // — which means re-importing the base
                                    // (the old handles died with the arena)
                                    // — and the warm chain breaks.
                                    arena = BddManager::new();
                                    attached = base.attach(&mut arena);
                                    chain_warm = false;
                                    FamilyFailure::Panic(payload)
                                }
                            };
                            failures
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .insert(i, failure);
                            if opts.fail_fast {
                                failed.store(true, Ordering::Release);
                                break;
                            }
                        }
                        steals.fetch_add(local_steals, Ordering::Relaxed);
                        // Merge this worker's event buffer into the global
                        // log before the thread exits.
                        hoyan_obs::flush_thread_events();
                    })
                })
                .collect();
            // The streaming pump runs on this (the calling) thread while
            // the workers produce. Dropping the original sender first
            // leaves the workers holding the only clones, so the receive
            // loop ends exactly when the last worker exits.
            drop(tx);
            if let Some(rx) = rx {
                let sink = sink.as_mut().expect("streaming channel implies a sink");
                for item in rx {
                    sink(item);
                }
            }
            // Join explicitly and re-raise the first *harness* panic (the
            // per-family work is already caught above; anything escaping
            // here is a bug in the sweep itself).
            let mut panic_payload = None;
            for h in handles {
                if let Err(p) = h.join() {
                    panic_payload.get_or_insert(p);
                }
            }
            if let Some(p) = panic_payload {
                std::panic::resume_unwind(p);
            }
        });
        let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
        if opts.fail_fast {
            // Lowest failing index wins — BTreeMap order, not whichever
            // worker got to a lock first.
            if let Some((_, failure)) = failures.pop_first() {
                match failure {
                    FamilyFailure::Error(e, _) => return Err(e),
                    FamilyFailure::Panic(p) => std::panic::resume_unwind(p),
                }
            }
        }
        let mut quarantined = Vec::new();
        let mut over_budget = 0u64;
        for (index, failure) in failures {
            let (outcome, cost) = match failure {
                FamilyFailure::Error(
                    e @ (SimError::OverBudget(_) | SimError::DeadlineExceeded { .. }),
                    cost,
                ) => {
                    over_budget += 1;
                    (
                        FamilyOutcome::OverBudget {
                            reason: e.to_string(),
                        },
                        cost,
                    )
                }
                FamilyFailure::Error(e, cost) => (
                    FamilyOutcome::Failed {
                        reason: e.to_string(),
                    },
                    cost,
                ),
                FamilyFailure::Panic(p) => (
                    FamilyOutcome::Failed {
                        reason: format!("panic: {}", panic_message(p.as_ref())),
                    },
                    FamilyCost::default(),
                ),
            };
            quarantined.push(QuarantinedFamily {
                index,
                prefixes: families[index].clone(),
                outcome,
                cost,
            });
        }
        // Bumped once, post-join: deterministic at any thread count (as
        // long as no wall-clock deadline is configured — see the docs).
        hoyan_obs::metric!(counter "verify.families_quarantined").add(quarantined.len() as u64);
        hoyan_obs::metric!(counter "verify.families_over_budget").add(over_budget);
        // How many batches moved between workers: timing-dependent by
        // nature (whichever worker idles first steals), hence a gauge —
        // the counter contract stays thread-count invariant.
        if plan.is_some() {
            hoyan_obs::metric!(gauge "verify.sched_steals")
                .record_max(steals.load(std::sync::atomic::Ordering::Relaxed));
        }
        // Quarantine verdicts reach a streaming sink post-join too, in
        // index order, mirroring their deterministic fold above.
        if let Some(sink) = sink.as_mut() {
            for q in &quarantined {
                sink(StreamedFamily::Quarantined(q.clone()));
            }
        }
        let mut out = results.into_inner().unwrap_or_else(|p| p.into_inner());
        out.sort_by_key(|f| f.index);
        // Stage-provenance counters, also bumped once post-join so the
        // modular pipeline keeps the same thread-count-invariance contract.
        let proved = out
            .iter()
            .filter(|f| f.provenance == Some(FamilyOutcome::ProvedAbstract))
            .count() as u64;
        let refined = out
            .iter()
            .filter(|f| f.provenance == Some(FamilyOutcome::RefinedExact))
            .count() as u64;
        hoyan_obs::metric!(counter "verify.families_abstract_proved").add(proved);
        hoyan_obs::metric!(counter "verify.families_refined").add(refined);
        // Publish the per-family cost attribution and the quarantine
        // verdicts to the flight recorder — post-join and in index order,
        // so the merged log is deterministic at any thread count.
        if hoyan_obs::events_enabled() {
            for f in &out {
                hoyan_obs::record_unit_cost(f.cost.unit_cost(
                    unit_of(f.index),
                    family_label(&families[f.index]),
                    false,
                    false,
                ));
            }
            for q in &quarantined {
                hoyan_obs::record_for(unit_of(q.index), hoyan_obs::EventKind::Quarantined);
                hoyan_obs::record_unit_cost(q.cost.unit_cost(
                    unit_of(q.index),
                    family_label(&families[q.index]),
                    true,
                    false,
                ));
            }
            hoyan_obs::flush_thread_events();
        }
        Ok(SweepOutcome {
            families: out,
            quarantined,
        })
    }

    /// Publishes the sweep-wide gauges from the aggregate prune stats.
    fn flush_sweep_gauges(&self) {
        let agg = self.sweep_stats();
        hoyan_obs::metric!(gauge "verify.sweep_delivered").set(agg.delivered);
        hoyan_obs::metric!(gauge "verify.sweep_dropped")
            .set(agg.dropped_policy + agg.dropped_over_k + agg.dropped_impossible);
        hoyan_obs::metric!(gauge "verify.sweep_max_formula_len").record_max(agg.max_formula_len);
    }

    /// Full-network route-reachability sweep: simulates every prefix family
    /// at budget `k` and reports per-prefix timings, statistics and fragile
    /// devices. Families are processed in parallel on `threads` scoped
    /// threads; output is sorted by prefix and identical for any thread
    /// count (see `tests/determinism.rs`).
    ///
    /// Runs with the default [`SweepOptions`]: faults are quarantined
    /// per-family, never aborting the sweep — inspect
    /// [`SweepReport::quarantined`] for families that did not complete. Use
    /// [`Verifier::verify_all_routes_opts`] for fail-fast or budgets.
    pub fn verify_all_routes(&self, k: u32, threads: usize) -> Result<SweepReport, SimError> {
        self.verify_all_routes_opts(k, threads, &SweepOptions::default())
    }

    /// [`Verifier::verify_all_routes`] with explicit [`SweepOptions`]
    /// (fail-fast, per-family resource budgets).
    pub fn verify_all_routes_opts(
        &self,
        k: u32,
        threads: usize,
        opts: &SweepOptions,
    ) -> Result<SweepReport, SimError> {
        let families = self.families();
        self.partition_stage(opts);
        let swept = self.sweep_families(&families, k, threads, opts, None)?;
        let provenance = Self::stage_provenance(&families, &swept);
        let mut out: Vec<PrefixReport> =
            swept.families.into_iter().flat_map(|f| f.reports).collect();
        out.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok(SweepReport {
            reports: out,
            quarantined: swept.quarantined,
            provenance,
        })
    }

    /// Streaming [`Verifier::verify_all_routes_opts`]: instead of
    /// accumulating every [`PrefixReport`] and returning them at the end,
    /// each family's reports are handed to `sink` as soon as a worker
    /// finishes the family — so peak report memory is bounded by the
    /// bounded channel (O(threads) families), not by the sweep size.
    ///
    /// Delivery order is *arrival* order for completed families (identify
    /// them by index or by each report's prefix) and index order for
    /// quarantined ones, which stream after the workers drain. The sink
    /// runs on the calling thread; a slow sink backpressures the workers.
    /// The set of streamed reports — and every counter — is identical to
    /// the materialized sweep at any thread count; only the arrival order
    /// varies (see `tests/determinism.rs`).
    pub fn verify_all_routes_streaming(
        &self,
        k: u32,
        threads: usize,
        opts: &SweepOptions,
        sink: &mut dyn FnMut(StreamedFamily),
    ) -> Result<StreamSummary, SimError> {
        let families = self.families();
        self.partition_stage(opts);
        let swept = self.sweep_families_sink(&families, k, threads, opts, None, Some(sink))?;
        self.flush_sweep_gauges();
        let prefixes = swept
            .families
            .iter()
            .map(|f| families[f.index].len())
            .sum();
        Ok(StreamSummary {
            families: swept.families.len(),
            prefixes,
            quarantined: swept.quarantined.len(),
        })
    }

    /// Stage 1 of the modular pipeline: derive the region partition from
    /// topogen role metadata (connectivity components for role-less
    /// fixtures) and publish its shape. The sweep itself stays whole-
    /// network — region-local verification against neighbor summaries is
    /// the [`crate::region`] API — so partitioning cannot perturb verdicts.
    fn partition_stage(&self, opts: &SweepOptions) {
        if !opts.modular {
            return;
        }
        let _sp = hoyan_obs::span(PipelineStage::Partition.name());
        let map = crate::region::RegionMap::build(&self.net.topology);
        hoyan_obs::metric!(gauge "verify.regions").set(map.region_count() as u64);
        hoyan_obs::metric!(gauge "verify.region_boundary_links")
            .set(map.boundary_links(&self.net.topology).len() as u64);
    }

    /// Collects the per-family stage provenance of a modular sweep (empty
    /// for monolithic sweeps — no completed family carries provenance).
    fn stage_provenance(
        families: &[Vec<Ipv4Prefix>],
        swept: &SweepOutcome,
    ) -> Vec<FamilyProvenance> {
        swept
            .families
            .iter()
            .filter_map(|f| {
                f.provenance.clone().map(|outcome| FamilyProvenance {
                    index: f.index,
                    prefixes: families[f.index].clone(),
                    outcome,
                })
            })
            .collect()
    }

    /// Like [`Verifier::verify_all_routes`], but also returns a
    /// [`FamilyCache`] mapping every simulated family to its reports and the
    /// dependency trace recorded during propagation — the baseline for
    /// [`Verifier::reverify`]. Quarantined families are *not* cached, so a
    /// later [`Verifier::reverify`] classifies them `NotCached` and retries
    /// them automatically.
    pub fn verify_all_routes_cached(
        &self,
        k: u32,
        threads: usize,
    ) -> Result<(SweepReport, FamilyCache), SimError> {
        self.verify_all_routes_cached_opts(k, threads, &SweepOptions::default())
    }

    /// [`Verifier::verify_all_routes_cached`] with explicit
    /// [`SweepOptions`].
    pub fn verify_all_routes_cached_opts(
        &self,
        k: u32,
        threads: usize,
        opts: &SweepOptions,
    ) -> Result<(SweepReport, FamilyCache), SimError> {
        let families = self.families();
        self.partition_stage(opts);
        let swept = self.sweep_families(&families, k, threads, opts, None)?;
        let provenance = Self::stage_provenance(&families, &swept);
        let mut cache = FamilyCache::new(k, self.isis_k);
        let mut out = Vec::new();
        for f in swept.families {
            cache.insert(CachedFamily {
                prefixes: families[f.index].clone(),
                reports: f
                    .reports
                    .iter()
                    .map(|r| CachedPrefixReport::from_report(r, &self.net.topology))
                    .collect(),
                deps: f.deps,
                cost: f.cost,
            });
            out.extend(f.reports);
        }
        out.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok((
            SweepReport {
                reports: out,
                quarantined: swept.quarantined,
                provenance,
            },
            cache,
        ))
    }

    /// Classifies every family of *this* (post-change) verifier against a
    /// baseline cache and delta: `None` means the cached reports are still
    /// valid, `Some(reason)` means the family must be re-simulated. Pure
    /// bookkeeping — no simulation runs.
    pub fn classify_families(
        &self,
        delta: &SnapshotDelta,
        cache: &FamilyCache,
        k: u32,
    ) -> Vec<(Vec<Ipv4Prefix>, Option<DirtyReason>)> {
        self.families()
            .into_iter()
            .map(|fam| {
                // Reports depend on both budgets: the sweep's `k` and the
                // `isis_k` the baseline IS-IS database was conditioned at.
                let reason = if cache.k != k || cache.isis_k != self.isis_k {
                    Some(DirtyReason::BudgetChanged)
                } else {
                    match cache.get(&fam) {
                        None => Some(DirtyReason::NotCached),
                        Some(cf) => classify_family(&fam, &cf.deps, delta),
                    }
                };
                (fam, reason)
            })
            .collect()
    }

    /// Incremental sweep: re-simulates only the families the delta dirtied
    /// and replays cached reports for the rest. The merged report list is
    /// byte-identical (modulo wall-clock timings) to a from-scratch
    /// [`Verifier::verify_all_routes`] of the post-change snapshot; the
    /// returned cache is the new baseline for the next delta.
    pub fn reverify(
        &self,
        delta: &SnapshotDelta,
        cache: &FamilyCache,
        k: u32,
        threads: usize,
    ) -> Result<ReverifyOutcome, SimError> {
        self.reverify_opts(delta, cache, k, threads, &SweepOptions::default())
    }

    /// [`Verifier::reverify`] with explicit [`SweepOptions`]. Quarantined
    /// dirty families are excluded from the refreshed cache, so the next
    /// delta re-classifies them `NotCached` and retries them.
    pub fn reverify_opts(
        &self,
        delta: &SnapshotDelta,
        cache: &FamilyCache,
        k: u32,
        threads: usize,
        opts: &SweepOptions,
    ) -> Result<ReverifyOutcome, SimError> {
        let _sp = hoyan_obs::span("verify.reverify");
        let mut classifications = self.classify_families(delta, cache, k);
        let mut reports: Vec<PrefixReport> = Vec::new();
        let mut new_cache = FamilyCache::new(k, self.isis_k);
        for (ci, (fam, reason)) in classifications.iter_mut().enumerate() {
            if reason.is_some() {
                continue;
            }
            // Clean family: replay the cached reports against the new
            // topology (node ids may have been renumbered). A hostname that
            // no longer resolves demotes the family to dirty — as does a
            // cache entry that is missing despite the clean verdict
            // (defensive: a cache pruned or drifted behind our back must
            // degrade to re-simulation, not panic the whole reverify; the
            // fault site below lets tests force that drift).
            let lookup = match hoyan_rt::fault::hit("verify.cache_lookup", ci as u64) {
                Some(_) => None,
                None => cache.get(fam),
            };
            let Some(cf) = lookup else {
                *reason = Some(DirtyReason::NotCached);
                continue;
            };
            let replayed: Option<Vec<PrefixReport>> = cf
                .reports
                .iter()
                .map(|r| r.replay(&self.net.topology))
                .collect();
            match replayed {
                Some(rs) => {
                    // Fold the family's stats into the sweep aggregate so
                    // `sweep_stats` matches a from-scratch sweep (one
                    // contribution per family, via its head report).
                    if let Some(head) = rs.iter().find(|r| r.family_head) {
                        self.sweep_stats
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .merge(&head.stats);
                    }
                    reports.extend(rs);
                    if hoyan_obs::events_enabled() {
                        // Unit ids in a reverify are classification indices;
                        // a reused family is attributed at zero cost (its
                        // BDD bill was paid by the baseline sweep).
                        hoyan_obs::record_for(ci as u64, hoyan_obs::EventKind::CacheReuse);
                        hoyan_obs::record_unit_cost(cf.cost.unit_cost(
                            ci as u64,
                            family_label(fam),
                            false,
                            true,
                        ));
                    }
                    new_cache.insert(cf.clone());
                }
                None => *reason = Some(DirtyReason::ReplayFailed),
            }
        }
        let mut dirty: Vec<Vec<Ipv4Prefix>> = Vec::new();
        let mut dirty_units: Vec<usize> = Vec::new();
        for (ci, (fam, reason)) in classifications.iter().enumerate() {
            if reason.is_some() {
                dirty.push(fam.clone());
                dirty_units.push(ci);
            }
        }
        let reused = classifications.len() - dirty.len();
        hoyan_obs::metric!(counter "verify.families_reused").add(reused as u64);
        hoyan_obs::metric!(counter "verify.families_recomputed").add(dirty.len() as u64);
        let swept = self.sweep_families(&dirty, k, threads, opts, Some(&dirty_units))?;
        for f in swept.families {
            new_cache.insert(CachedFamily {
                prefixes: dirty[f.index].clone(),
                reports: f
                    .reports
                    .iter()
                    .map(|r| CachedPrefixReport::from_report(r, &self.net.topology))
                    .collect(),
                deps: f.deps,
                cost: f.cost,
            });
            reports.extend(f.reports);
        }
        reports.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok(ReverifyOutcome {
            reports,
            cache: new_cache,
            recomputed: dirty.len(),
            reused,
            classifications,
            quarantined: swept.quarantined,
        })
    }
}

/// One family's output from a parallel sweep.
struct FamilySweep {
    /// Index into the family list handed to `sweep_families`.
    index: usize,
    /// The family's prune-stats contribution, merged into the sweep
    /// aggregate by the worker loop (not by `run_family`, so a fail-fast
    /// abort can still suppress publication).
    stats: PruneStats,
    /// Per-prefix reports, in family order (head first).
    reports: Vec<PrefixReport>,
    /// Devices and links the family's propagation touched.
    deps: FamilyDeps,
    /// The family's resource bill, read off its arena at completion.
    cost: FamilyCost,
    /// Modular-pipeline stage provenance (`None` for monolithic sweeps):
    /// [`FamilyOutcome::ProvedAbstract`] when the abstract first pass
    /// settled the family, [`FamilyOutcome::RefinedExact`] otherwise.
    provenance: Option<FamilyOutcome>,
}

/// Everything a sweep produced: the completed families plus the
/// quarantined ones (empty under fail-fast, which errors instead).
struct SweepOutcome {
    /// Completed families, sorted by index.
    families: Vec<FamilySweep>,
    /// Families that errored, breached a budget or panicked.
    quarantined: Vec<QuarantinedFamily>,
}

/// Result of an incremental [`Verifier::reverify`] sweep.
pub struct ReverifyOutcome {
    /// Merged per-prefix reports, sorted by prefix — same shape as
    /// [`Verifier::verify_all_routes`] output.
    pub reports: Vec<PrefixReport>,
    /// The refreshed cache (replayed clean families + re-simulated dirty
    /// ones), the baseline for the next delta.
    pub cache: FamilyCache,
    /// Number of families re-simulated.
    pub recomputed: usize,
    /// Number of families replayed from the cache.
    pub reused: usize,
    /// Per-family classification (`None` = clean/replayed).
    pub classifications: Vec<(Vec<Ipv4Prefix>, Option<DirtyReason>)>,
    /// Dirty families that failed to re-simulate (indexed into the dirty
    /// list; the `prefixes` field identifies the family). Not cached, so
    /// the next delta retries them.
    pub quarantined: Vec<QuarantinedFamily>,
}
