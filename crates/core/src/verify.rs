//! The user-facing verification API.
//!
//! A [`Verifier`] owns the network model built from a configuration
//! snapshot plus the conditioned IS-IS database, and answers the queries the
//! paper's operators ask: route reachability under `k` failures, packet
//! reachability, device/role equivalence, route-update racing, and
//! propagation-scope audits. Per-prefix work is independent, so
//! [`Verifier::verify_all_routes`] fans out across threads (CPU-bound work
//! on scoped threads, per the networking guides — no async runtime).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hoyan_config::{DeviceConfig, SnapshotDelta, Vendor};
use hoyan_device::{Packet, VsbProfile};
use hoyan_nettypes::{Ipv4Prefix, NodeId};

use crate::isis::IsisDb;
use crate::network::NetworkModel;
use crate::packet::packet_reach;
use crate::propagate::{PruneStats, SimError, Simulation};
use crate::racing::{racing_check, RacingReport};
use crate::snapshot::{
    classify_family, CachedFamily, CachedPrefixReport, CompiledNetwork, DirtyReason, FamilyCache,
    FamilyDeps,
};
use crate::topology::TopologyError;
use hoyan_logic::BddManager;

/// Construction failure.
#[derive(Debug)]
pub enum VerifierError {
    /// The configurations do not form a consistent topology.
    Topology(TopologyError),
    /// The IS-IS (or a route) simulation failed to converge.
    Sim(SimError),
}

impl std::fmt::Display for VerifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifierError::Topology(e) => write!(f, "topology error: {e}"),
            VerifierError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for VerifierError {}

impl From<TopologyError> for VerifierError {
    fn from(e: TopologyError) -> Self {
        VerifierError::Topology(e)
    }
}

impl From<SimError> for VerifierError {
    fn from(e: SimError) -> Self {
        VerifierError::Sim(e)
    }
}

/// Answer to a reachability query.
#[derive(Clone, Debug)]
pub struct ReachReport {
    /// Reachable with every link alive.
    pub reachable_now: bool,
    /// Minimum number of link failures that break reachability
    /// ([`hoyan_logic::bdd::INF_FAILURES`] if no failure set can).
    pub min_failures_to_break: u32,
    /// Whether reachability survives every scenario of at most `k` failures.
    pub resilient: bool,
    /// A minimal breaking failure set (link names), if one exists.
    pub witness: Option<Vec<String>>,
    /// Size of the final reachability formula (Figure 13 metric).
    pub formula_len: usize,
    /// Peak topology-condition formula size seen while the underlying
    /// simulation propagated (Figure 11 metric).
    pub max_formula_len: u64,
}

/// Result of comparing two devices for role equivalence.
#[derive(Clone, Debug)]
pub struct EquivalenceReport {
    /// Whether the two devices are equivalent.
    pub equivalent: bool,
    /// First prefix on which they diverge.
    pub first_difference: Option<Ipv4Prefix>,
}

/// Per-prefix outcome of a full-network verification sweep.
#[derive(Clone, Debug)]
pub struct PrefixReport {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Time to simulate the prefix family (Figure 8).
    pub sim_time: Duration,
    /// Time to answer the reachability queries (Figure 9).
    pub query_time: Duration,
    /// Pruning statistics (Figure 12).
    pub stats: PruneStats,
    /// Largest topology-condition formula during propagation (Figure 11).
    pub max_cond_len: usize,
    /// Largest final reachability formula (Figure 13).
    pub max_reach_formula_len: usize,
    /// Nodes that can receive a route for the prefix (all-alive).
    pub scope: Vec<NodeId>,
    /// Nodes whose reachability is *not* resilient to the queried `k`.
    pub fragile: Vec<NodeId>,
    /// Whether this report is the first of its co-simulated family (the
    /// family's stats are shared; aggregate over heads only).
    pub family_head: bool,
}

/// The configuration verifier.
pub struct Verifier {
    /// The network model under verification (shared with the
    /// [`CompiledNetwork`] it was built from).
    pub net: Arc<NetworkModel>,
    /// Conditioned IS-IS database (iBGP session conditions, IGP metrics).
    pub isis: Arc<IsisDb>,
    isis_k: Option<u32>,
    known_prefixes: Vec<Ipv4Prefix>,
    sweep_stats: std::sync::Mutex<PruneStats>,
    /// Dependency traces from *unbounded-budget* runs (role-equivalence
    /// simulations). Budgeted sweep traces are deliberately kept out: a
    /// trace at budget `k` can miss devices an unbounded run reaches.
    equiv_deps: std::sync::Mutex<std::collections::HashMap<Vec<Ipv4Prefix>, FamilyDeps>>,
}

impl Verifier {
    /// Builds a verifier from configurations. `profile` supplies the VSB
    /// profile per vendor (the *behavior model registry* — possibly flawed;
    /// the tuner's job is to fix it). `isis_k` bounds the failure budget of
    /// the IS-IS precomputation; queries must use `k <= isis_k`.
    pub fn new(
        configs: Vec<DeviceConfig>,
        profile: impl Fn(Vendor) -> VsbProfile,
        isis_k: Option<u32>,
    ) -> Result<Verifier, VerifierError> {
        Ok(Verifier::from_compiled(CompiledNetwork::build(
            configs, profile, isis_k,
        )?))
    }

    /// Wraps an already-compiled network (the model and IS-IS database are
    /// shared, not rebuilt — the point of the snapshot → compiled-network
    /// pipeline).
    pub fn from_compiled(compiled: CompiledNetwork) -> Verifier {
        let mut known = std::collections::BTreeSet::new();
        for dev in &compiled.net.devices {
            if let Some(bgp) = dev.config.bgp.as_ref() {
                known.extend(bgp.networks.iter().copied());
                known.extend(bgp.aggregates.iter().map(|a| a.prefix));
            }
            known.extend(dev.config.static_routes.iter().map(|s| s.prefix));
        }
        Verifier {
            net: compiled.net,
            isis: compiled.isis,
            isis_k: compiled.isis_k,
            known_prefixes: known.into_iter().collect(),
            sweep_stats: std::sync::Mutex::new(PruneStats::default()),
            equiv_deps: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// A cheap handle to the verifier's compiled network (two `Arc`
    /// clones); other verifiers or queries can share it.
    pub fn compiled(&self) -> CompiledNetwork {
        CompiledNetwork {
            net: Arc::clone(&self.net),
            isis: Arc::clone(&self.isis),
            isis_k: self.isis_k,
        }
    }

    /// Aggregated pruning statistics across every family simulated by
    /// [`Verifier::verify_all_routes`] so far, including the per-family
    /// stats accumulated on worker threads (one contribution per family,
    /// matching a single-threaded run).
    pub fn sweep_stats(&self) -> PruneStats {
        *self.sweep_stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// All prefixes known to the snapshot (networks, aggregates, statics).
    pub fn known_prefixes(&self) -> &[Ipv4Prefix] {
        &self.known_prefixes
    }

    /// The family of prefixes that must be co-simulated with `prefix`:
    /// the overlap closure (aggregation and longest-prefix matching couple
    /// overlapping prefixes).
    pub fn family_of(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Prefix> {
        let mut family = vec![prefix];
        loop {
            let mut grew = false;
            for q in &self.known_prefixes {
                if family.contains(q) {
                    continue;
                }
                if family.iter().any(|p| p.contains(*q) || q.contains(*p)) {
                    family.push(*q);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        family.sort();
        family
    }

    /// Groups all known prefixes into disjoint families.
    pub fn families(&self) -> Vec<Vec<Ipv4Prefix>> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for p in &self.known_prefixes {
            if seen.contains(p) {
                continue;
            }
            let fam = self.family_of(*p);
            seen.extend(fam.iter().copied());
            out.push(fam);
        }
        out
    }

    /// Runs the conditioned simulation for `prefix`'s family at failure
    /// budget `k`.
    pub fn simulate(&self, prefix: Ipv4Prefix, k: Option<u32>) -> Result<Simulation<'_>, SimError> {
        let _sp = hoyan_obs::span("verify.sim");
        let family = self.family_of(prefix);
        let mut sim = Simulation::new_bgp(&self.net, family, k, Some(&self.isis));
        sim.run()?;
        Ok(sim)
    }

    fn reach_report(
        &self,
        sim: &mut Simulation<'_>,
        node: NodeId,
        prefix: Ipv4Prefix,
        k: u32,
    ) -> ReachReport {
        let _sp = hoyan_obs::span("verify.query");
        hoyan_obs::metric!(counter "verify.queries").inc();
        let v = sim.reach_cond(node, prefix);
        let reachable_now = sim.mgr.eval(v, &[]);
        let min_failures = sim.mgr.min_failures_to_falsify(v);
        let witness = sim.mgr.min_falsifying_failures(v).map(|links| {
            links
                .iter()
                .map(|l| {
                    let (a, b) = self.net.topology.link_ends(hoyan_nettypes::LinkId(*l));
                    format!(
                        "{}-{}",
                        self.net.topology.name(a),
                        self.net.topology.name(b)
                    )
                })
                .collect()
        });
        ReachReport {
            reachable_now,
            min_failures_to_break: min_failures,
            resilient: min_failures > k,
            witness,
            formula_len: sim.mgr.size(v),
            max_formula_len: sim.stats.max_formula_len,
        }
    }

    /// Can `device` receive a route for `prefix`, and does that survive any
    /// `k` link failures? (§5.4.)
    pub fn route_reachability(
        &self,
        prefix: Ipv4Prefix,
        device: &str,
        k: u32,
    ) -> Result<ReachReport, SimError> {
        let node = self
            .net
            .topology
            .node(device)
            .unwrap_or_else(|| panic!("unknown device {device}"));
        let mut sim = self.simulate(prefix, Some(k))?;
        Ok(self.reach_report(&mut sim, node, prefix, k))
    }

    /// Can a packet from `src_device` reach the gateway of `dst_prefix`,
    /// under any `k` link failures? (§5.5.)
    pub fn packet_reachability(
        &self,
        src_device: &str,
        dst_prefix: Ipv4Prefix,
        packet: Packet,
        k: u32,
    ) -> Result<ReachReport, SimError> {
        let src = self
            .net
            .topology
            .node(src_device)
            .unwrap_or_else(|| panic!("unknown device {src_device}"));
        let mut sim = self.simulate(dst_prefix, Some(k))?;
        let walk = packet_reach(
            &mut sim,
            &self.net,
            Some(&self.isis),
            src,
            dst_prefix,
            packet,
            Some(k),
        );
        let v = walk.reach_cond;
        let reachable_now = sim.mgr.eval(v, &[]);
        let min_failures = sim.mgr.min_failures_to_falsify(v);
        let witness = sim.mgr.min_falsifying_failures(v).map(|links| {
            links
                .iter()
                .map(|l| {
                    let (a, b) = self.net.topology.link_ends(hoyan_nettypes::LinkId(*l));
                    format!(
                        "{}-{}",
                        self.net.topology.name(a),
                        self.net.topology.name(b)
                    )
                })
                .collect()
        });
        Ok(ReachReport {
            reachable_now,
            min_failures_to_break: min_failures,
            resilient: min_failures > k,
            witness,
            formula_len: sim.mgr.size(v),
            max_formula_len: sim.stats.max_formula_len,
        })
    }

    /// Role equivalence (§7.2): do two devices receive the same routes and
    /// build the same RIBs (attribute-wise) for every known prefix?
    ///
    /// Families whose propagation touched neither device cannot distinguish
    /// them (both RIBs are empty for every prefix in the family), so they
    /// are skipped when a previous *unbounded* run recorded the family's
    /// dependency trace. The cache self-primes: each simulated family's
    /// trace is recorded, so repeated equivalence checks over the same
    /// snapshot converge to simulating only the families that matter.
    pub fn role_equivalence(&self, a: &str, b: &str) -> Result<EquivalenceReport, SimError> {
        let na = self.net.topology.node(a).expect("unknown device");
        let nb = self.net.topology.node(b).expect("unknown device");
        let an = self.net.topology.name(na);
        let bn = self.net.topology.name(nb);
        for fam in self.families() {
            let skip = {
                let deps = self.equiv_deps.lock().unwrap_or_else(|p| p.into_inner());
                deps.get(&fam).is_some_and(|d| {
                    !d.touched_devices.contains(an) && !d.touched_devices.contains(bn)
                })
            };
            if skip {
                hoyan_obs::metric!(counter "verify.equiv_families_skipped").inc();
                continue;
            }
            let mut sim = Simulation::new_bgp(&self.net, fam.clone(), None, Some(&self.isis));
            sim.run()?;
            self.equiv_deps
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(
                    fam.clone(),
                    FamilyDeps::from_trace(&sim.deps, &self.net.topology),
                );
            for p in fam {
                // Equivalent roles receive the same updates with the same
                // attributes over the same kinds of sessions.
                let ra: Vec<_> = sim
                    .rib(na, p)
                    .into_iter()
                    .map(|v| (v.attrs, v.learned_from))
                    .collect();
                let rb: Vec<_> = sim
                    .rib(nb, p)
                    .into_iter()
                    .map(|v| (v.attrs, v.learned_from))
                    .collect();
                if ra != rb {
                    return Ok(EquivalenceReport {
                        equivalent: false,
                        first_difference: Some(p),
                    });
                }
            }
        }
        Ok(EquivalenceReport {
            equivalent: true,
            first_difference: None,
        })
    }

    /// Router-failure tolerance (Table 1 lists "failures of router/link"):
    /// a router failure is the simultaneous failure of all its incident
    /// links. Returns the devices whose single failure makes `prefix`
    /// unreachable at `device` — empty means the reachability survives any
    /// one router going down.
    ///
    /// Requires the verifier's IS-IS budget to cover the largest incident
    /// link count (use a generous `isis_k` when auditing router failures).
    pub fn router_failure_tolerance(
        &self,
        prefix: Ipv4Prefix,
        device: &str,
    ) -> Result<Vec<String>, SimError> {
        let node = self
            .net
            .topology
            .node(device)
            .unwrap_or_else(|| panic!("unknown device {device}"));
        // Budget must admit conditions that only hold once a whole router's
        // links are down: use the max degree.
        let max_degree = self
            .net
            .topology
            .nodes()
            .map(|n| self.net.topology.neighbors(n).len() as u32)
            .max()
            .unwrap_or(0);
        let mut sim = Simulation::new_bgp(
            &self.net,
            self.family_of(prefix),
            Some(max_degree),
            Some(&self.isis),
        );
        sim.run()?;
        let v = sim.reach_cond(node, prefix);
        let mut fatal = Vec::new();
        for r in self.net.topology.nodes() {
            if r == node {
                continue; // the target going down is out of scope
            }
            // Gateways of the prefix going down trivially break it; still
            // report them (common-mode risk the §7.2 audit cares about).
            let mut assign = vec![true; self.net.topology.link_count()];
            for (_, link) in self.net.topology.neighbors(r) {
                assign[link.0 as usize] = false;
            }
            if !sim.mgr.eval(v, &assign) {
                fatal.push(self.net.topology.name(r).to_string());
            }
        }
        Ok(fatal)
    }

    /// Route-update racing analysis for one prefix (Appendix B).
    pub fn racing(&self, prefix: Ipv4Prefix) -> RacingReport {
        racing_check(&self.net, prefix, 2)
    }

    /// Which devices hold a route for `prefix` with all links alive — the
    /// propagation-scope audit behind the §7.2 IP-conflict case.
    pub fn propagation_scope(&self, prefix: Ipv4Prefix) -> Result<Vec<NodeId>, SimError> {
        let mut sim = self.simulate(prefix, Some(0))?;
        let nodes: Vec<NodeId> = self.net.topology.nodes().collect();
        Ok(nodes
            .into_iter()
            .filter(|n| {
                let v = sim.reach_cond(*n, prefix);
                sim.mgr.eval(v, &[])
            })
            .collect())
    }

    /// Simulates the given prefix families at budget `k` on `threads` scoped
    /// `std::thread`s (CPU-bound work, no async runtime) and returns each
    /// family's reports plus the dependency trace its propagation recorded.
    /// Results come back ordered by family index, so callers see the same
    /// sequence for any thread count.
    ///
    /// Determinism: a family's reports are pushed atomically (all or
    /// nothing), a failed worker flips `failed` *before* publishing its
    /// error so peers stop claiming and publishing, and the final list is
    /// sorted by family index — so the output is identical for any thread
    /// count (see `tests/determinism.rs`).
    fn sweep_families(
        &self,
        families: &[Vec<Ipv4Prefix>],
        k: u32,
        threads: usize,
    ) -> Result<Vec<FamilySweep>, SimError> {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let _sweep = hoyan_obs::span("verify.sweep");
        // Fan-out occupancy: thread-count-dependent by nature, so a gauge
        // (the determinism contract covers counters/histograms only).
        hoyan_obs::metric!(gauge "verify.fanout_threads").record_max(threads.max(1) as u64);
        hoyan_obs::metric!(gauge "verify.fanout_families").record_max(families.len() as u64);
        let results = std::sync::Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let error = std::sync::Mutex::new(None::<SimError>);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    s.spawn(|| {
                        // One warm BDD arena per worker, recycled between
                        // families: node/table allocations survive, handles
                        // and tallies do not (each family still accounts —
                        // and collects — as if it owned a fresh manager, so
                        // counters stay identical at any thread count).
                        let mut arena = BddManager::new();
                        loop {
                            if failed.load(Ordering::Acquire) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= families.len() {
                                break;
                            }
                            let fam = &families[i];
                            let _fam_span = hoyan_obs::span("verify.family");
                            let t0 = Instant::now();
                            let sim_span = hoyan_obs::span("verify.sim");
                            let mut sim = Simulation::new_bgp_in(
                                std::mem::take(&mut arena),
                                &self.net,
                                fam.clone(),
                                Some(k),
                                Some(&self.isis),
                            );
                            if let Err(e) = sim.run() {
                                // Keep the first error; later ones lose the race
                                // but every worker still stops promptly.
                                error
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .get_or_insert(e);
                                failed.store(true, Ordering::Release);
                                break;
                            }
                            drop(sim_span);
                            let sim_time = t0.elapsed();
                            let mut family_reports = Vec::with_capacity(fam.len());
                            for (pi, p) in fam.iter().enumerate() {
                                let _q_span = hoyan_obs::span("verify.query");
                                let q0 = Instant::now();
                                let mut scope_nodes = Vec::new();
                                let mut fragile = Vec::new();
                                let mut max_len = 0usize;
                                for n in self.net.topology.nodes() {
                                    let v = sim.reach_cond(n, *p);
                                    if v.is_false() {
                                        continue;
                                    }
                                    if sim.mgr.eval(v, &[]) {
                                        scope_nodes.push(n);
                                        let exact = sim.reach_cond_exact(n, *p);
                                        max_len = max_len.max(sim.mgr.size(exact));
                                        if sim.mgr.min_failures_to_falsify(v) <= k {
                                            fragile.push(n);
                                        }
                                    }
                                }
                                family_reports.push(PrefixReport {
                                    prefix: *p,
                                    sim_time,
                                    query_time: q0.elapsed(),
                                    stats: sim.stats,
                                    max_cond_len: sim.max_cond_size,
                                    max_reach_formula_len: max_len,
                                    scope: scope_nodes,
                                    fragile,
                                    family_head: pi == 0,
                                });
                            }
                            // Re-check *after* the family's work: a peer may have
                            // errored while we were simulating, and partial
                            // output must not be published past that point.
                            if failed.load(Ordering::Acquire) {
                                break;
                            }
                            // Worker-thread prune stats previously died with the
                            // sim here; fold each family's into the verifier-wide
                            // aggregate (one contribution per family, matching a
                            // single-threaded run).
                            self.sweep_stats
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .merge(&sim.stats);
                            hoyan_obs::metric!(counter "verify.families").inc();
                            hoyan_obs::metric!(counter "verify.prefixes").add(fam.len() as u64);
                            results
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .push(FamilySweep {
                                    index: i,
                                    reports: family_reports,
                                    deps: FamilyDeps::from_trace(&sim.deps, &self.net.topology),
                                });
                            // Reclaim the arena for the next family. Recycle
                            // flushes this family's tallies exactly like the
                            // Drop on the error paths would.
                            arena = sim.into_mgr();
                            arena.recycle();
                        }
                    })
                })
                .collect();
            // Join explicitly and re-raise the first worker panic with its
            // original payload (assert messages survive intact).
            let mut panic_payload = None;
            for h in handles {
                if let Err(p) = h.join() {
                    panic_payload.get_or_insert(p);
                }
            }
            if let Some(p) = panic_payload {
                std::panic::resume_unwind(p);
            }
        });
        if let Some(e) = error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        let mut out = results.into_inner().unwrap_or_else(|p| p.into_inner());
        out.sort_by_key(|f| f.index);
        Ok(out)
    }

    /// Publishes the sweep-wide gauges from the aggregate prune stats.
    fn flush_sweep_gauges(&self) {
        let agg = self.sweep_stats();
        hoyan_obs::metric!(gauge "verify.sweep_delivered").set(agg.delivered);
        hoyan_obs::metric!(gauge "verify.sweep_dropped")
            .set(agg.dropped_policy + agg.dropped_over_k + agg.dropped_impossible);
        hoyan_obs::metric!(gauge "verify.sweep_max_formula_len").record_max(agg.max_formula_len);
    }

    /// Full-network route-reachability sweep: simulates every prefix family
    /// at budget `k` and reports per-prefix timings, statistics and fragile
    /// devices. Families are processed in parallel on `threads` scoped
    /// threads; output is sorted by prefix and identical for any thread
    /// count (see `tests/determinism.rs`).
    pub fn verify_all_routes(&self, k: u32, threads: usize) -> Result<Vec<PrefixReport>, SimError> {
        let families = self.families();
        let swept = self.sweep_families(&families, k, threads)?;
        let mut out: Vec<PrefixReport> = swept.into_iter().flat_map(|f| f.reports).collect();
        out.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok(out)
    }

    /// Like [`Verifier::verify_all_routes`], but also returns a
    /// [`FamilyCache`] mapping every simulated family to its reports and the
    /// dependency trace recorded during propagation — the baseline for
    /// [`Verifier::reverify`].
    pub fn verify_all_routes_cached(
        &self,
        k: u32,
        threads: usize,
    ) -> Result<(Vec<PrefixReport>, FamilyCache), SimError> {
        let families = self.families();
        let swept = self.sweep_families(&families, k, threads)?;
        let mut cache = FamilyCache::new(k, self.isis_k);
        let mut out = Vec::new();
        for f in swept {
            cache.insert(CachedFamily {
                prefixes: families[f.index].clone(),
                reports: f
                    .reports
                    .iter()
                    .map(|r| CachedPrefixReport::from_report(r, &self.net.topology))
                    .collect(),
                deps: f.deps,
            });
            out.extend(f.reports);
        }
        out.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok((out, cache))
    }

    /// Classifies every family of *this* (post-change) verifier against a
    /// baseline cache and delta: `None` means the cached reports are still
    /// valid, `Some(reason)` means the family must be re-simulated. Pure
    /// bookkeeping — no simulation runs.
    pub fn classify_families(
        &self,
        delta: &SnapshotDelta,
        cache: &FamilyCache,
        k: u32,
    ) -> Vec<(Vec<Ipv4Prefix>, Option<DirtyReason>)> {
        self.families()
            .into_iter()
            .map(|fam| {
                // Reports depend on both budgets: the sweep's `k` and the
                // `isis_k` the baseline IS-IS database was conditioned at.
                let reason = if cache.k != k || cache.isis_k != self.isis_k {
                    Some(DirtyReason::BudgetChanged)
                } else {
                    match cache.get(&fam) {
                        None => Some(DirtyReason::NotCached),
                        Some(cf) => classify_family(&fam, &cf.deps, delta),
                    }
                };
                (fam, reason)
            })
            .collect()
    }

    /// Incremental sweep: re-simulates only the families the delta dirtied
    /// and replays cached reports for the rest. The merged report list is
    /// byte-identical (modulo wall-clock timings) to a from-scratch
    /// [`Verifier::verify_all_routes`] of the post-change snapshot; the
    /// returned cache is the new baseline for the next delta.
    pub fn reverify(
        &self,
        delta: &SnapshotDelta,
        cache: &FamilyCache,
        k: u32,
        threads: usize,
    ) -> Result<ReverifyOutcome, SimError> {
        let _sp = hoyan_obs::span("verify.reverify");
        let mut classifications = self.classify_families(delta, cache, k);
        let mut reports: Vec<PrefixReport> = Vec::new();
        let mut new_cache = FamilyCache::new(k, self.isis_k);
        for (fam, reason) in classifications.iter_mut() {
            if reason.is_some() {
                continue;
            }
            // Clean family: replay the cached reports against the new
            // topology (node ids may have been renumbered). A hostname that
            // no longer resolves demotes the family to dirty.
            let cf = cache.get(fam).expect("clean family must be cached");
            let replayed: Option<Vec<PrefixReport>> = cf
                .reports
                .iter()
                .map(|r| r.replay(&self.net.topology))
                .collect();
            match replayed {
                Some(rs) => {
                    // Fold the family's stats into the sweep aggregate so
                    // `sweep_stats` matches a from-scratch sweep (one
                    // contribution per family, via its head report).
                    if let Some(head) = rs.iter().find(|r| r.family_head) {
                        self.sweep_stats
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .merge(&head.stats);
                    }
                    reports.extend(rs);
                    new_cache.insert(cf.clone());
                }
                None => *reason = Some(DirtyReason::ReplayFailed),
            }
        }
        let dirty: Vec<Vec<Ipv4Prefix>> = classifications
            .iter()
            .filter(|(_, r)| r.is_some())
            .map(|(f, _)| f.clone())
            .collect();
        let reused = classifications.len() - dirty.len();
        hoyan_obs::metric!(counter "verify.families_reused").add(reused as u64);
        hoyan_obs::metric!(counter "verify.families_recomputed").add(dirty.len() as u64);
        let swept = self.sweep_families(&dirty, k, threads)?;
        for f in swept {
            new_cache.insert(CachedFamily {
                prefixes: dirty[f.index].clone(),
                reports: f
                    .reports
                    .iter()
                    .map(|r| CachedPrefixReport::from_report(r, &self.net.topology))
                    .collect(),
                deps: f.deps,
            });
            reports.extend(f.reports);
        }
        reports.sort_by_key(|r| r.prefix);
        self.flush_sweep_gauges();
        Ok(ReverifyOutcome {
            reports,
            cache: new_cache,
            recomputed: dirty.len(),
            reused,
            classifications,
        })
    }
}

/// One family's output from a parallel sweep.
struct FamilySweep {
    /// Index into the family list handed to `sweep_families`.
    index: usize,
    /// Per-prefix reports, in family order (head first).
    reports: Vec<PrefixReport>,
    /// Devices and links the family's propagation touched.
    deps: FamilyDeps,
}

/// Result of an incremental [`Verifier::reverify`] sweep.
pub struct ReverifyOutcome {
    /// Merged per-prefix reports, sorted by prefix — same shape as
    /// [`Verifier::verify_all_routes`] output.
    pub reports: Vec<PrefixReport>,
    /// The refreshed cache (replayed clean families + re-simulated dirty
    /// ones), the baseline for the next delta.
    pub cache: FamilyCache,
    /// Number of families re-simulated.
    pub recomputed: usize,
    /// Number of families replayed from the cache.
    pub reused: usize,
    /// Per-family classification (`None` = clean/replayed).
    pub classifications: Vec<(Vec<Ipv4Prefix>, Option<DirtyReason>)>,
}
