//! The conditioned route-propagation engine — "global simulation & local
//! formal modeling" (§5).
//!
//! One [`Simulation`] simulates a *family* of related prefixes (prefixes
//! coupled by aggregation, or all router loopbacks when running IS-IS in
//! path-vector mode, Appendix C). Every route update and RIB rule carries a
//! topology condition: a BDD over link-aliveness variables.
//!
//! ## Relation to Algorithm 1
//!
//! The paper processes a queue of route messages and handles "late higher
//! priority routes" with an explicit `withdraw()` cascade over the
//! propagation tree. This implementation computes the same fixpoint with a
//! *dirty-node worklist*: whenever a node's RIB changes, the node is
//! reprocessed — its desired outgoing message set (one message per RIB rule
//! and session, with the rule's is-best condition
//! `¬R(r₁) ∧ … ∧ ¬R(rᵢ₋₁) ∧ R(rᵢ)`, §5.4 rule (i)) is recomputed and
//! *diffed* against what was previously sent. Retracting a message removes
//! the RIB entry it created at the receiver, which dirties the receiver and
//! cascades exactly like `withdraw()`; re-sent messages carry the amended
//! conditions. The fixpoint is reached when no node is dirty.
//!
//! ## Pruning (§5.6)
//!
//! Three optimizations are applied to every attempted message emission, with
//! counters that regenerate Figure 12:
//! - **policy**: ingress/egress policy denies, loop checks, advertisement
//!   rules;
//! - **impossible**: the condition is the constant `false` BDD;
//! - **more-than-k**: every satisfying assignment of the condition needs
//!   more than `k` link failures ([`BddManager::min_failures_to_satisfy`]).

use std::collections::{HashMap, VecDeque};

use hoyan_config::RedistSource;
use hoyan_device::{Candidate, LearnedFrom, SessionKind};
use hoyan_logic::{Bdd, BddManager};
use hoyan_nettypes::{Ipv4Prefix, LinkId, NodeId, Origin, RouteAttrs};

use crate::isis::IsisDb;
use crate::network::NetworkModel;

/// Conventional weight of locally originated routes.
pub const LOCAL_WEIGHT: u32 = 32768;

/// Which protocol created a RIB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Proto {
    /// BGP (eBGP or iBGP).
    Bgp,
    /// IS-IS (path-vector translation).
    Isis,
    /// A BGP aggregate generated on this device.
    Aggregate,
}

/// Per-category message-drop counters (Figure 12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Messages delivered into a RIB ("Remain").
    pub delivered: u64,
    /// Dropped by ingress/egress policies, loop checks or advertisement
    /// rules ("Policy").
    pub dropped_policy: u64,
    /// Dropped because the condition needs more than `k` failures.
    pub dropped_over_k: u64,
    /// Dropped because the condition is unsatisfiable ("Impossible").
    pub dropped_impossible: u64,
    /// Peak topology-condition formula size (BDD nodes) observed while
    /// propagating — the Figure 11 "largest formula during simulation"
    /// metric, as opposed to the final reachability formula length.
    pub max_formula_len: u64,
}

impl PruneStats {
    /// Total attempted emissions.
    pub fn total(&self) -> u64 {
        self.delivered + self.dropped_policy + self.dropped_over_k + self.dropped_impossible
    }

    /// Folds another run's stats into this one (counters add, peaks max).
    pub fn merge(&mut self, other: &PruneStats) {
        self.delivered += other.delivered;
        self.dropped_policy += other.dropped_policy;
        self.dropped_over_k += other.dropped_over_k;
        self.dropped_impossible += other.dropped_impossible;
        self.max_formula_len = self.max_formula_len.max(other.max_formula_len);
    }
}

/// The dependency trace of a simulation: which devices and links its
/// propagation touched. Recorded on the producer side ([`Simulation`]
/// fills it during `seed`/`deliver`/`emit`), consumed by the incremental
/// verifier's dirty rules (`crate::snapshot`): a configuration change on a
/// device no family ever touched cannot alter that family's fixpoint.
///
/// The sets are over-approximations of influence *at the simulated failure
/// budget `k`*: a larger budget can route messages through devices this
/// trace never saw, so traces must only be reused at the budget they were
/// recorded at.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepTrace {
    /// Nodes that seeded a local entry (origin announcements, statics via
    /// redistribution).
    pub origin_nodes: std::collections::BTreeSet<u32>,
    /// Every node that participated: seeded an entry, sent a message, or
    /// was offered one (counted even when ingress dropped it — the
    /// receiver's config decided the drop).
    pub touched_nodes: std::collections::BTreeSet<u32>,
    /// Links that carried (or conditioned) an emitted message.
    pub touched_links: std::collections::BTreeSet<u32>,
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The propagation did not converge (policy-induced oscillation).
    NonConvergence,
    /// A query named a device that does not exist in the snapshot.
    UnknownDevice(String),
    /// The family exhausted its deterministic BDD resource budget
    /// (see [`Simulation::set_budget`]).
    OverBudget(hoyan_logic::BudgetBreach),
    /// The family's opt-in wall-clock deadline elapsed. Unlike
    /// [`SimError::OverBudget`], this outcome is **non-deterministic** —
    /// it depends on machine load — which is why deadlines are off by
    /// default.
    DeadlineExceeded {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// A fault injected by the seeded `hoyan_rt::fault` harness.
    Injected {
        /// The injection-site key.
        site: &'static str,
        /// The index the site fired at.
        index: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NonConvergence => write!(f, "route propagation did not converge"),
            SimError::UnknownDevice(d) => {
                write!(f, "unknown device `{d}`: no such hostname in the snapshot")
            }
            SimError::OverBudget(b) => write!(f, "family exceeded its resource budget: {b}"),
            SimError::DeadlineExceeded { limit_ms } => {
                write!(f, "family exceeded its wall-clock deadline of {limit_ms} ms")
            }
            SimError::Injected { site, index } => {
                write!(f, "injected fault at {site}[{index}]")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A RIB entry with its topology condition.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Stable identity (message diffing key).
    pub id: u64,
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Attributes as stored in the RIB (after ingress processing).
    pub attrs: RouteAttrs,
    /// The ingress topology condition `R(r)`.
    pub cond: Bdd,
    /// How the route was learned.
    pub learned_from: LearnedFrom,
    /// The advertising peer (None for local entries).
    pub from_node: Option<NodeId>,
    /// The BGP next hop (None = this device is the gateway).
    pub next_hop: Option<NodeId>,
    /// IGP metric to the next hop (all links alive), for selection step 8.
    pub igp_metric: u64,
    /// Advertising peer's router id, for the final tie-break.
    pub peer_router_id: u32,
    /// iBGP reflection hops taken (cluster-list-length proxy).
    pub ibgp_hops: u32,
    /// The protocol that produced the entry.
    pub proto: Proto,
    /// Devices the route has traversed (loop prevention).
    pub path: Vec<NodeId>,
}

impl Entry {
    fn candidate(&self) -> Candidate {
        Candidate {
            attrs: self.attrs.clone(),
            from_ebgp: matches!(self.learned_from, LearnedFrom::Ebgp | LearnedFrom::Local),
            igp_metric: self.igp_metric,
            ibgp_hops: self.ibgp_hops,
            peer_router_id: self.peer_router_id,
        }
    }
}

/// A read-only view of a RIB rule with its *effective* condition
/// (aggregation suppression applied).
#[derive(Clone, Debug)]
pub struct RibView {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Attributes.
    pub attrs: RouteAttrs,
    /// Effective topology condition.
    pub cond: Bdd,
    /// Advertising peer.
    pub from_node: Option<NodeId>,
    /// BGP next hop.
    pub next_hop: Option<NodeId>,
    /// Producing protocol.
    pub proto: Proto,
    /// How the route was learned.
    pub learned_from: LearnedFrom,
    /// Rank in the RIB (0 = best).
    pub rank: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ChannelKind {
    Ebgp(usize),
    Ibgp(usize),
    Igp,
}

#[derive(Clone, Debug)]
struct Channel {
    peer: NodeId,
    link: Option<LinkId>,
    kind: ChannelKind,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
struct MsgKey {
    from: u32,
    channel: u32,
    entry: u64,
}

type DesiredMsg = (
    Bdd,
    RouteAttrs,
    Option<NodeId>,
    Ipv4Prefix,
    Vec<NodeId>,
    u32,
);

#[derive(Clone, Debug)]
struct SentMsg {
    cond: Bdd,
    attrs: RouteAttrs,
    next_hop: Option<NodeId>,
    receiver: NodeId,
    prefix: Ipv4Prefix,
    path: Vec<NodeId>,
    ibgp_hops: u32,
    receiver_entry: Option<u64>,
}

/// Mode of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// BGP over the session graph (with iBGP conditions from IS-IS).
    Bgp,
    /// IS-IS as a path-vector protocol over IGP adjacencies (Appendix C).
    Igp,
}

/// The read-only arena of conditions every family of a sweep shares: the
/// per-link aliveness literals (`var`/`nvar`, pre-interned under the
/// model's variable order) and the iBGP session conditions derived from
/// IS-IS. Built **once per sweep**, then imported into each worker's warm
/// arena as a permanent base segment ([`hoyan_logic::BddManager::import_base`])
/// that survives [`hoyan_logic::BddManager::recycle`] — so per-family
/// construction stops re-deriving the same nodes, and in particular stops
/// re-importing session conditions from the IS-IS database family after
/// family.
pub struct SharedBase {
    mgr: BddManager,
    /// Import roots: `2 * link_count` literals (vars then nvars, by link
    /// id), then one session condition per `session_keys` entry.
    roots: Vec<Bdd>,
    /// Normalized `(min, max)` node pairs, aligned with the session-root
    /// tail of `roots`.
    session_keys: Vec<(u32, u32)>,
    n_links: usize,
}

impl SharedBase {
    /// Builds the base arena for `net`: link literals always, plus the
    /// session condition of every iBGP session pair when `isis` is given.
    /// Bumps `isis.conditioned_sessions` once per pair (the per-sweep cost
    /// the per-family `bdd.shared_imports` hits amortize).
    pub fn build(net: &NetworkModel, isis: Option<&IsisDb>) -> SharedBase {
        let _sp = hoyan_obs::span("verify.shared_base");
        let mut mgr = BddManager::new();
        let n = net.topology.link_count();
        let mut roots = Vec::with_capacity(2 * n);
        for l in 0..n as u32 {
            roots.push(mgr.var(net.link_var(LinkId(l))));
        }
        for l in 0..n as u32 {
            roots.push(mgr.nvar(net.link_var(LinkId(l))));
        }
        let mut session_keys = Vec::new();
        if let Some(db) = isis {
            let mut keys = std::collections::BTreeSet::new();
            for u in net.topology.nodes() {
                for s in net.sessions_of(u) {
                    if s.kind == SessionKind::Ibgp {
                        keys.insert(if u.0 < s.peer.0 {
                            (u.0, s.peer.0)
                        } else {
                            (s.peer.0, u.0)
                        });
                    }
                }
            }
            for (u, v) in keys {
                hoyan_obs::metric!(counter "isis.conditioned_sessions").inc();
                let fwd = db.reach_cond(NodeId(u), NodeId(v));
                let back = db.reach_cond(NodeId(v), NodeId(u));
                let fwd = mgr.import(&db.mgr, fwd);
                let back = mgr.import(&db.mgr, back);
                roots.push(mgr.and(fwd, back));
                session_keys.push((u, v));
            }
        }
        hoyan_obs::metric!(gauge "bdd.shared_base_nodes").record_max(mgr.node_count() as u64);
        SharedBase {
            mgr,
            roots,
            session_keys,
            n_links: n,
        }
    }

    /// BDD solver steps [`SharedBase::build`] burned constructing the base
    /// arena — the sweep reports this separately so the per-family op
    /// attribution plus this value reconciles with the global `bdd.ops`
    /// counter (the base manager's tallies flush when the base drops at
    /// sweep end).
    pub fn construction_ops(&self) -> u64 {
        self.mgr.ops
    }

    /// Imports the base into `arena` as its permanent segment and returns
    /// the handle map simulations in that arena use. Attach **once per
    /// worker arena** — the segment survives `recycle()`, and the returned
    /// handles stay valid for every family the arena subsequently runs.
    pub fn attach(&self, arena: &mut BddManager) -> AttachedBase {
        let handles = arena.import_base(&self.mgr, &self.roots);
        let sessions = self
            .session_keys
            .iter()
            .enumerate()
            .map(|(i, &key)| (key, handles[2 * self.n_links + i]))
            .collect();
        AttachedBase { sessions }
    }
}

/// The per-arena face of a [`SharedBase`]: handles valid in one worker's
/// arena (and across every family that arena runs, since base slots
/// survive `recycle()`). Cheap to clone per family.
#[derive(Clone, Debug, Default)]
pub struct AttachedBase {
    /// Session condition per normalized iBGP pair.
    sessions: HashMap<(u32, u32), Bdd>,
}

impl AttachedBase {
    /// The shared-base condition of a normalized `(min, max)` iBGP pair,
    /// if the base conditioned it — the abstract pass reads session
    /// conditions from here so both pipeline stages price the same BDDs.
    pub(crate) fn session(&self, key: (u32, u32)) -> Option<Bdd> {
        self.sessions.get(&key).copied()
    }
}

/// A conditioned simulation of one prefix family.
pub struct Simulation<'n> {
    net: &'n NetworkModel,
    /// The BDD manager owning all conditions of this simulation.
    pub mgr: BddManager,
    mode: Mode,
    k: Option<u32>,
    prefixes: Vec<Ipv4Prefix>,
    channels: Vec<Vec<Channel>>,
    ribs: HashMap<(u32, Ipv4Prefix), Vec<Entry>>,
    sent: HashMap<(u32, Ipv4Prefix), HashMap<MsgKey, SentMsg>>,
    dirty: VecDeque<(u32, Ipv4Prefix)>,
    in_dirty: std::collections::HashSet<(u32, Ipv4Prefix)>,
    next_entry_id: u64,
    agg_entry_ids: HashMap<(u32, Ipv4Prefix), u64>,
    session_conds: HashMap<(u32, u32), Bdd>,
    /// Handles into the arena's shared base segment (empty unless
    /// [`Simulation::set_base`] attached one).
    base: AttachedBase,
    igp_dist: Vec<Vec<Option<u64>>>,
    isis_db: Option<&'n IsisDb>,
    /// Opt-in wall-clock deadline: the cutoff instant plus the configured
    /// limit (for the error message). See [`Self::set_budget`].
    deadline: Option<(std::time::Instant, u64)>,
    /// Drop/delivery counters.
    pub stats: PruneStats,
    /// Largest condition (BDD node count) seen on any message or rule —
    /// the Figure 11 metric.
    pub max_cond_size: usize,
    /// Devices and links this simulation's propagation touched (the
    /// dependency index of the incremental pipeline).
    pub deps: DepTrace,
}

impl<'n> Simulation<'n> {
    /// A BGP simulation of `prefixes` under failure budget `k`
    /// (`None` = unbounded). `isis` supplies iBGP session conditions and
    /// IGP metrics; without it, iBGP sessions are assumed always-up.
    pub fn new_bgp(
        net: &'n NetworkModel,
        prefixes: Vec<Ipv4Prefix>,
        k: Option<u32>,
        isis: Option<&'n IsisDb>,
    ) -> Self {
        Self::new_bgp_in(BddManager::new(), net, prefixes, k, isis)
    }

    /// Like [`Self::new_bgp`], but building conditions in a caller-supplied
    /// manager — typically a [`BddManager::recycle`]d arena from a previous
    /// family, so verifier workers keep one warm arena instead of
    /// reallocating tables per prefix family. The manager must be fresh or
    /// recycled (the simulation assumes it owns every node).
    pub fn new_bgp_in(
        mgr: BddManager,
        net: &'n NetworkModel,
        prefixes: Vec<Ipv4Prefix>,
        k: Option<u32>,
        isis: Option<&'n IsisDb>,
    ) -> Self {
        let channels = (0..net.topology.node_count() as u32)
            .map(|i| {
                net.sessions_of(NodeId(i))
                    .iter()
                    .map(|s| Channel {
                        peer: s.peer,
                        link: s.link,
                        kind: match s.kind {
                            SessionKind::Ebgp => ChannelKind::Ebgp(s.neighbor_idx),
                            SessionKind::Ibgp => ChannelKind::Ibgp(s.neighbor_idx),
                        },
                    })
                    .collect()
            })
            .collect();
        Self::new_inner(mgr, net, prefixes, k, Mode::Bgp, channels, isis)
    }

    /// An IS-IS path-vector simulation over all router loopbacks.
    pub fn new_igp(net: &'n NetworkModel, k: Option<u32>) -> Self {
        let dests: Vec<NodeId> = net.topology.nodes().filter(|n| net.runs_isis(*n)).collect();
        Self::new_igp_for(net, k, &dests)
    }

    /// An IS-IS path-vector simulation restricted to the loopbacks of
    /// `dests` (per-destination simulations are independent, so
    /// [`crate::isis::IsisDb`] fans them out across threads exactly like
    /// per-prefix BGP simulations).
    pub fn new_igp_for(net: &'n NetworkModel, k: Option<u32>, dests: &[NodeId]) -> Self {
        let prefixes = dests
            .iter()
            .filter(|n| net.runs_isis(**n))
            .map(|n| net.topology.loopback(*n))
            .collect();
        let channels = (0..net.topology.node_count() as u32)
            .map(|i| {
                let n = NodeId(i);
                net.topology
                    .neighbors(n)
                    .iter()
                    .filter(|(peer, _)| net.isis_adjacency(n, *peer))
                    .map(|(peer, link)| Channel {
                        peer: *peer,
                        link: Some(*link),
                        kind: ChannelKind::Igp,
                    })
                    .collect()
            })
            .collect();
        Self::new_inner(
            BddManager::new(),
            net,
            prefixes,
            k,
            Mode::Igp,
            channels,
            None,
        )
    }

    fn new_inner(
        mgr: BddManager,
        net: &'n NetworkModel,
        prefixes: Vec<Ipv4Prefix>,
        k: Option<u32>,
        mode: Mode,
        channels: Vec<Vec<Channel>>,
        isis_db: Option<&'n IsisDb>,
    ) -> Self {
        let n = net.topology.node_count();
        let igp_dist = if mode == Mode::Bgp {
            (0..n)
                .map(|i| net.igp_distances(NodeId(i as u32)))
                .collect()
        } else {
            Vec::new()
        };
        Simulation {
            net,
            mgr,
            mode,
            k,
            prefixes,
            channels,
            ribs: HashMap::new(),
            sent: HashMap::new(),
            dirty: VecDeque::new(),
            in_dirty: std::collections::HashSet::new(),
            next_entry_id: 0,
            agg_entry_ids: HashMap::new(),
            session_conds: HashMap::new(),
            base: AttachedBase::default(),
            igp_dist,
            isis_db,
            deadline: None,
            stats: PruneStats::default(),
            max_cond_size: 0,
            deps: DepTrace::default(),
        }
    }

    /// The simulated prefixes.
    pub fn prefixes(&self) -> &[Ipv4Prefix] {
        &self.prefixes
    }

    /// Consumes the simulation, keeping only the BDD manager. Used when the
    /// extracted conditions outlive the simulation (as in [`crate::isis`]),
    /// and — critically for the fault-tolerant sweep — to recover a worker's
    /// warm arena from a *failed* simulation: the arena moved into the
    /// `Simulation` at construction, so without this hand-back an error
    /// would silently degrade the worker to cold arenas.
    pub fn into_manager(self) -> BddManager {
        self.mgr
    }

    /// Alias of [`Self::into_manager`] (the original name).
    pub fn into_mgr(self) -> BddManager {
        self.into_manager()
    }

    /// Attaches the handle map of a [`SharedBase`] previously imported into
    /// this simulation's manager ([`SharedBase::attach`]). The handles MUST
    /// come from an attach against the same arena — base handles are plain
    /// slot indices and only mean anything in the arena they were imported
    /// into.
    pub fn set_base(&mut self, base: AttachedBase) {
        self.base = base;
    }

    /// Installs a per-family resource budget: deterministic BDD caps
    /// (checked at the worklist safe point, next to the GC check) and an
    /// optional wall-clock deadline measured from now. The caps produce
    /// [`SimError::OverBudget`] at the same worklist step on any machine;
    /// the deadline produces [`SimError::DeadlineExceeded`] and is
    /// **non-deterministic** by nature (opt-in only).
    pub fn set_budget(&mut self, budget: hoyan_logic::BddBudget, deadline_ms: Option<u64>) {
        self.mgr.set_budget(budget);
        self.deadline = deadline_ms.map(|ms| {
            (
                std::time::Instant::now() + std::time::Duration::from_millis(ms),
                ms,
            )
        });
    }

    /// All route updates currently in flight: `(from, to, prefix, attrs,
    /// condition)`. The behavior-model tuner compares these against the
    /// oracle's updates to localize VSBs *between* devices (§6's use of BGP
    /// monitoring beyond ext-RIBs).
    pub fn updates(&self) -> Vec<(NodeId, NodeId, Ipv4Prefix, RouteAttrs, Bdd)> {
        self.sent
            .iter()
            .flat_map(|((from, _prefix), msgs)| {
                msgs.values()
                    .map(|m| (NodeId(*from), m.receiver, m.prefix, m.attrs.clone(), m.cond))
            })
            .collect()
    }

    fn fresh_entry_id(&mut self) -> u64 {
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        id
    }

    /// Marks `(node, prefix)` for reprocessing. Aggregation couples
    /// prefixes: a change to a contributor also dirties the covering
    /// aggregate and its siblings (their suppression conditions depend on
    /// the trigger).
    fn mark_dirty(&mut self, n: NodeId, prefix: Ipv4Prefix) {
        if self.in_dirty.insert((n.0, prefix)) {
            self.dirty.push_back((n.0, prefix));
        }
        if self.mode != Mode::Bgp {
            return;
        }
        let Some(bgp) = self.net.device(n).config.bgp.as_ref() else {
            return;
        };
        let coupled: Vec<Ipv4Prefix> = bgp
            .aggregates
            .iter()
            .filter(|a| a.prefix != prefix && a.prefix.contains(prefix))
            .flat_map(|a| {
                let mut v = vec![a.prefix];
                v.extend(
                    self.prefixes
                        .iter()
                        .copied()
                        .filter(|q| *q != prefix && *q != a.prefix && a.prefix.contains(*q)),
                );
                v
            })
            .collect();
        for q in coupled {
            if self.in_dirty.insert((n.0, q)) {
                self.dirty.push_back((n.0, q));
            }
        }
    }

    fn note_cond(&mut self, cond: Bdd) {
        let size = self.mgr.size(cond);
        if size > self.max_cond_size {
            self.max_cond_size = size;
        }
        if size as u64 > self.stats.max_formula_len {
            self.stats.max_formula_len = size as u64;
        }
    }

    /// Seeds origin routes and runs the propagation to fixpoint.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.seed();
        let cap = 500usize * self.net.topology.node_count().max(1) * self.prefixes.len().max(1);
        let debug = std::env::var_os("HOYAN_SIM_DEBUG").is_some();
        let mut steps = 0usize;
        while let Some((u, prefix)) = self.dirty.pop_front() {
            self.maybe_gc();
            // Budget safe point, shared with GC: the caps count work, not
            // time, so a breach lands on the same worklist step at any
            // thread count (the quarantine determinism contract).
            if let Some(breach) = self.mgr.budget_exceeded() {
                self.flush_metrics(steps);
                hoyan_obs::record(hoyan_obs::EventKind::BudgetBreach);
                return Err(SimError::OverBudget(breach));
            }
            // The opt-in wall-clock guard, sampled every 64 steps to keep
            // `Instant::now` off the hot path. Non-deterministic by nature.
            if let Some((cutoff, limit_ms)) = self.deadline {
                if steps % 64 == 0 && std::time::Instant::now() >= cutoff {
                    self.flush_metrics(steps);
                    return Err(SimError::DeadlineExceeded { limit_ms });
                }
            }
            self.in_dirty.remove(&(u, prefix));
            self.process_node_prefix(NodeId(u), prefix);
            steps += 1;
            if debug && steps % 200 == 0 {
                let entries: usize = self.ribs.values().map(|v| v.len()).sum();
                let max_rib = self.ribs.values().map(|v| v.len()).max().unwrap_or(0);
                let max_path = self
                    .ribs
                    .values()
                    .flat_map(|v| v.iter().map(|e| e.path.len()))
                    .max()
                    .unwrap_or(0);
                eprintln!(
                    "sim step {steps}: queue={} entries={} max_rib={} max_path={} mgr_nodes={} ops={} delivered={}",
                    self.dirty.len(),
                    entries,
                    max_rib,
                    max_path,
                    self.mgr.node_count(),
                    self.mgr.ops,
                    self.stats.delivered
                );
            }
            if steps > cap {
                self.flush_metrics(steps);
                return Err(SimError::NonConvergence);
            }
        }
        self.flush_metrics(steps);
        Ok(())
    }

    /// GC safe point, hit between worklist steps: no transient conditions
    /// are live there, so every meaningful handle is reachable from the
    /// RIBs, the in-flight messages, or the iBGP session-condition cache.
    /// Those are the roots the `Simulation` registers with the manager;
    /// anything else (retracted entries, superseded messages, accumulator
    /// intermediates) is garbage. The watermark check is O(1), and the
    /// trigger depends only on this family's own allocation history, so
    /// collections — and the reports — are identical at any thread count.
    fn maybe_gc(&mut self) {
        if !self.mgr.should_gc() {
            return;
        }
        let roots: Vec<Bdd> = self
            .ribs
            .values()
            .flat_map(|entries| entries.iter().map(|e| e.cond))
            .chain(
                self.sent
                    .values()
                    .flat_map(|msgs| msgs.values().map(|m| m.cond)),
            )
            .chain(self.session_conds.values().copied())
            .collect();
        let before = self.mgr.node_count();
        self.mgr.gc(roots);
        // Flight-recorder pause marker; the trigger (and hence the event
        // stream) depends only on this family's own allocation history.
        hoyan_obs::record(hoyan_obs::EventKind::GcRun {
            reclaimed: before.saturating_sub(self.mgr.node_count()) as u64,
        });
    }

    // Fold this run's plain-integer tallies into the process-wide registry
    // (once per run, so the worklist loop stays atomic-free).
    fn flush_metrics(&self, steps: usize) {
        hoyan_obs::metric!(counter "propagate.runs").inc();
        hoyan_obs::metric!(counter "propagate.steps").add(steps as u64);
        hoyan_obs::metric!(histogram "propagate.steps_per_run").observe(steps as u64);
        hoyan_obs::metric!(counter "propagate.delivered").add(self.stats.delivered);
        hoyan_obs::metric!(counter "propagate.dropped_policy").add(self.stats.dropped_policy);
        hoyan_obs::metric!(counter "propagate.dropped_over_k").add(self.stats.dropped_over_k);
        hoyan_obs::metric!(counter "propagate.dropped_impossible")
            .add(self.stats.dropped_impossible);
        hoyan_obs::metric!(gauge "propagate.max_formula_len")
            .record_max(self.stats.max_formula_len);
    }

    fn seed(&mut self) {
        match self.mode {
            Mode::Igp => {
                for n in self.net.topology.nodes() {
                    if !self.net.runs_isis(n) {
                        continue;
                    }
                    let prefix = self.net.topology.loopback(n);
                    if !self.prefixes.contains(&prefix) {
                        continue;
                    }
                    let entry = Entry {
                        id: self.fresh_entry_id(),
                        prefix,
                        attrs: RouteAttrs::default(),
                        cond: Bdd::TRUE,
                        learned_from: LearnedFrom::Local,
                        from_node: None,
                        next_hop: None,
                        igp_metric: 0,
                        peer_router_id: self.net.device(n).config.router_id,
                        ibgp_hops: 0,
                        proto: Proto::Isis,
                        path: vec![n],
                    };
                    self.deps.origin_nodes.insert(n.0);
                    self.deps.touched_nodes.insert(n.0);
                    self.insert_entry(n, entry);
                    self.mark_dirty(n, prefix);
                }
            }
            Mode::Bgp => {
                for n in self.net.topology.nodes() {
                    let dev = self.net.device(n);
                    let Some(bgp) = dev.config.bgp.as_ref() else {
                        continue;
                    };
                    let prefixes = self.prefixes.clone();
                    for p in prefixes {
                        let mut seeds: Vec<RouteAttrs> = Vec::new();
                        if bgp.networks.contains(&p) {
                            let mut attrs = RouteAttrs::originated();
                            attrs.weight = LOCAL_WEIGHT;
                            seeds.push(attrs);
                        }
                        let redistributes_static =
                            bgp.redistribute.iter().any(|r| *r == RedistSource::Static);
                        if redistributes_static
                            && dev.config.static_routes.iter().any(|s| s.prefix == p)
                            && dev.redistribution_admits(p)
                        {
                            let mut attrs = RouteAttrs::originated();
                            attrs.weight = LOCAL_WEIGHT;
                            attrs.origin = Origin::Incomplete;
                            seeds.push(attrs);
                        }
                        for attrs in seeds {
                            let entry = Entry {
                                id: self.fresh_entry_id(),
                                prefix: p,
                                attrs,
                                cond: Bdd::TRUE,
                                learned_from: LearnedFrom::Local,
                                from_node: None,
                                next_hop: None,
                                igp_metric: 0,
                                peer_router_id: dev.config.router_id,
                                ibgp_hops: 0,
                                proto: Proto::Bgp,
                                path: vec![n],
                            };
                            self.deps.origin_nodes.insert(n.0);
                            self.deps.touched_nodes.insert(n.0);
                            self.insert_entry(n, entry);
                            self.mark_dirty(n, p);
                        }
                    }
                }
            }
        }
    }

    /// Inserts an entry at its rank, keeping the RIB *ball-minimal*: an
    /// entry whose condition is already covered — within the `≤ k`-failure
    /// ball — by higher-ranked rules can never be best in any considered
    /// scenario, so it is not stored (its message stays dormant and is
    /// retried if coverage later shrinks). Returns `false` for such drops.
    ///
    /// This is the RIB-side face of the §5.6 pruning and what the paper's
    /// Figure 12 calls branches "cut due to larger-than-k": only ~2% of
    /// branches survive propagation on their WAN.
    fn insert_entry(&mut self, node: NodeId, entry: Entry) -> bool {
        let prefix = entry.prefix;
        let rib = self.ribs.entry((node.0, prefix)).or_default();
        let cand = entry.candidate();
        // Decision-process order first; ties broken on route *content*
        // (attributes, then provenance) so the converged RIB order is
        // independent of message delivery order.
        let pos = rib
            .iter()
            .position(|e| {
                hoyan_device::cmp_candidates(&cand, &e.candidate())
                    .then_with(|| entry.attrs.cmp(&e.attrs))
                    .then_with(|| entry.from_node.cmp(&e.from_node))
                    .then_with(|| entry.path.cmp(&e.path))
                    == std::cmp::Ordering::Less
            })
            .unwrap_or(rib.len());
        if let Some(k) = self.k {
            let higher: Vec<Bdd> = rib[..pos].iter().map(|e| e.cond).collect();
            let covered = self.mgr.or_all_within(higher, Some(k));
            let novel = self.mgr.and_not(entry.cond, covered);
            if novel.is_false() || self.mgr.min_failures_to_satisfy(novel) > k {
                self.stats.dropped_over_k += 1;
                return false;
            }
        }
        self.ribs
            .entry((node.0, prefix))
            .or_default()
            .insert(pos, entry);
        self.sweep_covered(node, prefix);
        true
    }

    /// Removes lower-ranked entries that became covered within the failure
    /// ball (top-down greedy pass, deterministic in the ranked content).
    /// Local seeds and aggregates are never swept (their lifecycles are
    /// owned by seeding and aggregation).
    fn sweep_covered(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        let Some(k) = self.k else {
            return;
        };
        let Some(rib) = self.ribs.get(&(node.0, prefix)) else {
            return;
        };
        let snapshot: Vec<(u64, Bdd, bool)> = rib
            .iter()
            .map(|e| {
                (
                    e.id,
                    e.cond,
                    e.from_node.is_none() || e.proto == Proto::Aggregate,
                )
            })
            .collect();
        let mut acc = Bdd::FALSE;
        let mut removed = Vec::new();
        for (id, cond, keep_always) in snapshot {
            if !keep_always && !acc.is_false() {
                let novel = self.mgr.and_not(cond, acc);
                if novel.is_false() || self.mgr.min_failures_to_satisfy(novel) > k {
                    removed.push(id);
                    continue;
                }
            }
            acc = self.mgr.or(acc, cond);
            if !acc.is_true() && self.mgr.min_failures_to_falsify(acc) > k {
                acc = Bdd::TRUE;
            }
        }
        for id in removed {
            self.stats.dropped_over_k += 1;
            self.remove_entry(node, prefix, id);
        }
    }

    fn remove_entry(&mut self, node: NodeId, prefix: Ipv4Prefix, entry_id: u64) {
        let mut removed = false;
        if let Some(rib) = self.ribs.get_mut(&(node.0, prefix)) {
            let before = rib.len();
            rib.retain(|e| e.id != entry_id);
            removed = rib.len() != before;
        }
        if removed {
            // The node must recompute its announcements, and its peers must
            // retry messages that were dropped as ball-covered when the
            // removed entry still provided the coverage.
            self.mark_dirty(node, prefix);
            let peers: Vec<NodeId> = self.channels[node.0 as usize]
                .iter()
                .map(|c| c.peer)
                .collect();
            for p in peers {
                self.mark_dirty(p, prefix);
            }
        }
    }

    /// The iBGP session condition between `u` and `v`: both directions of
    /// IS-IS reachability. When a [`SharedBase`] is attached the condition
    /// is a pre-imported base-arena handle (one cross-arena import per
    /// *sweep* instead of per family); otherwise it is imported from the
    /// IS-IS database on first use.
    fn session_cond(&mut self, u: NodeId, v: NodeId) -> Bdd {
        let key = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        if let Some(&c) = self.session_conds.get(&key) {
            return c;
        }
        if let Some(&c) = self.base.sessions.get(&key) {
            // Per-family (not per-arena) bump: thread-count invariant.
            hoyan_obs::metric!(counter "bdd.shared_imports").inc();
            self.session_conds.insert(key, c);
            return c;
        }
        hoyan_obs::metric!(counter "isis.conditioned_sessions").inc();
        let c = match self.isis_db {
            None => Bdd::TRUE,
            Some(db) => {
                let fwd = db.reach_cond(u, v);
                let back = db.reach_cond(v, u);
                let fwd = self.mgr.import(&db.mgr, fwd);
                let back = self.mgr.import(&db.mgr, back);
                self.mgr.and(fwd, back)
            }
        };
        self.session_conds.insert(key, c);
        c
    }

    /// Aggregation state at `node` for `agg_prefix`: the trigger condition
    /// (all contributing simulated prefixes present, §5.3) and the list of
    /// contributing prefixes.
    fn aggregate_trigger(
        &mut self,
        node: NodeId,
        agg_prefix: Ipv4Prefix,
    ) -> (Bdd, Vec<Ipv4Prefix>) {
        let mut contributors = Vec::new();
        let mut trigger = Bdd::TRUE;
        let prefixes = self.prefixes.clone();
        for p in prefixes {
            if p == agg_prefix || !agg_prefix.contains(p) {
                continue;
            }
            let present = self.prefix_present_cond(node, p);
            if present.is_false() {
                continue;
            }
            contributors.push(p);
            trigger = self.mgr.and(trigger, present);
        }
        if contributors.is_empty() {
            (Bdd::FALSE, contributors)
        } else {
            (trigger, contributors)
        }
    }

    /// Condition that at least one non-aggregate entry for `p` exists at
    /// `node`.
    fn prefix_present_cond(&mut self, node: NodeId, p: Ipv4Prefix) -> Bdd {
        let conds: Vec<Bdd> = self
            .ribs
            .get(&(node.0, p))
            .map(|rib| {
                rib.iter()
                    .filter(|e| e.proto != Proto::Aggregate)
                    .map(|e| e.cond)
                    .collect()
            })
            .unwrap_or_default();
        self.mgr.or_all(conds)
    }

    /// Recomputes the aggregate entry at `node` for `prefix`, if `prefix`
    /// is a configured aggregate there (stable entry ids).
    fn refresh_aggregates_for(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        if self.mode != Mode::Bgp {
            return;
        }
        let dev = self.net.device(node);
        let Some(bgp) = dev.config.bgp.as_ref() else {
            return;
        };
        let aggs: Vec<(Ipv4Prefix, bool)> = bgp
            .aggregates
            .iter()
            .filter(|a| a.prefix == prefix)
            .map(|a| (a.prefix, a.summary_only))
            .collect();
        let router_id = dev.config.router_id;
        for (agg_prefix, _summary_only) in aggs {
            if !self.prefixes.contains(&agg_prefix) {
                continue;
            }
            let (trigger, contributors) = self.aggregate_trigger(node, agg_prefix);
            let existing_id = self.agg_entry_ids.get(&(node.0, agg_prefix)).copied();
            if trigger.is_false() || contributors.is_empty() {
                if let Some(id) = existing_id {
                    self.remove_entry(node, agg_prefix, id);
                    self.agg_entry_ids.remove(&(node.0, agg_prefix));
                }
                continue;
            }
            match existing_id {
                Some(id) => {
                    if let Some(rib) = self.ribs.get_mut(&(node.0, agg_prefix)) {
                        if let Some(e) = rib.iter_mut().find(|e| e.id == id) {
                            e.cond = trigger;
                        }
                    }
                }
                None => {
                    let mut attrs = RouteAttrs::originated();
                    attrs.weight = LOCAL_WEIGHT;
                    attrs.origin = Origin::Incomplete;
                    let id = self.fresh_entry_id();
                    let entry = Entry {
                        id,
                        prefix: agg_prefix,
                        attrs,
                        cond: trigger,
                        learned_from: LearnedFrom::Local,
                        from_node: None,
                        next_hop: None,
                        igp_metric: 0,
                        peer_router_id: router_id,
                        ibgp_hops: 0,
                        proto: Proto::Aggregate,
                        path: vec![node],
                    };
                    self.agg_entry_ids.insert((node.0, agg_prefix), id);
                    self.insert_entry(node, entry);
                }
            }
        }
    }

    /// The suppression condition for sub-prefix `p` at `node`: the
    /// disjunction of triggers of summary-only aggregates covering `p`
    /// (§5.3 makes the aggregate and its contributors mutually exclusive).
    fn suppression_cond(&mut self, node: NodeId, p: Ipv4Prefix) -> Bdd {
        if self.mode != Mode::Bgp {
            return Bdd::FALSE;
        }
        let Some(bgp) = self.net.device(node).config.bgp.as_ref() else {
            return Bdd::FALSE;
        };
        let aggs: Vec<Ipv4Prefix> = bgp
            .aggregates
            .iter()
            .filter(|a| a.summary_only && a.prefix != p && a.prefix.contains(p))
            .map(|a| a.prefix)
            .collect();
        let mut cond = Bdd::FALSE;
        for a in aggs {
            if !self.prefixes.contains(&a) {
                continue;
            }
            let (trigger, _) = self.aggregate_trigger(node, a);
            cond = self.mgr.or(cond, trigger);
        }
        cond
    }

    /// Effective condition of an entry: raw condition minus aggregation
    /// suppression.
    fn effective_cond(&mut self, node: NodeId, e: &Entry) -> Bdd {
        if e.proto == Proto::Aggregate {
            return e.cond;
        }
        let sup = self.suppression_cond(node, e.prefix);
        self.mgr.and_not(e.cond, sup)
    }

    /// The ranked RIB of `node` for `prefix`, with effective conditions.
    pub fn rib(&mut self, node: NodeId, prefix: Ipv4Prefix) -> Vec<RibView> {
        let entries: Vec<Entry> = self
            .ribs
            .get(&(node.0, prefix))
            .cloned()
            .unwrap_or_default();
        entries
            .iter()
            .enumerate()
            .map(|(rank, e)| RibView {
                prefix: e.prefix,
                attrs: e.attrs.clone(),
                cond: self.effective_cond(node, e),
                from_node: e.from_node,
                next_hop: e.next_hop,
                proto: e.proto,
                learned_from: e.learned_from,
                rank,
            })
            .collect()
    }

    /// Condition under which at least one route for `prefix` exists at
    /// `node` — the `V` of §5.4's availability check.
    /// Saturates at the simulation's failure budget: when the disjunction
    /// cannot be falsified by `≤ k` failures it is reported as `TRUE`
    /// (reachability is then resilient; exact break distances beyond the
    /// budget are outside the simulation's contract anyway, §5.6).
    pub fn reach_cond(&mut self, node: NodeId, prefix: Ipv4Prefix) -> Bdd {
        let conds: Vec<Bdd> = self.rib(node, prefix).into_iter().map(|v| v.cond).collect();
        let k = self.k;
        self.mgr.or_all_within(conds, k)
    }

    /// The exact (unsaturated) reachability disjunction — used when the
    /// formula itself is the object of study (the Figure 13 length metric),
    /// not just its within-budget verdict.
    pub fn reach_cond_exact(&mut self, node: NodeId, prefix: Ipv4Prefix) -> Bdd {
        let conds: Vec<Bdd> = self.rib(node, prefix).into_iter().map(|v| v.cond).collect();
        self.mgr.or_all(conds)
    }

    /// Raw entries (internal views used by FIB construction).
    pub fn entries(&self, node: NodeId, prefix: Ipv4Prefix) -> &[Entry] {
        self.ribs
            .get(&(node.0, prefix))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn process_node_prefix(&mut self, u: NodeId, prefix: Ipv4Prefix) {
        self.refresh_aggregates_for(u, prefix);
        let channels = self.channels[u.0 as usize].clone();

        // Desired message set for this prefix.
        let mut desired: HashMap<MsgKey, DesiredMsg> = HashMap::new();
        let entries: Vec<Entry> = self.ribs.get(&(u.0, prefix)).cloned().unwrap_or_default();
        if !entries.is_empty() {
            // Cumulative is-best chain over effective conditions, with the
            // §5.6 pruning applied *inside* the chain: the moment the
            // accumulated negation `¬R(r₁)∧…∧¬R(rᵢ)` already requires more
            // than `k` failures, every lower-ranked rule's announcement is
            // out of consideration — cut the whole branch without building
            // its (potentially large) condition.
            let mut best_conds: Vec<Bdd> = Vec::with_capacity(entries.len());
            // acc = disjunction of higher-ranked effective conditions,
            // saturated to TRUE once it cannot be falsified within the
            // failure budget (every lower-ranked rule is then never-best in
            // any considered scenario).
            let mut acc = Bdd::FALSE;
            for e in &entries {
                if acc.is_true() {
                    self.stats.dropped_over_k += channels.len() as u64;
                    best_conds.push(Bdd::FALSE);
                    continue;
                }
                let eff = self.effective_cond(u, e);
                let is_best = self.mgr.and_not(eff, acc);
                best_conds.push(is_best);
                acc = self.mgr.or(acc, eff);
                if let Some(k) = self.k {
                    if !acc.is_true() && self.mgr.min_failures_to_falsify(acc) > k {
                        acc = Bdd::TRUE;
                    }
                }
            }
            for (ci, ch) in channels.iter().enumerate() {
                for (e, is_best) in entries.iter().zip(&best_conds) {
                    if is_best.is_false() {
                        continue; // never best (or pruned): nothing to send
                    }
                    // Split horizon: never send a route back to its source.
                    if e.from_node == Some(ch.peer) {
                        continue;
                    }
                    // Loop prevention: the peer already relayed this route.
                    if e.path.contains(&ch.peer) {
                        continue;
                    }
                    let emitted = self.emit(u, ch, ci, e, *is_best);
                    if let Some((key, val)) = emitted {
                        desired.insert(key, val);
                    }
                }
            }
        }

        // Diff against previously sent messages from (u, prefix).
        let mut old_keys: Vec<MsgKey> = self
            .sent
            .get(&(u.0, prefix))
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default();
        old_keys.sort();
        for key in old_keys {
            match desired.remove(&key) {
                None => {
                    // Retract.
                    let old = self
                        .sent
                        .get_mut(&(u.0, prefix))
                        .and_then(|m| m.remove(&key))
                        .expect("key exists");
                    if let Some(entry_id) = old.receiver_entry {
                        self.remove_entry(old.receiver, old.prefix, entry_id);
                        self.mark_dirty(old.receiver, old.prefix);
                    }
                }
                Some((cond, attrs, next_hop, msg_prefix, path, hops)) => {
                    let old = self
                        .sent
                        .get(&(u.0, prefix))
                        .and_then(|m| m.get(&key))
                        .expect("key exists");
                    if old.cond == cond
                        && old.attrs == attrs
                        && old.next_hop == next_hop
                        && old.receiver_entry.is_some()
                    {
                        continue; // unchanged and delivered
                    }
                    if old.cond == cond && old.attrs == attrs && old.next_hop == next_hop {
                        // Unchanged but dormant (dropped as ball-covered):
                        // retry now that the receiver's coverage may have
                        // shrunk.
                        let receiver = old.receiver;
                        let channel_kind = self.channel_kind_of(u, key.channel);
                        let (path_o, hops_o) = (old.path.clone(), old.ibgp_hops);
                        let receiver_entry = self.deliver(
                            u,
                            receiver,
                            channel_kind,
                            prefix,
                            &attrs,
                            cond,
                            next_hop,
                            &path_o,
                            hops_o,
                        );
                        if let Some(m) = self
                            .sent
                            .get_mut(&(u.0, prefix))
                            .and_then(|m| m.get_mut(&key))
                        {
                            m.receiver_entry = receiver_entry;
                        }
                        if receiver_entry.is_some() {
                            self.mark_dirty(receiver, prefix);
                        }
                        continue;
                    }
                    // Changed: retract then redeliver.
                    let old = self
                        .sent
                        .get_mut(&(u.0, prefix))
                        .and_then(|m| m.remove(&key))
                        .expect("key exists");
                    if let Some(entry_id) = old.receiver_entry {
                        self.remove_entry(old.receiver, old.prefix, entry_id);
                    }
                    let receiver = old.receiver;
                    let channel_kind = self.channel_kind_of(u, key.channel);
                    let receiver_entry = self.deliver(
                        u,
                        receiver,
                        channel_kind,
                        msg_prefix,
                        &attrs,
                        cond,
                        next_hop,
                        &path,
                        hops,
                    );
                    self.sent.entry((u.0, prefix)).or_default().insert(
                        key,
                        SentMsg {
                            cond,
                            attrs,
                            next_hop,
                            receiver,
                            prefix: msg_prefix,
                            path,
                            ibgp_hops: hops,
                            receiver_entry,
                        },
                    );
                    self.mark_dirty(receiver, msg_prefix);
                }
            }
        }
        // Brand-new messages, in deterministic key order.
        let mut new_msgs: Vec<(MsgKey, DesiredMsg)> = desired.into_iter().collect();
        new_msgs.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, (cond, attrs, next_hop, msg_prefix, path, hops)) in new_msgs {
            let ch = self.channels[u.0 as usize][key.channel as usize].clone();
            let receiver = ch.peer;
            let receiver_entry = self.deliver(
                u, receiver, ch.kind, msg_prefix, &attrs, cond, next_hop, &path, hops,
            );
            self.sent.entry((u.0, prefix)).or_default().insert(
                key,
                SentMsg {
                    cond,
                    attrs,
                    next_hop,
                    receiver,
                    prefix: msg_prefix,
                    path,
                    ibgp_hops: hops,
                    receiver_entry,
                },
            );
            self.mark_dirty(receiver, msg_prefix);
        }
    }

    fn channel_kind_of(&self, u: NodeId, channel: u32) -> ChannelKind {
        self.channels[u.0 as usize][channel as usize].kind
    }

    /// Computes the outgoing message for entry `e` over channel `ch`, with
    /// pruning. Returns `None` when the message is dropped (stats updated).
    #[allow(clippy::type_complexity)]
    fn emit(
        &mut self,
        u: NodeId,
        ch: &Channel,
        channel_idx: usize,
        e: &Entry,
        is_best: Bdd,
    ) -> Option<(MsgKey, DesiredMsg)> {
        let dev = self.net.device(u);
        let (attrs_out, next_hop, attach_cond) = match ch.kind {
            ChannelKind::Igp => {
                let link = ch.link.expect("IGP channels are links");
                let mut attrs = e.attrs.clone();
                attrs.isis_weight = attrs
                    .isis_weight
                    .saturating_add(self.net.topology.metric_from(u, link) as u64);
                let link_var = self.mgr.var(self.net.link_var(link));
                (attrs, Some(u), link_var)
            }
            ChannelKind::Ebgp(ni) | ChannelKind::Ibgp(ni) => {
                let kind = match ch.kind {
                    ChannelKind::Ebgp(_) => SessionKind::Ebgp,
                    _ => SessionKind::Ibgp,
                };
                let neighbor = &dev.config.bgp.as_ref().expect("bgp channel").neighbors[ni];
                // Advertisement rules (iBGP reflection etc.).
                if !dev.may_advertise(e.learned_from, kind, neighbor) {
                    return None; // not an error, simply not advertised
                }
                let Some(egress) = dev.control_egress(neighbor, kind, e.prefix, &e.attrs) else {
                    self.stats.dropped_policy += 1;
                    return None;
                };
                let next_hop = if egress.next_hop_self {
                    Some(u)
                } else {
                    e.next_hop.or(Some(u))
                };
                let attach = match kind {
                    SessionKind::Ebgp => {
                        let link = ch.link.expect("ebgp needs a link");
                        self.mgr.var(self.net.link_var(link))
                    }
                    SessionKind::Ibgp => self.session_cond(u, ch.peer),
                };
                (egress.attrs, next_hop, attach)
            }
        };

        let cond = self.mgr.and(is_best, attach_cond);
        if cond.is_false() {
            self.stats.dropped_impossible += 1;
            return None;
        }
        if let Some(k) = self.k {
            if self.mgr.min_failures_to_satisfy(cond) > k {
                self.stats.dropped_over_k += 1;
                return None;
            }
        }
        self.note_cond(cond);
        if let Some(link) = ch.link {
            self.deps.touched_links.insert(link.0);
        }
        let mut path = e.path.clone();
        path.push(ch.peer);
        let key = MsgKey {
            from: u.0,
            channel: channel_idx as u32,
            entry: e.id,
        };
        // Cluster-list proxy: grows by one per iBGP hop.
        let hops = match ch.kind {
            ChannelKind::Ibgp(_) => e.ibgp_hops + 1,
            _ => 0,
        };
        Some((key, (cond, attrs_out, next_hop, e.prefix, path, hops)))
    }

    /// Receiver-side processing: ingress policy, then RIB insertion.
    /// Returns the created entry id, or `None` if dropped.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: ChannelKind,
        prefix: Ipv4Prefix,
        attrs: &RouteAttrs,
        cond: Bdd,
        next_hop: Option<NodeId>,
        path: &[NodeId],
        ibgp_hops: u32,
    ) -> Option<u64> {
        // Both endpoints join the dependency trace *before* any drop
        // decision: the receiver's config is consulted below, so a change
        // to it can flip the outcome even when this delivery is dropped.
        self.deps.touched_nodes.insert(from.0);
        self.deps.touched_nodes.insert(to.0);
        // A node relaying a route it already relayed = loop.
        if path[..path.len() - 1].contains(&to) {
            self.stats.dropped_policy += 1;
            return None;
        }
        let dev = self.net.device(to);
        let (attrs_in, learned_from) = match kind {
            ChannelKind::Igp => (attrs.clone(), LearnedFrom::Local),
            ChannelKind::Ebgp(_) | ChannelKind::Ibgp(_) => {
                let session_kind = match kind {
                    ChannelKind::Ebgp(_) => SessionKind::Ebgp,
                    _ => SessionKind::Ibgp,
                };
                // Find the receiver's neighbor block for the sender.
                let from_name = self.net.topology.name(from);
                let Some(neighbor) = dev.config.bgp.as_ref().and_then(|b| b.neighbor(from_name))
                else {
                    self.stats.dropped_policy += 1;
                    return None;
                };
                let Some(a) = dev.control_ingress(neighbor, session_kind, prefix, attrs) else {
                    self.stats.dropped_policy += 1;
                    return None;
                };
                let lf = match session_kind {
                    SessionKind::Ebgp => LearnedFrom::Ebgp,
                    SessionKind::Ibgp => {
                        if neighbor.rr_client {
                            LearnedFrom::IbgpClient
                        } else {
                            LearnedFrom::IbgpNonClient
                        }
                    }
                };
                (a, lf)
            }
        };
        let igp_metric = match (self.mode, next_hop) {
            (Mode::Bgp, Some(nh)) if nh != to => {
                self.igp_dist[to.0 as usize][nh.0 as usize].unwrap_or(0)
            }
            _ => 0,
        };
        let learned_from = if matches!(kind, ChannelKind::Igp) {
            // IGP entries are "local" to BGP semantics but we keep the
            // sender for forwarding.
            learned_from
        } else {
            learned_from
        };
        let entry = Entry {
            id: self.fresh_entry_id(),
            prefix,
            attrs: attrs_in,
            cond,
            learned_from,
            from_node: Some(from),
            next_hop,
            igp_metric,
            peer_router_id: self.net.device(from).config.router_id,
            ibgp_hops,
            proto: match self.mode {
                Mode::Bgp => Proto::Bgp,
                Mode::Igp => Proto::Isis,
            },
            path: path.to_vec(),
        };
        let id = entry.id;
        self.note_cond(cond);
        if !self.insert_entry(to, entry) {
            return None;
        }
        self.stats.delivered += 1;
        Some(id)
    }
}
