//! Tests reproducing the paper's worked examples end-to-end:
//! Figure 4 (route propagation with topology conditions), Figure 5 (packet
//! propagation), §5.3 (route aggregation with exclusive conditions), and
//! Appendix C (iBGP sessions conditioned on IS-IS reachability).

use hoyan_config::{parse_config, DeviceConfig};
use hoyan_core::{packet_reach, NetworkModel, Simulation, Verifier};
use hoyan_device::{Packet, VsbProfile};
use hoyan_nettypes::pfx;

fn cfgs(texts: &[&str]) -> Vec<DeviceConfig> {
    texts.iter().map(|t| parse_config(t).unwrap()).collect()
}

fn network(texts: &[&str]) -> NetworkModel {
    NetworkModel::from_configs(cfgs(texts), VsbProfile::ground_truth).unwrap()
}

/// The Figure 4 network: A(AS100) announces subnet N; A-C (Link1), A-B
/// (Link2), B-C (Link3), C-D (Link4).
fn figure4() -> NetworkModel {
    network(&figure4_strs())
}

fn figure4_texts() -> Vec<DeviceConfig> {
    cfgs(&figure4_strs())
}

fn figure4_strs() -> [&'static str; 4] {
    [
        concat!(
            "hostname A\nrouter-id 1\n",
            "interface e0\n peer C\ninterface e1\n peer B\n",
            "router bgp 100\n network 10.0.0.0/24\n",
            " neighbor C remote-as 300\n neighbor B remote-as 200\n",
        ),
        concat!(
            "hostname B\nrouter-id 2\n",
            "interface e0\n peer A\ninterface e1\n peer C\n",
            "router bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 300\n",
        ),
        concat!(
            "hostname C\nrouter-id 3\n",
            "interface e0\n peer A\ninterface e1\n peer B\ninterface e2\n peer D\n",
            "router bgp 300\n neighbor A remote-as 100\n neighbor B remote-as 200\n neighbor D remote-as 400\n",
        ),
        concat!(
            "hostname D\nrouter-id 4\n",
            "interface e0\n peer C\n",
            "router bgp 400\n neighbor C remote-as 300\n",
        ),
    ]
}

#[test]
fn figure4_c_rib_has_two_exclusive_routes() {
    let net = figure4();
    let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.0.0/24")], Some(3), None);
    sim.run().unwrap();
    let c = net.topology.node("C").unwrap();
    let rib = sim.rib(c, pfx("10.0.0.0/24"));
    assert_eq!(rib.len(), 2, "C holds r1 (direct) and r2 (via B)");
    // r1: AS path "100", direct from A. (The paper prints paths origin-
    // first, e.g. "100-200"; we use standard nearest-first order.)
    assert_eq!(rib[0].attrs.as_path.to_string(), "100");
    // r2: via B, paper's "100-200" (our nearest-first "200-100").
    assert_eq!(rib[1].attrs.as_path.to_string(), "200-100");

    let a = net.topology.node("A").unwrap();
    let b = net.topology.node("B").unwrap();
    let l1 = net.topology.link_between(a, c).unwrap();
    let l2 = net.topology.link_between(a, b).unwrap();
    let l3 = net.topology.link_between(b, c).unwrap();
    // r1 exists iff Link1 alive.
    let expect_r1 = sim.mgr.var(l1.0);
    assert_eq!(rib[0].cond, expect_r1);
    // r2 exists iff Link2 and Link3 alive.
    let a2 = sim.mgr.var(l2.0);
    let a3 = sim.mgr.var(l3.0);
    let expect_r2 = sim.mgr.and(a2, a3);
    assert_eq!(rib[1].cond, expect_r2);
}

#[test]
fn figure4_d_rib_conditions_and_min_cut() {
    let net = figure4();
    let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.0.0/24")], Some(3), None);
    sim.run().unwrap();
    let a = net.topology.node("A").unwrap();
    let b = net.topology.node("B").unwrap();
    let c = net.topology.node("C").unwrap();
    let d = net.topology.node("D").unwrap();
    let l1 = net.topology.link_between(a, c).unwrap();
    let l2 = net.topology.link_between(a, b).unwrap();
    let l3 = net.topology.link_between(b, c).unwrap();
    let l4 = net.topology.link_between(c, d).unwrap();

    let rib = sim.rib(d, pfx("10.0.0.0/24"));
    assert_eq!(rib.len(), 2, "D holds r3 and r4");
    // r3 = a1 ∧ a4 (paper step 6).
    let a1 = sim.mgr.var(l1.0);
    let a4v = sim.mgr.var(l4.0);
    let expect_r3 = sim.mgr.and(a1, a4v);
    assert_eq!(rib[0].cond, expect_r3);
    // r4 = ¬a1 ∧ a2 ∧ a3 ∧ a4.
    let na1 = sim.mgr.not(a1);
    let a2 = sim.mgr.var(l2.0);
    let a3 = sim.mgr.var(l3.0);
    let e = sim.mgr.and(na1, a2);
    let e = sim.mgr.and(e, a3);
    let expect_r4 = sim.mgr.and(e, a4v);
    assert_eq!(rib[1].cond, expect_r4);

    // "failure of Link 4 makes D unreachable from A" — the minimal cut.
    let v = sim.reach_cond(d, pfx("10.0.0.0/24"));
    assert_eq!(sim.mgr.min_failures_to_falsify(v), 1);
    assert_eq!(sim.mgr.min_falsifying_failures(v), Some(vec![l4.0]));
}

#[test]
fn figure5_packet_reaches_a_from_d_unless_link4_or_both_paths_die() {
    let net = figure4();
    let mut sim = Simulation::new_bgp(&net, vec![pfx("10.0.0.0/24")], Some(3), None);
    sim.run().unwrap();
    let d = net.topology.node("D").unwrap();
    let packet = Packet {
        src: "192.168.0.1".parse().unwrap(),
        dst: "10.0.0.9".parse().unwrap(),
        proto: hoyan_config::AclProto::Tcp,
    };
    let walk = packet_reach(&mut sim, &net, None, d, pfx("10.0.0.0/24"), packet, Some(3));
    // The packet follows FIBs D→C→A; Figure 5 shows p6 (the branch pairing
    // r4's condition with r1's next hop) is always-false and pruned.
    assert!(sim.mgr.eval(walk.reach_cond, &[]));
    assert_eq!(sim.mgr.min_failures_to_falsify(walk.reach_cond), 1);
    assert_eq!(walk.loops, 0);
}

#[test]
fn aggregation_produces_exclusive_conditions() {
    // §5.3: GW1 announces 10.0.1.0/32-like subs; AGG aggregates to /31 with
    // summary-only. The aggregate exists iff both contributors are present;
    // contributors' announcements are suppressed exactly then.
    let net = network(&[
        concat!(
            "hostname G1\ninterface e0\n peer AGG\n",
            "router bgp 101\n network 10.0.1.0/32\n neighbor AGG remote-as 500\n",
        ),
        concat!(
            "hostname G2\ninterface e0\n peer AGG\n",
            "router bgp 102\n network 10.0.1.1/32\n neighbor AGG remote-as 500\n",
        ),
        concat!(
            "hostname AGG\ninterface e0\n peer G1\ninterface e1\n peer G2\ninterface e2\n peer X\n",
            "router bgp 500\n aggregate-address 10.0.1.0/31 summary-only\n",
            " neighbor G1 remote-as 101\n neighbor G2 remote-as 102\n neighbor X remote-as 600\n",
        ),
        concat!(
            "hostname X\ninterface e0\n peer AGG\n",
            "router bgp 600\n neighbor AGG remote-as 500\n",
        ),
    ]);
    let fam = vec![pfx("10.0.1.0/32"), pfx("10.0.1.1/32"), pfx("10.0.1.0/31")];
    let mut sim = Simulation::new_bgp(&net, fam, Some(3), None);
    sim.run().unwrap();

    let agg = net.topology.node("AGG").unwrap();
    let x = net.topology.node("X").unwrap();
    let g1 = net.topology.node("G1").unwrap();
    let g2 = net.topology.node("G2").unwrap();
    let i1 = sim.mgr.var(net.topology.link_between(g1, agg).unwrap().0);
    let i2 = sim.mgr.var(net.topology.link_between(g2, agg).unwrap().0);

    // At AGG: the aggregate rule condition is I1 ∧ I2.
    let agg_rib = sim.rib(agg, pfx("10.0.1.0/31"));
    assert_eq!(agg_rib.len(), 1);
    let expect_trigger = sim.mgr.and(i1, i2);
    assert_eq!(agg_rib[0].cond, expect_trigger);

    // The suppressed /32 rules at AGG have conditions I1 ∧ ¬(I1 ∧ I2) =
    // I1 ∧ ¬I2 and symmetrically (mutually exclusive with the aggregate).
    let sub1 = sim.rib(agg, pfx("10.0.1.0/32"));
    assert_eq!(sub1.len(), 1);
    let ni2 = sim.mgr.not(i2);
    let expect_sub1 = sim.mgr.and(i1, ni2);
    assert_eq!(sub1[0].cond, expect_sub1);

    // All three rules are pairwise exclusive.
    let sub2 = sim.rib(agg, pfx("10.0.1.1/32"));
    let pairs = [
        (agg_rib[0].cond, sub1[0].cond),
        (agg_rib[0].cond, sub2[0].cond),
        (sub1[0].cond, sub2[0].cond),
    ];
    for (p, q) in pairs {
        assert!(sim.mgr.and(p, q).is_false(), "rules must be exclusive");
    }

    // X receives the aggregate (condition includes both uplinks) and the
    // suppressed /32s only under partial failure.
    let x_agg = sim.reach_cond(x, pfx("10.0.1.0/31"));
    assert!(sim.mgr.eval(x_agg, &[]));
    let x_sub = sim.reach_cond(x, pfx("10.0.1.0/32"));
    assert!(!sim.mgr.eval(x_sub, &[]), "suppressed while both present");
    assert!(!x_sub.is_false(), "appears when the other contributor fails");
}

#[test]
fn ibgp_session_condition_rides_on_isis() {
    // E announces a prefix over eBGP to PE1; PE1 relays over iBGP to PE2.
    // PE1-PE2 have no direct link: the iBGP session condition is IS-IS
    // reachability through M (two disjoint IGP paths → survives 1 failure,
    // but the whole chain also needs the E-PE1 link).
    let texts = [
        concat!(
            "hostname E\ninterface e0\n peer PE1\n",
            "router bgp 900\n network 77.0.0.0/16\n neighbor PE1 remote-as 100\n",
        )
        .to_string(),
        concat!(
            "hostname PE1\ninterface e0\n peer E\ninterface e1\n peer M1\ninterface e2\n peer M2\n",
            "router bgp 100\n neighbor E remote-as 900\n neighbor PE2 remote-as 100\n neighbor PE2 next-hop-self\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname M1\ninterface e0\n peer PE1\ninterface e1\n peer PE2\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname M2\ninterface e0\n peer PE1\ninterface e1\n peer PE2\n",
            "router isis\n area 1\n",
        )
        .to_string(),
        concat!(
            "hostname PE2\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
            "router bgp 100\n neighbor PE1 remote-as 100\n",
            "router isis\n area 1\n",
        )
        .to_string(),
    ];
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let configs = cfgs(&refs);
    let verifier = Verifier::new(configs, VsbProfile::ground_truth, Some(4)).unwrap();
    let report = verifier.route_reachability(pfx("77.0.0.0/16"), "PE2", 3).unwrap();
    assert!(report.reachable_now);
    // Breaking it needs either the single E-PE1 link (1 failure) — so the
    // minimum cut is 1.
    assert_eq!(report.min_failures_to_break, 1);
    assert_eq!(report.witness.as_deref(), Some(&["E-PE1".to_string()][..]));

    // Role equivalence: M1 and M2 are equivalent (pure IGP nodes), PE1 and
    // PE2 are not (different RIB contents).
    let eq = verifier.role_equivalence("M1", "M2").unwrap();
    assert!(eq.equivalent);
    let ne = verifier.role_equivalence("PE1", "PE2").unwrap();
    assert!(!ne.equivalent);
}

#[test]
fn late_higher_priority_route_is_handled() {
    // A worse route that arrives/propagates first must be withdrawn when a
    // better one shows up: ring A-B-C-D where the origin G peers with both A
    // and D. C prefers the short path via D; the long path via A-B must
    // carry the negation of the short one.
    let net = network(&[
        concat!(
            "hostname G\ninterface e0\n peer A\ninterface e1\n peer D\n",
            "router bgp 10\n network 50.0.0.0/16\n neighbor A remote-as 1\n neighbor D remote-as 4\n",
        ),
        concat!(
            "hostname A\ninterface e0\n peer G\ninterface e1\n peer B\n",
            "router bgp 1\n neighbor G remote-as 10\n neighbor B remote-as 2\n",
        ),
        concat!(
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\n",
            "router bgp 2\n neighbor A remote-as 1\n neighbor C remote-as 3\n",
        ),
        concat!(
            "hostname C\ninterface e0\n peer B\ninterface e1\n peer D\n",
            "router bgp 3\n neighbor B remote-as 2\n neighbor D remote-as 4\n",
        ),
        concat!(
            "hostname D\ninterface e0\n peer C\ninterface e1\n peer G\n",
            "router bgp 4\n neighbor C remote-as 3\n neighbor G remote-as 10\n",
        ),
    ]);
    let mut sim = Simulation::new_bgp(&net, vec![pfx("50.0.0.0/16")], Some(3), None);
    sim.run().unwrap();
    let c = net.topology.node("C").unwrap();
    let rib = sim.rib(c, pfx("50.0.0.0/16"));
    assert_eq!(rib.len(), 2);
    // Best: via D (path 4-10). Alternative: via B (path 2-1-10).
    assert_eq!(rib[0].attrs.as_path.to_string(), "4-10");
    assert_eq!(rib[1].attrs.as_path.to_string(), "2-1-10");
    
    // Reachability survives any single failure (two disjoint paths).
    let v = sim.reach_cond(c, pfx("50.0.0.0/16"));
    assert_eq!(sim.mgr.min_failures_to_falsify(v), 2);
    // Both RIB rules can exist simultaneously (conditions overlap) — the
    // exclusivity lives in what gets *announced*, not the RIB itself.
    let both = sim.mgr.and(rib[0].cond, rib[1].cond);
    assert!(!both.is_false());
    // B holds C's relayed best route (path 3-4-10), valid with all links
    // alive, alongside its own direct route (path 1-10).
    let b = net.topology.node("B").unwrap();
    let b_rib = sim.rib(b, pfx("50.0.0.0/16"));
    let relayed = b_rib
        .iter()
        .find(|r| r.attrs.as_path.to_string() == "3-4-10")
        .expect("B receives C's best route");
    assert!(sim.mgr.eval(relayed.cond, &[]));
    // When C's best route dies (e.g. link D-G fails), the withdraw cascade
    // must leave B's relayed entry conditioned out: kill D-G and the
    // relayed condition must evaluate false.
    let d = net.topology.node("D").unwrap();
    let g = net.topology.node("G").unwrap();
    let dg = net.topology.link_between(d, g).unwrap();
    let mut assign = vec![true; net.topology.link_count()];
    assign[dg.0 as usize] = false;
    assert!(!sim.mgr.eval(relayed.cond, &assign));
}

#[test]
fn verifier_families_group_overlapping_prefixes() {
    let net_texts = [
        concat!(
            "hostname A\ninterface e0\n peer B\n",
            "router bgp 1\n network 10.0.0.0/16\n network 10.0.1.0/24\n network 20.0.0.0/8\n",
            " neighbor B remote-as 2\n",
        )
        .to_string(),
        "hostname B\ninterface e0\n peer A\nrouter bgp 2\n neighbor A remote-as 1\n".to_string(),
    ];
    let refs: Vec<&str> = net_texts.iter().map(|s| s.as_str()).collect();
    let verifier = Verifier::new(cfgs(&refs), VsbProfile::ground_truth, Some(3)).unwrap();
    let fams = verifier.families();
    assert_eq!(fams.len(), 2);
    let sizes: Vec<usize> = fams.iter().map(|f| f.len()).collect();
    assert!(sizes.contains(&2) && sizes.contains(&1));
}

#[test]
fn parallel_sweep_matches_serial_queries() {
    let net_texts = [
        concat!(
            "hostname A\ninterface e0\n peer B\n",
            "router bgp 1\n network 10.0.0.0/16\n network 30.0.0.0/16\n neighbor B remote-as 2\n",
        )
        .to_string(),
        concat!(
            "hostname B\ninterface e0\n peer A\ninterface e1\n peer C\n",
            "router bgp 2\n neighbor A remote-as 1\n neighbor C remote-as 3\n",
        )
        .to_string(),
        "hostname C\ninterface e0\n peer B\nrouter bgp 3\n neighbor B remote-as 2\n".to_string(),
    ];
    let refs: Vec<&str> = net_texts.iter().map(|s| s.as_str()).collect();
    let verifier = Verifier::new(cfgs(&refs), VsbProfile::ground_truth, Some(3)).unwrap();
    let reports = verifier.verify_all_routes(1, 4).unwrap().reports;
    assert_eq!(reports.len(), 2);
    for r in &reports {
        // Chain topology: a single failure cuts C off; all nodes in scope.
        assert_eq!(r.scope.len(), 3);
        assert!(!r.fragile.is_empty());
        let serial = verifier
            .route_reachability(r.prefix, "C", 1)
            .unwrap();
        assert!(!serial.resilient);
        assert_eq!(serial.min_failures_to_break, 1);
    }
}

#[test]
fn router_failure_tolerance_finds_single_points_of_failure() {
    // Chain GW - M - S: router M is a single point of failure for S;
    // in the figure-4 diamond, no single transit router is.
    let chain = [
        concat!(
            "hostname GW\ninterface e0\n peer M\n",
            "router bgp 1\n network 10.0.0.0/24\n neighbor M remote-as 2\n",
        )
        .to_string(),
        concat!(
            "hostname M\ninterface e0\n peer GW\ninterface e1\n peer S\n",
            "router bgp 2\n neighbor GW remote-as 1\n neighbor S remote-as 3\n",
        )
        .to_string(),
        concat!(
            "hostname S\ninterface e0\n peer M\n",
            "router bgp 3\n neighbor M remote-as 2\n",
        )
        .to_string(),
    ];
    let refs: Vec<&str> = chain.iter().map(|s| s.as_str()).collect();
    let verifier = Verifier::new(cfgs(&refs), VsbProfile::ground_truth, Some(4)).unwrap();
    let fatal = verifier
        .router_failure_tolerance(pfx("10.0.0.0/24"), "S")
        .unwrap();
    assert_eq!(fatal, vec!["GW".to_string(), "M".to_string()]);

    // The figure-4 diamond: D reaches N via C only — C and A are fatal,
    // B is not (the A-C path survives B).
    let net_cfgs: Vec<hoyan_config::DeviceConfig> = figure4_texts();
    let verifier = Verifier::new(net_cfgs, VsbProfile::ground_truth, Some(4)).unwrap();
    let fatal = verifier
        .router_failure_tolerance(pfx("10.0.0.0/24"), "D")
        .unwrap();
    assert!(fatal.contains(&"A".to_string()));
    assert!(fatal.contains(&"C".to_string()));
    assert!(!fatal.contains(&"B".to_string()));
}
