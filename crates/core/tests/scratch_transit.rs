//! Scratch review test: 3-region chain, middle region is pure transit.

use hoyan_core::{summarize_regions, verify_region, NetworkModel, RegionMap};
use hoyan_config::parse_config;
use hoyan_device::VsbProfile;
use hoyan_logic::BddManager;
use hoyan_nettypes::pfx;

fn build(texts: &[&str]) -> NetworkModel {
    let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
    NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
}

#[test]
fn transit_region_summaries_reach_the_far_region() {
    let net = build(&[
        "hostname DC1x1\ninterface e0\n peer PE1x1\nrouter bgp 65001\n network 10.0.0.0/24\n neighbor PE1x1 remote-as 64500\n",
        "hostname PE1x1\ninterface e0\n peer DC1x1\ninterface e1\n peer PE2x1\nrouter bgp 64500\n neighbor DC1x1 remote-as 65001\n neighbor PE2x1 remote-as 64501\n",
        "hostname PE2x1\ninterface e0\n peer PE1x1\ninterface e1\n peer PE3x1\nrouter bgp 64501\n neighbor PE1x1 remote-as 64500\n neighbor PE3x1 remote-as 64502\n",
        "hostname PE3x1\ninterface e0\n peer PE2x1\nrouter bgp 64502\n neighbor PE2x1 remote-as 64501\n",
    ]);
    let map = RegionMap::build(&net.topology);
    assert_eq!(map.region_count(), 3);
    let p = pfx("10.0.0.0/24");

    // Global exact scope: everyone holds the route.
    let mut sim = hoyan_core::Simulation::new_bgp(&net, vec![p], Some(1), None);
    sim.run().expect("sim converges");
    let exact: Vec<&str> = net
        .topology
        .nodes()
        .filter(|n| {
            let c = sim.reach_cond(*n, p);
            !c.is_false() && sim.mgr.eval(c, &[])
        })
        .map(|n| net.topology.name(n))
        .collect();
    println!("exact scope: {exact:?}");
    assert!(exact.contains(&"PE3x1"));

    let mut mgr = BddManager::new();
    let summaries = summarize_regions(&net, &map, &mut mgr, &[p])
        .expect("no budget")
        .expect("no blow-up");
    for s in &summaries {
        for e in &s.egress {
            println!(
                "summary region {}: {} -> {}",
                s.region,
                net.topology.name(e.from),
                net.topology.name(e.to)
            );
        }
    }
    let r3 = map.region_of(net.topology.node("PE3x1").unwrap());
    let scopes = verify_region(&net, &map, r3, &summaries, &mut mgr, &[p])
        .expect("no budget")
        .expect("no blow-up");
    let names: Vec<&str> = scopes[0]
        .nodes
        .iter()
        .map(|n| net.topology.name(*n))
        .collect();
    println!("region {r3} scope: {names:?}");
    assert!(
        names.contains(&"PE3x1"),
        "PE3x1 is in the global exact scope but missing from its region-local result"
    );
}
