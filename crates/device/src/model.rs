//! The per-device behavior model (Figure 3): a control-plane pipeline
//! (ingress policy → route selector → egress policy) and a data-plane
//! pipeline (ingress ACL → FIB → egress ACL), generated from a
//! [`DeviceConfig`] and a vendor [`VsbProfile`].
//!
//! The simulator (hoyan-core) drives these pipelines; this module owns every
//! attribute transformation so that VSB knobs act in exactly one place.

use hoyan_config::{DeviceConfig, Neighbor};
use hoyan_nettypes::{AsNum, Ipv4Prefix, RouteAttrs, DEFAULT_LOCAL_PREF};

use crate::policy::{eval_acl, eval_optional_route_map, Packet, PolicyVerdict};
use crate::vsb::{CommunityHandling, LocalAsMode, RemovePrivateAs, VsbProfile};

/// Whether a BGP session is external or internal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SessionKind {
    /// eBGP: different AS numbers.
    Ebgp,
    /// iBGP: same AS; rides on IS-IS reachability.
    Ibgp,
}

/// How a route entered this device (for iBGP re-advertisement rules).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LearnedFrom {
    /// Locally originated (network statement, static, redistribution).
    Local,
    /// From an eBGP peer.
    Ebgp,
    /// From an iBGP peer that is one of our route-reflector clients.
    IbgpClient,
    /// From an ordinary iBGP peer.
    IbgpNonClient,
}

/// Outcome of the control-plane egress pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgressUpdate {
    /// The attributes as they appear in the transmitted update.
    pub attrs: RouteAttrs,
    /// Whether the sender rewrites itself as the next hop (explicit
    /// `next-hop-self` or the self-next-hop VSB).
    pub next_hop_self: bool,
}

/// A device behavior model: configuration plus vendor behavior profile.
#[derive(Clone, Debug)]
pub struct BehaviorModel {
    /// The parsed configuration.
    pub config: DeviceConfig,
    /// The vendor-specific behavior switches in force.
    pub vsb: VsbProfile,
}

impl BehaviorModel {
    /// Builds a model from a config and an explicit profile.
    pub fn new(config: DeviceConfig, vsb: VsbProfile) -> Self {
        BehaviorModel { config, vsb }
    }

    /// The device's real AS number (0 when BGP is not configured).
    pub fn asn(&self) -> AsNum {
        self.config.bgp.as_ref().map_or(0, |b| b.asn)
    }

    /// Session kind for a neighbor entry.
    pub fn session_kind(&self, n: &Neighbor) -> SessionKind {
        if n.remote_as == self.asn() {
            SessionKind::Ibgp
        } else {
            SessionKind::Ebgp
        }
    }

    /// Control-plane **ingress**: a route update for `prefix` with `attrs`
    /// arrives from the peer described by `neighbor`. Returns the attributes
    /// as inserted into the RIB, or `None` if the update is dropped.
    pub fn control_ingress(
        &self,
        neighbor: &Neighbor,
        kind: SessionKind,
        prefix: Ipv4Prefix,
        attrs: &RouteAttrs,
    ) -> Option<RouteAttrs> {
        // Standard eBGP loop prevention: our AS already in the path.
        if kind == SessionKind::Ebgp && attrs.as_path.contains(self.asn()) && !neighbor.allowas_in
        {
            return None;
        }
        // The "AS loop" VSB: some vendors reject any repeated AS number.
        if attrs.as_path.has_repetition() && !self.vsb.allow_as_repetition {
            return None;
        }
        let verdict = eval_optional_route_map(
            &self.config,
            &self.vsb,
            neighbor.route_map_in.as_deref(),
            prefix,
            attrs,
        );
        let mut out = verdict.permitted()?;
        // Neighbor weight overrides whatever the update carried, but an
        // explicit `set weight` in the ingress policy wins over both.
        if let Some(w) = neighbor.weight {
            if out.weight == attrs.weight {
                out.weight = w;
            }
        }
        Some(out)
    }

    /// Control-plane **egress**: the best route for `prefix` is announced to
    /// `neighbor`. Returns the update as transmitted, or `None` if egress
    /// policy drops it.
    pub fn control_egress(
        &self,
        neighbor: &Neighbor,
        kind: SessionKind,
        prefix: Ipv4Prefix,
        attrs: &RouteAttrs,
    ) -> Option<EgressUpdate> {
        // Weight is a local attribute: it does not survive leaving the
        // device unless the egress policy explicitly sets it (which is how
        // the Figure 1 "change weight 0 -> 100" egress rule works).
        let mut pre = attrs.clone();
        pre.weight = 0;
        let verdict = eval_optional_route_map(
            &self.config,
            &self.vsb,
            neighbor.route_map_out.as_deref(),
            prefix,
            &pre,
        );
        let mut out = match verdict {
            PolicyVerdict::Deny => return None,
            PolicyVerdict::Permit(a) => a,
        };

        if kind == SessionKind::Ebgp {
            // remove-private-AS, with vendor semantics.
            if neighbor.remove_private_as {
                out.as_path = match self.vsb.remove_private_as {
                    RemovePrivateAs::All => out.as_path.remove_private_all(),
                    RemovePrivateAs::LeadingOnly => out.as_path.remove_private_leading(),
                };
            }
            // AS prepending, honouring local-as migration semantics.
            match neighbor.local_as {
                None => out.as_path = out.as_path.prepend(self.asn()),
                Some(old_as) => {
                    out.as_path = match self.vsb.local_as_mode {
                        LocalAsMode::OldOnly => out.as_path.prepend(old_as),
                        LocalAsMode::OldAndNew => out.as_path.prepend_all(&[old_as, self.asn()]),
                    };
                }
            }
            // Local preference is meaningful within an AS; reset across AS
            // boundaries unless the egress policy already overrode it.
            if out.local_pref == pre.local_pref {
                out.local_pref = DEFAULT_LOCAL_PREF;
            }
        }

        // The "(ext) community" VSB: what the vendor includes by default.
        out.communities = match self.vsb.community_handling {
            CommunityHandling::Keep => out.communities,
            CommunityHandling::StripAll => out.communities.cleared(),
            CommunityHandling::StripExtended => out.communities.without_extended(),
        };

        let next_hop_self = match kind {
            SessionKind::Ebgp => true, // eBGP always rewrites next hop
            SessionKind::Ibgp => neighbor.next_hop_self || self.vsb.self_next_hop_on_ibgp,
        };
        Some(EgressUpdate {
            attrs: out,
            next_hop_self,
        })
    }

    /// The iBGP re-advertisement rule with route reflection: may a route
    /// learned as `learned` be sent to `to_neighbor` over `to_kind`?
    pub fn may_advertise(
        &self,
        learned: LearnedFrom,
        to_kind: SessionKind,
        to_neighbor: &Neighbor,
    ) -> bool {
        match (learned, to_kind) {
            // Local and eBGP-learned routes go everywhere.
            (LearnedFrom::Local, _) | (LearnedFrom::Ebgp, _) => true,
            // iBGP-learned routes go to eBGP peers.
            (_, SessionKind::Ebgp) => true,
            // iBGP-to-iBGP needs route reflection:
            // learned from a client -> reflected to everyone;
            // learned from a non-client -> reflected to clients only.
            (LearnedFrom::IbgpClient, SessionKind::Ibgp) => true,
            (LearnedFrom::IbgpNonClient, SessionKind::Ibgp) => to_neighbor.rr_client,
        }
    }

    /// Data-plane ingress: does the ACL on the interface facing
    /// `from_peer` admit `packet`?
    pub fn data_ingress(&self, from_peer: &str, packet: &Packet) -> bool {
        let acl = self
            .config
            .interface_to(from_peer)
            .and_then(|i| i.acl_in.as_deref());
        eval_acl(&self.config, &self.vsb, acl, packet)
    }

    /// Data-plane egress: does the ACL on the interface facing `to_peer`
    /// admit `packet`?
    pub fn data_egress(&self, to_peer: &str, packet: &Packet) -> bool {
        let acl = self
            .config
            .interface_to(to_peer)
            .and_then(|i| i.acl_out.as_deref());
        eval_acl(&self.config, &self.vsb, acl, packet)
    }

    /// Whether redistribution admits `prefix` given the vendor's
    /// default-route VSB.
    pub fn redistribution_admits(&self, prefix: Ipv4Prefix) -> bool {
        !prefix.is_default() || self.vsb.redistribute_default_route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::{parse_config, Vendor};
    use hoyan_nettypes::{pfx, AsPath};

    fn model(vendor: Vendor, extra: &str) -> BehaviorModel {
        let text = format!(
            "hostname R\nvendor {}\nrouter bgp 65000\n neighbor E remote-as 65001\n neighbor I remote-as 65000\n{}",
            vendor.letter(),
            extra
        );
        let cfg = parse_config(&text).unwrap();
        let vsb = VsbProfile::ground_truth(vendor);
        BehaviorModel::new(cfg, vsb)
    }

    fn neighbor<'a>(m: &'a BehaviorModel, peer: &str) -> &'a Neighbor {
        m.config.bgp.as_ref().unwrap().neighbor(peer).unwrap()
    }

    #[test]
    fn session_kind_from_as_numbers() {
        let m = model(Vendor::A, "");
        assert_eq!(m.session_kind(neighbor(&m, "E")), SessionKind::Ebgp);
        assert_eq!(m.session_kind(neighbor(&m, "I")), SessionKind::Ibgp);
    }

    #[test]
    fn ebgp_loop_is_rejected_without_allowas_in() {
        let m = model(Vendor::A, "");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_slice(&[65001, 65000, 64999]);
        let n = neighbor(&m, "E");
        assert!(m
            .control_ingress(n, SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .is_none());

        let m2 = model(Vendor::A, " neighbor E allowas-in\n");
        let n2 = neighbor(&m2, "E");
        assert!(m2
            .control_ingress(n2, SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .is_some());
    }

    #[test]
    fn as_repetition_vsb() {
        // Vendor A rejects repeated ASes, vendor B accepts (Table 2 row 5).
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_slice(&[65001, 64999, 65001]);
        let ma = model(Vendor::A, "");
        assert!(ma
            .control_ingress(neighbor(&ma, "E"), SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .is_none());
        let mb = model(Vendor::B, "");
        assert!(mb
            .control_ingress(neighbor(&mb, "E"), SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .is_some());
    }

    #[test]
    fn neighbor_weight_applies_unless_policy_set_one() {
        let m = model(Vendor::A, " neighbor E weight 77\n");
        let attrs = RouteAttrs::default();
        let out = m
            .control_ingress(neighbor(&m, "E"), SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(out.weight, 77);
    }

    #[test]
    fn egress_resets_weight_and_prepends_as() {
        let m = model(Vendor::A, "");
        let mut attrs = RouteAttrs::default();
        attrs.weight = 500;
        attrs.as_path = AsPath::from_slice(&[64999]);
        let out = m
            .control_egress(neighbor(&m, "E"), SessionKind::Ebgp, pfx("10.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(out.attrs.weight, 0);
        assert_eq!(out.attrs.as_path.asns(), &[65000, 64999]);
        assert!(out.next_hop_self);
    }

    #[test]
    fn ibgp_egress_does_not_prepend() {
        let m = model(Vendor::A, "");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_slice(&[64999]);
        attrs.local_pref = 300;
        let out = m
            .control_egress(neighbor(&m, "I"), SessionKind::Ibgp, pfx("10.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(out.attrs.as_path.asns(), &[64999]);
        assert_eq!(out.attrs.local_pref, 300); // kept within the AS
        assert!(!out.next_hop_self); // vendor A, no next-hop-self
    }

    #[test]
    fn self_next_hop_vsb_forces_rewrite_on_ibgp() {
        let mb = model(Vendor::B, "");
        let attrs = RouteAttrs::default();
        let out = mb
            .control_egress(neighbor(&mb, "I"), SessionKind::Ibgp, pfx("10.0.0.0/8"), &attrs)
            .unwrap();
        assert!(out.next_hop_self, "vendor B auto next-hop-self VSB");
    }

    #[test]
    fn community_stripping_vsb() {
        let mut attrs = RouteAttrs::default();
        attrs.communities.add("100:920".parse().unwrap());
        attrs.communities.add("ext:100:1".parse().unwrap());
        let pfx9 = pfx("9.0.0.0/8");

        let ma = model(Vendor::A, "");
        let a = ma
            .control_egress(neighbor(&ma, "E"), SessionKind::Ebgp, pfx9, &attrs)
            .unwrap();
        assert_eq!(a.attrs.communities.len(), 2, "vendor A keeps");

        let mb = model(Vendor::B, "");
        let b = mb
            .control_egress(neighbor(&mb, "E"), SessionKind::Ebgp, pfx9, &attrs)
            .unwrap();
        assert!(b.attrs.communities.is_empty(), "vendor B strips all");

        let mc = model(Vendor::C, "");
        let c = mc
            .control_egress(neighbor(&mc, "E"), SessionKind::Ebgp, pfx9, &attrs)
            .unwrap();
        assert_eq!(c.attrs.communities.len(), 1, "vendor C strips extended");
        assert!(c.attrs.communities.iter().all(|c| !c.extended));
    }

    #[test]
    fn remove_private_as_vsb_semantics() {
        let extra = " neighbor E remove-private-as\n";
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_slice(&[64512, 100, 64513, 200]);

        let ma = model(Vendor::A, extra);
        let a = ma
            .control_egress(neighbor(&ma, "E"), SessionKind::Ebgp, pfx("9.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(a.attrs.as_path.asns(), &[65000, 100, 200], "vendor A removes all");

        let mb = model(Vendor::B, extra);
        let b = mb
            .control_egress(neighbor(&mb, "E"), SessionKind::Ebgp, pfx("9.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(
            b.attrs.as_path.asns(),
            &[65000, 100, 64513, 200],
            "vendor B removes only the leading run"
        );
    }

    #[test]
    fn local_as_vsb_semantics() {
        let extra = " neighbor E local-as 64900\n";
        let attrs = RouteAttrs::default();

        let ma = model(Vendor::A, extra);
        let a = ma
            .control_egress(neighbor(&ma, "E"), SessionKind::Ebgp, pfx("9.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(a.attrs.as_path.asns(), &[64900], "old AS only");

        let mb = model(Vendor::B, extra);
        let b = mb
            .control_egress(neighbor(&mb, "E"), SessionKind::Ebgp, pfx("9.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(b.attrs.as_path.asns(), &[64900, 65000], "old and new");
    }

    #[test]
    fn ebgp_egress_resets_local_pref() {
        let m = model(Vendor::A, "");
        let mut attrs = RouteAttrs::default();
        attrs.local_pref = 900;
        let out = m
            .control_egress(neighbor(&m, "E"), SessionKind::Ebgp, pfx("9.0.0.0/8"), &attrs)
            .unwrap();
        assert_eq!(out.attrs.local_pref, DEFAULT_LOCAL_PREF);
    }

    #[test]
    fn rr_advertisement_matrix() {
        let m = model(Vendor::A, " neighbor I route-reflector-client\n");
        let client = neighbor(&m, "I");
        let m2 = model(Vendor::A, "");
        let nonclient = neighbor(&m2, "I");
        let e = neighbor(&m, "E");

        // Local/eBGP-learned go everywhere.
        for lf in [LearnedFrom::Local, LearnedFrom::Ebgp] {
            assert!(m.may_advertise(lf, SessionKind::Ibgp, nonclient));
            assert!(m.may_advertise(lf, SessionKind::Ebgp, e));
        }
        // iBGP-learned to eBGP: yes.
        assert!(m.may_advertise(LearnedFrom::IbgpNonClient, SessionKind::Ebgp, e));
        // From non-client to non-client: no (classic iBGP full-mesh rule).
        assert!(!m.may_advertise(LearnedFrom::IbgpNonClient, SessionKind::Ibgp, nonclient));
        // From non-client to client: reflected.
        assert!(m.may_advertise(LearnedFrom::IbgpNonClient, SessionKind::Ibgp, client));
        // From client to anyone: reflected.
        assert!(m.may_advertise(LearnedFrom::IbgpClient, SessionKind::Ibgp, nonclient));
    }

    #[test]
    fn redistribution_default_route_vsb() {
        let ma = model(Vendor::A, "");
        assert!(!ma.redistribution_admits(pfx("0.0.0.0/0")));
        assert!(ma.redistribution_admits(pfx("10.0.0.0/8")));
        let mb = model(Vendor::B, "");
        assert!(mb.redistribution_admits(pfx("0.0.0.0/0")));
    }

    #[test]
    fn figure1_egress_weight_rule() {
        // A's egress policy to B enlarges the weight 0 -> 100; the update as
        // received by B carries weight 100.
        let m = model(
            Vendor::A,
            " neighbor I route-map W out\nroute-map W permit 10\n set weight 100\n",
        );
        let attrs = RouteAttrs::default();
        let out = m
            .control_egress(neighbor(&m, "I"), SessionKind::Ibgp, pfx("10.0.1.0/24"), &attrs)
            .unwrap();
        assert_eq!(out.attrs.weight, 100);
    }
}
