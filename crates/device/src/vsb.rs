//! Vendor-specific behavior (VSB) profiles.
//!
//! A [`VsbProfile`] captures the eight behavior switches of the paper's
//! Table 2. Each switch is a semantic default that vendors implement
//! differently and that no configuration line spells out — exactly the class
//! of discrepancy the behavior model tuner exists to discover. The
//! *verifier's assumption* about a vendor and the vendor's *actual* behavior
//! are both `VsbProfile`s; a flaw in the model is a field where they differ,
//! and a "patch" (§6) is a field assignment.

use hoyan_config::Vendor;

/// How a vendor treats communities on outbound BGP updates by default.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommunityHandling {
    /// Communities are kept (sent to the peer).
    Keep,
    /// All communities are stripped unless explicitly sent.
    StripAll,
    /// Only extended communities are stripped.
    StripExtended,
}

/// `remove-private-AS` semantics (the example VSB from the paper's intro).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RemovePrivateAs {
    /// Remove *every* private AS number from the path.
    All,
    /// Remove private AS numbers only until the first public one.
    LeadingOnly,
}

/// Which AS numbers a router under `local-as` migration puts in the path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalAsMode {
    /// Only the configured (old) local AS.
    OldOnly,
    /// Both the old and the real (new) AS — lengthens the path.
    OldAndNew,
}

/// The eight vendor-specific behaviors of Table 2, as model parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VsbProfile {
    /// "default ACL": permit (true) or deny packets matching no explicit
    /// ACL entry. Affected 87.5% of devices in the paper.
    pub default_acl_permit: bool,
    /// "default route policy": accept (true) or reject updates matching no
    /// explicit route-map entry. Affected 82.83%.
    pub default_policy_permit: bool,
    /// "(ext) community": outbound community handling. Affected 63.91%.
    pub community_handling: CommunityHandling,
    /// "route redistribution": whether 0.0.0.0/0 is redistributed into BGP
    /// when redistribution is configured. Affected 13.26%.
    pub redistribute_default_route: bool,
    /// "AS loop": whether updates whose AS path repeats an AS number are
    /// accepted. Affected 8.63%.
    pub allow_as_repetition: bool,
    /// "remove private AS" semantics. Affected 7.38%.
    pub remove_private_as: RemovePrivateAs,
    /// "self-next-hop": whether the router silently rewrites itself as the
    /// next hop when announcing iBGP updates (to VPN peers). Affected 6.52%.
    pub self_next_hop_on_ibgp: bool,
    /// "local AS": path contents during AS migration. Affected 1.32%.
    pub local_as_mode: LocalAsMode,
}

impl VsbProfile {
    /// The *actual* behavior of each synthetic vendor. This is what the
    /// ground-truth oracle simulator runs; a freshly deployed verifier does
    /// not know these (see [`VsbProfile::naive_assumption`]).
    pub fn ground_truth(vendor: Vendor) -> VsbProfile {
        match vendor {
            Vendor::A => VsbProfile {
                default_acl_permit: false,
                default_policy_permit: true,
                community_handling: CommunityHandling::Keep,
                redistribute_default_route: false,
                allow_as_repetition: false,
                remove_private_as: RemovePrivateAs::All,
                self_next_hop_on_ibgp: false,
                local_as_mode: LocalAsMode::OldOnly,
            },
            Vendor::B => VsbProfile {
                default_acl_permit: true,
                default_policy_permit: false,
                community_handling: CommunityHandling::StripAll,
                redistribute_default_route: true,
                allow_as_repetition: true,
                remove_private_as: RemovePrivateAs::LeadingOnly,
                self_next_hop_on_ibgp: true,
                local_as_mode: LocalAsMode::OldAndNew,
            },
            Vendor::C => VsbProfile {
                default_acl_permit: true,
                default_policy_permit: true,
                community_handling: CommunityHandling::StripExtended,
                redistribute_default_route: false,
                allow_as_repetition: false,
                remove_private_as: RemovePrivateAs::LeadingOnly,
                self_next_hop_on_ibgp: false,
                local_as_mode: LocalAsMode::OldAndNew,
            },
        }
    }

    /// The assumption a verifier naturally starts from: every vendor behaves
    /// like the majority vendor (A). The gap between this and
    /// [`VsbProfile::ground_truth`] is what drives the Figure 14 accuracy
    /// curve from <50% to ~100% as the tuner discovers VSBs.
    pub fn naive_assumption(_vendor: Vendor) -> VsbProfile {
        VsbProfile::ground_truth(Vendor::A)
    }

    /// Names of the fields on which `self` and `other` differ — the units
    /// the tuner localizes and patches, matching Table 2 row names.
    pub fn diff(&self, other: &VsbProfile) -> Vec<VsbKind> {
        let mut out = Vec::new();
        if self.default_acl_permit != other.default_acl_permit {
            out.push(VsbKind::DefaultAcl);
        }
        if self.default_policy_permit != other.default_policy_permit {
            out.push(VsbKind::DefaultRoutePolicy);
        }
        if self.community_handling != other.community_handling {
            out.push(VsbKind::Community);
        }
        if self.redistribute_default_route != other.redistribute_default_route {
            out.push(VsbKind::RouteRedistribution);
        }
        if self.allow_as_repetition != other.allow_as_repetition {
            out.push(VsbKind::AsLoop);
        }
        if self.remove_private_as != other.remove_private_as {
            out.push(VsbKind::RemovePrivateAs);
        }
        if self.self_next_hop_on_ibgp != other.self_next_hop_on_ibgp {
            out.push(VsbKind::SelfNextHop);
        }
        if self.local_as_mode != other.local_as_mode {
            out.push(VsbKind::LocalAs);
        }
        out
    }

    /// Copies the field identified by `kind` from `truth` into `self` — the
    /// "patch" an operator writes once the tuner localizes a VSB.
    pub fn apply_patch(&mut self, kind: VsbKind, truth: &VsbProfile) {
        match kind {
            VsbKind::DefaultAcl => self.default_acl_permit = truth.default_acl_permit,
            VsbKind::DefaultRoutePolicy => {
                self.default_policy_permit = truth.default_policy_permit
            }
            VsbKind::Community => self.community_handling = truth.community_handling,
            VsbKind::RouteRedistribution => {
                self.redistribute_default_route = truth.redistribute_default_route
            }
            VsbKind::AsLoop => self.allow_as_repetition = truth.allow_as_repetition,
            VsbKind::RemovePrivateAs => self.remove_private_as = truth.remove_private_as,
            VsbKind::SelfNextHop => self.self_next_hop_on_ibgp = truth.self_next_hop_on_ibgp,
            VsbKind::LocalAs => self.local_as_mode = truth.local_as_mode,
        }
    }
}

/// The eight VSB classes of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum VsbKind {
    /// Default ACL action.
    DefaultAcl,
    /// Default route-policy action.
    DefaultRoutePolicy,
    /// (Ext) community stripping.
    Community,
    /// Default-route redistribution.
    RouteRedistribution,
    /// AS-path repetition tolerance.
    AsLoop,
    /// remove-private-AS semantics.
    RemovePrivateAs,
    /// Self-next-hop on iBGP.
    SelfNextHop,
    /// local-AS path contents.
    LocalAs,
}

impl VsbKind {
    /// All eight kinds, in Table 2 order.
    pub const ALL: [VsbKind; 8] = [
        VsbKind::DefaultAcl,
        VsbKind::DefaultRoutePolicy,
        VsbKind::Community,
        VsbKind::RouteRedistribution,
        VsbKind::AsLoop,
        VsbKind::RemovePrivateAs,
        VsbKind::SelfNextHop,
        VsbKind::LocalAs,
    ];

    /// Table 2 row name.
    pub fn name(self) -> &'static str {
        match self {
            VsbKind::DefaultAcl => "default ACL",
            VsbKind::DefaultRoutePolicy => "default route policy",
            VsbKind::Community => "(ext) community",
            VsbKind::RouteRedistribution => "route redistribution",
            VsbKind::AsLoop => "AS loop",
            VsbKind::RemovePrivateAs => "remove private AS",
            VsbKind::SelfNextHop => "self-next-hop",
            VsbKind::LocalAs => "local AS",
        }
    }

    /// Lines of model patch code the paper reports for this VSB ("#
    /// patch-lines" column of Table 2); used to report the same table.
    pub fn paper_patch_lines(self) -> usize {
        match self {
            VsbKind::DefaultAcl => 40,
            VsbKind::DefaultRoutePolicy => 39,
            VsbKind::Community => 46,
            VsbKind::RouteRedistribution => 30,
            VsbKind::AsLoop => 26,
            VsbKind::RemovePrivateAs => 66,
            VsbKind::SelfNextHop => 13,
            VsbKind::LocalAs => 17,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_a_is_the_naive_assumption() {
        for v in [Vendor::A, Vendor::B, Vendor::C] {
            assert_eq!(
                VsbProfile::naive_assumption(v),
                VsbProfile::ground_truth(Vendor::A)
            );
        }
    }

    #[test]
    fn vendor_a_model_is_already_correct() {
        let truth = VsbProfile::ground_truth(Vendor::A);
        let assumed = VsbProfile::naive_assumption(Vendor::A);
        assert!(assumed.diff(&truth).is_empty());
    }

    #[test]
    fn vendor_b_differs_on_all_eight() {
        let truth = VsbProfile::ground_truth(Vendor::B);
        let assumed = VsbProfile::naive_assumption(Vendor::B);
        assert_eq!(assumed.diff(&truth).len(), 8);
    }

    #[test]
    fn patches_converge_to_truth() {
        let truth = VsbProfile::ground_truth(Vendor::C);
        let mut model = VsbProfile::naive_assumption(Vendor::C);
        let diffs = model.diff(&truth);
        for kind in diffs {
            model.apply_patch(kind, &truth);
        }
        assert_eq!(model, truth);
        assert!(model.diff(&truth).is_empty());
    }

    #[test]
    fn table2_metadata_is_complete() {
        for k in VsbKind::ALL {
            assert!(!k.name().is_empty());
            assert!(k.paper_patch_lines() > 0);
        }
    }
}
