//! Route-map and ACL evaluation — the "match-action tables" of the device
//! behavior model's ingress and egress policies (Figure 3).

use hoyan_config::{
    AclEntry, AclProto, Action, DeviceConfig, MatchClause, RouteMap, SetClause,
};
use hoyan_nettypes::{Ipv4Addr, Ipv4Prefix, RouteAttrs};

use crate::vsb::VsbProfile;

/// A data-plane packet, as much of it as ACLs can see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: AclProto,
}

/// The result of running a route through a policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Route permitted, with (possibly rewritten) attributes.
    Permit(RouteAttrs),
    /// Route denied.
    Deny,
}

impl PolicyVerdict {
    /// The attributes if permitted.
    pub fn permitted(self) -> Option<RouteAttrs> {
        match self {
            PolicyVerdict::Permit(a) => Some(a),
            PolicyVerdict::Deny => None,
        }
    }
}

fn clause_matches(
    cfg: &DeviceConfig,
    clause: &MatchClause,
    prefix: Ipv4Prefix,
    attrs: &RouteAttrs,
) -> bool {
    match clause {
        MatchClause::PrefixList(name) => cfg
            .prefix_lists
            .get(name)
            .is_some_and(|pl| pl.permits(prefix)),
        MatchClause::CommunityList(name) => cfg.community_lists.get(name).is_some_and(|cl| {
            attrs.communities.iter().any(|c| {
                for (action, entry) in &cl.entries {
                    if *entry == c {
                        return *action == Action::Permit;
                    }
                }
                false
            })
        }),
        MatchClause::Community(c) => attrs.communities.contains(*c),
        MatchClause::Prefix(p) => *p == prefix,
        MatchClause::AsPathContains(asn) => attrs.as_path.contains(*asn),
    }
}

fn apply_set(set: &SetClause, attrs: &mut RouteAttrs) {
    match set {
        SetClause::LocalPref(v) => attrs.local_pref = *v,
        SetClause::Weight(v) => attrs.weight = *v,
        SetClause::Med(v) => attrs.med = *v,
        SetClause::Community {
            community,
            additive,
        } => {
            if !*additive {
                attrs.communities = attrs.communities.cleared();
            }
            attrs.communities.add(*community);
        }
        SetClause::StripCommunities => attrs.communities = attrs.communities.cleared(),
        SetClause::Prepend(asns) => attrs.as_path = attrs.as_path.prepend_all(asns),
    }
}

/// Runs `route_map` over `(prefix, attrs)`. Entries are evaluated in
/// sequence order; the first whose match clauses all hold decides. A route
/// matching *no* entry is decided by the vendor's default-policy VSB.
pub fn eval_route_map(
    cfg: &DeviceConfig,
    vsb: &VsbProfile,
    route_map: &RouteMap,
    prefix: Ipv4Prefix,
    attrs: &RouteAttrs,
) -> PolicyVerdict {
    for entry in &route_map.entries {
        let all_match = entry
            .matches
            .iter()
            .all(|m| clause_matches(cfg, m, prefix, attrs));
        if all_match {
            return match entry.action {
                Action::Deny => PolicyVerdict::Deny,
                Action::Permit => {
                    let mut out = attrs.clone();
                    for s in &entry.sets {
                        apply_set(s, &mut out);
                    }
                    PolicyVerdict::Permit(out)
                }
            };
        }
    }
    // No entry matched: the "default route policy" VSB decides.
    if vsb.default_policy_permit {
        PolicyVerdict::Permit(attrs.clone())
    } else {
        PolicyVerdict::Deny
    }
}

/// Runs the named route-map if configured; `None` (no policy bound to the
/// session) always permits unchanged — the VSB applies only when a policy
/// exists but nothing matches.
pub fn eval_optional_route_map(
    cfg: &DeviceConfig,
    vsb: &VsbProfile,
    name: Option<&str>,
    prefix: Ipv4Prefix,
    attrs: &RouteAttrs,
) -> PolicyVerdict {
    match name {
        None => PolicyVerdict::Permit(attrs.clone()),
        Some(n) => match cfg.route_maps.get(n) {
            // Binding a nonexistent route-map behaves like an empty one:
            // the default-policy VSB decides everything.
            None => {
                if vsb.default_policy_permit {
                    PolicyVerdict::Permit(attrs.clone())
                } else {
                    PolicyVerdict::Deny
                }
            }
            Some(rm) => eval_route_map(cfg, vsb, rm, prefix, attrs),
        },
    }
}

fn acl_entry_matches(e: &AclEntry, p: &Packet) -> bool {
    let proto_ok = matches!(e.proto, AclProto::Ip) || e.proto == p.proto;
    let src_ok = e.src.is_none_or(|s| s.contains_addr(p.src));
    let dst_ok = e.dst.is_none_or(|d| d.contains_addr(p.dst));
    proto_ok && src_ok && dst_ok
}

/// Evaluates a data-plane ACL over a packet. A packet matching no entry is
/// decided by the vendor's default-ACL VSB; an absent binding permits.
pub fn eval_acl(
    cfg: &DeviceConfig,
    vsb: &VsbProfile,
    acl_name: Option<&str>,
    packet: &Packet,
) -> bool {
    let Some(name) = acl_name else {
        return true;
    };
    let Some(entries) = cfg.acls.get(name) else {
        return vsb.default_acl_permit;
    };
    for e in entries {
        if acl_entry_matches(e, packet) {
            return e.action == Action::Permit;
        }
    }
    vsb.default_acl_permit
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_config::Vendor;
    use hoyan_nettypes::pfx;

    fn cfg() -> DeviceConfig {
        parse_config(
            r#"
hostname R
ip prefix-list CUST permit 10.0.0.0/8 ge 9 le 24
ip community-list GOLD permit 100:920
route-map RM permit 10
  match prefix-list CUST
  set local-preference 300
route-map RM permit 20
  match community-list GOLD
  set weight 50
route-map RM deny 30
  match prefix 192.168.0.0/16
access-list EDGE deny udp any 10.0.0.0/8
access-list EDGE permit ip any any
"#,
        )
        .unwrap()
    }

    fn vsb(permit: bool) -> VsbProfile {
        let mut v = VsbProfile::ground_truth(Vendor::A);
        v.default_policy_permit = permit;
        v.default_acl_permit = permit;
        v
    }

    #[test]
    fn first_matching_entry_decides() {
        let cfg = cfg();
        let rm = &cfg.route_maps["RM"];
        let mut attrs = RouteAttrs::default();
        attrs.communities.add("100:920".parse().unwrap());
        // Matches entry 10 (prefix list) before entry 20 (community list).
        let v = eval_route_map(&cfg, &vsb(true), rm, pfx("10.1.0.0/16"), &attrs);
        let out = v.permitted().unwrap();
        assert_eq!(out.local_pref, 300);
        assert_eq!(out.weight, 0); // entry 20's set not applied
    }

    #[test]
    fn later_entry_matches_when_earlier_does_not() {
        let cfg = cfg();
        let rm = &cfg.route_maps["RM"];
        let mut attrs = RouteAttrs::default();
        attrs.communities.add("100:920".parse().unwrap());
        let v = eval_route_map(&cfg, &vsb(false), rm, pfx("172.16.0.0/12"), &attrs);
        let out = v.permitted().unwrap();
        assert_eq!(out.weight, 50);
        assert_eq!(out.local_pref, 100);
    }

    #[test]
    fn deny_entry_rejects() {
        let cfg = cfg();
        let rm = &cfg.route_maps["RM"];
        let attrs = RouteAttrs::default();
        let v = eval_route_map(&cfg, &vsb(true), rm, pfx("192.168.0.0/16"), &attrs);
        assert_eq!(v, PolicyVerdict::Deny);
    }

    #[test]
    fn default_policy_vsb_decides_unmatched() {
        let cfg = cfg();
        let rm = &cfg.route_maps["RM"];
        let attrs = RouteAttrs::default();
        // 172.16/12 without the community matches nothing.
        let permissive = eval_route_map(&cfg, &vsb(true), rm, pfx("172.16.0.0/12"), &attrs);
        assert!(permissive.permitted().is_some());
        let strict = eval_route_map(&cfg, &vsb(false), rm, pfx("172.16.0.0/12"), &attrs);
        assert_eq!(strict, PolicyVerdict::Deny);
    }

    #[test]
    fn unbound_route_map_always_permits() {
        let cfg = cfg();
        let attrs = RouteAttrs::default();
        let v = eval_optional_route_map(&cfg, &vsb(false), None, pfx("172.16.0.0/12"), &attrs);
        assert!(v.permitted().is_some());
    }

    #[test]
    fn missing_route_map_defers_to_vsb() {
        let cfg = cfg();
        let attrs = RouteAttrs::default();
        let v = eval_optional_route_map(&cfg, &vsb(false), Some("NOPE"), pfx("10.1.0.0/16"), &attrs);
        assert_eq!(v, PolicyVerdict::Deny);
        let v = eval_optional_route_map(&cfg, &vsb(true), Some("NOPE"), pfx("10.1.0.0/16"), &attrs);
        assert!(v.permitted().is_some());
    }

    #[test]
    fn acl_protocol_and_prefix_matching() {
        let cfg = cfg();
        let udp_in = Packet {
            src: "1.2.3.4".parse().unwrap(),
            dst: "10.5.0.1".parse().unwrap(),
            proto: AclProto::Udp,
        };
        let tcp_in = Packet {
            proto: AclProto::Tcp,
            ..udp_in
        };
        assert!(!eval_acl(&cfg, &vsb(true), Some("EDGE"), &udp_in));
        assert!(eval_acl(&cfg, &vsb(true), Some("EDGE"), &tcp_in));
        // Unbound ACL permits regardless of VSB.
        assert!(eval_acl(&cfg, &vsb(false), None, &udp_in));
    }

    #[test]
    fn default_acl_vsb_decides_unmatched_packet() {
        let mut cfg = cfg();
        // An ACL with only a narrow deny: packets outside it hit the VSB.
        cfg.acls.insert(
            "NARROW".into(),
            vec![AclEntry {
                action: Action::Deny,
                proto: AclProto::Ip,
                src: None,
                dst: Some(pfx("192.168.0.0/16")),
            }],
        );
        let p = Packet {
            src: "1.2.3.4".parse().unwrap(),
            dst: "8.8.8.8".parse().unwrap(),
            proto: AclProto::Tcp,
        };
        assert!(eval_acl(&cfg, &vsb(true), Some("NARROW"), &p));
        assert!(!eval_acl(&cfg, &vsb(false), Some("NARROW"), &p));
    }

    #[test]
    fn set_community_replace_vs_additive() {
        let cfg = parse_config(
            "hostname R\nroute-map A permit 10\n set community 1:1\nroute-map B permit 10\n set community 1:1 additive\n",
        )
        .unwrap();
        let mut attrs = RouteAttrs::default();
        attrs.communities.add("2:2".parse().unwrap());
        let va = eval_route_map(&cfg, &vsb(true), &cfg.route_maps["A"], pfx("10.0.0.0/8"), &attrs);
        assert_eq!(va.permitted().unwrap().communities.len(), 1);
        let vb = eval_route_map(&cfg, &vsb(true), &cfg.route_maps["B"], pfx("10.0.0.0/8"), &attrs);
        assert_eq!(vb.permitted().unwrap().communities.len(), 2);
    }
}
