#![warn(missing_docs)]

//! Device behavior models for Hoyan.
//!
//! "A concrete device behavior model is generated from the device
//! configuration and the vendor specific behavior modeler of the device
//! type" (§4.2). This crate is that generator:
//!
//! - [`vsb`]: the eight Table 2 vendor-specific behaviors as an explicit
//!   [`VsbProfile`], with ground-truth profiles per vendor, the naive
//!   assumption a fresh verifier starts from, diffing, and patching;
//! - [`policy`]: route-map and ACL evaluation (the match-action ingress and
//!   egress policies of Figure 3);
//! - [`selector`]: the BGP decision process, extended with the transitive
//!   IS-IS weight of Appendix C;
//! - [`model`]: the per-device [`BehaviorModel`] combining them into the
//!   control-plane and data-plane pipelines the simulator drives.

pub mod model;
pub mod policy;
pub mod selector;
pub mod vsb;

pub use model::{BehaviorModel, EgressUpdate, LearnedFrom, SessionKind};
pub use policy::{eval_acl, eval_optional_route_map, eval_route_map, Packet, PolicyVerdict};
pub use selector::{cmp_candidates, rank, Candidate};
pub use vsb::{CommunityHandling, LocalAsMode, RemovePrivateAs, VsbKind, VsbProfile};
