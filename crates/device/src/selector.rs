//! The route selector: the BGP decision process, extended with the
//! transitive IS-IS weight attribute of Appendix C.
//!
//! Appendix C translates IS-IS into a path-vector protocol whose routes
//! carry an accumulated weight ranked *above* AS-path length; using one
//! comparator for both protocols lets one propagation engine serve both.

use std::cmp::Ordering;

use hoyan_nettypes::RouteAttrs;

/// Everything route selection may consult about one candidate route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The route's attributes.
    pub attrs: RouteAttrs,
    /// Learned over eBGP (preferred over iBGP late in the process).
    pub from_ebgp: bool,
    /// IGP metric to the next hop (lower preferred).
    pub igp_metric: u64,
    /// Number of iBGP reflection hops the route took (a proxy for BGP's
    /// cluster-list-length rule; lower preferred).
    pub ibgp_hops: u32,
    /// Router id of the advertising peer (final deterministic tie-break;
    /// lower preferred).
    pub peer_router_id: u32,
}

impl Candidate {
    /// A candidate with neutral tie-breakers.
    pub fn new(attrs: RouteAttrs) -> Self {
        Candidate {
            attrs,
            from_ebgp: true,
            igp_metric: 0,
            ibgp_hops: 0,
            peer_router_id: 0,
        }
    }
}

/// Compares two candidates; `Ordering::Less` means `a` is **better**.
///
/// The steps, in order (Figure 3's route selector):
/// 1. higher weight;
/// 2. higher local preference;
/// 3. lower accumulated IS-IS weight (Appendix C — outranks AS-path length);
/// 4. shorter AS path;
/// 5. lower origin code;
/// 6. lower MED;
/// 7. eBGP over iBGP;
/// 8. lower IGP metric to the next hop;
/// 9. fewer iBGP reflection hops (the cluster-list-length rule);
/// 10. lower peer router id.
pub fn cmp_candidates(a: &Candidate, b: &Candidate) -> Ordering {
    b.attrs
        .weight
        .cmp(&a.attrs.weight)
        .then(b.attrs.local_pref.cmp(&a.attrs.local_pref))
        .then(a.attrs.isis_weight.cmp(&b.attrs.isis_weight))
        .then(a.attrs.as_path.len().cmp(&b.attrs.as_path.len()))
        .then(a.attrs.origin.cmp(&b.attrs.origin))
        .then(a.attrs.med.cmp(&b.attrs.med))
        .then(b.from_ebgp.cmp(&a.from_ebgp))
        .then(a.igp_metric.cmp(&b.igp_metric))
        .then(a.ibgp_hops.cmp(&b.ibgp_hops))
        .then(a.peer_router_id.cmp(&b.peer_router_id))
}

/// Sorts candidates best-first. The sort is stable, so equal candidates
/// keep arrival order (and a final router-id tie-break makes true ties rare).
pub fn rank(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(cmp_candidates);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_nettypes::{AsPath, Origin};

    fn base() -> Candidate {
        Candidate::new(RouteAttrs::default())
    }

    #[test]
    fn weight_beats_local_pref() {
        // The Figure 1 lesson: "larger weight overrides the larger local
        // preference".
        let mut hi_weight = base();
        hi_weight.attrs.weight = 100;
        hi_weight.attrs.local_pref = 300;
        let mut hi_lp = base();
        hi_lp.attrs.local_pref = 500;
        assert_eq!(cmp_candidates(&hi_weight, &hi_lp), Ordering::Less);
    }

    #[test]
    fn local_pref_beats_path_length() {
        let mut a = base();
        a.attrs.local_pref = 200;
        a.attrs.as_path = AsPath::from_slice(&[1, 2, 3, 4]);
        let mut b = base();
        b.attrs.as_path = AsPath::from_slice(&[1]);
        assert_eq!(cmp_candidates(&a, &b), Ordering::Less);
    }

    #[test]
    fn isis_weight_outranks_as_path_length() {
        let mut a = base();
        a.attrs.isis_weight = 10;
        a.attrs.as_path = AsPath::from_slice(&[1, 2, 3]);
        let mut b = base();
        b.attrs.isis_weight = 20;
        b.attrs.as_path = AsPath::from_slice(&[1]);
        assert_eq!(cmp_candidates(&a, &b), Ordering::Less);
    }

    #[test]
    fn shorter_path_wins() {
        let mut a = base();
        a.attrs.as_path = AsPath::from_slice(&[100]);
        let mut b = base();
        b.attrs.as_path = AsPath::from_slice(&[100, 200]);
        assert_eq!(cmp_candidates(&a, &b), Ordering::Less);
        // Figure 4: C ranks r1 (path "100") above r2 (path "100-200").
    }

    #[test]
    fn origin_then_med_then_ebgp() {
        let mut igp = base();
        igp.attrs.origin = Origin::Igp;
        let mut incomplete = base();
        incomplete.attrs.origin = Origin::Incomplete;
        assert_eq!(cmp_candidates(&igp, &incomplete), Ordering::Less);

        let mut low_med = base();
        low_med.attrs.med = 5;
        let mut high_med = base();
        high_med.attrs.med = 50;
        assert_eq!(cmp_candidates(&low_med, &high_med), Ordering::Less);

        let ebgp = base();
        let mut ibgp = base();
        ibgp.from_ebgp = false;
        assert_eq!(cmp_candidates(&ebgp, &ibgp), Ordering::Less);
    }

    #[test]
    fn cluster_list_proxy_breaks_reflection_ties() {
        let direct = base();
        let mut reflected = base();
        reflected.ibgp_hops = 1;
        assert_eq!(cmp_candidates(&direct, &reflected), Ordering::Less);
    }

    #[test]
    fn igp_metric_and_router_id_tiebreaks() {
        let mut near = base();
        near.igp_metric = 10;
        let mut far = base();
        far.igp_metric = 100;
        assert_eq!(cmp_candidates(&near, &far), Ordering::Less);

        let mut low_id = base();
        low_id.peer_router_id = 1;
        let mut high_id = base();
        high_id.peer_router_id = 9;
        assert_eq!(cmp_candidates(&low_id, &high_id), Ordering::Less);
    }

    #[test]
    fn rank_orders_best_first() {
        let mut worst = base();
        worst.attrs.as_path = AsPath::from_slice(&[1, 2, 3]);
        let mut mid = base();
        mid.attrs.as_path = AsPath::from_slice(&[1, 2]);
        let mut best = base();
        best.attrs.weight = 10;
        let ranked = rank(vec![worst.clone(), mid.clone(), best.clone()]);
        assert_eq!(ranked, vec![best, mid, worst]);
    }
}
