//! The typed intermediate representation of a device configuration.

use std::collections::BTreeMap;

use hoyan_nettypes::{AsNum, Community, Ipv4Prefix};

/// The device's vendor. The three synthetic vendors differ in their
/// *default* behaviors — the vendor-specific behaviors (VSBs) of the paper's
/// Table 2 — which are materialized by `hoyan-device::VsbProfile`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Vendor {
    /// Vendor A (the majority vendor on the WAN).
    #[default]
    A,
    /// Vendor B (strips communities by default, among other differences).
    B,
    /// Vendor C.
    C,
}

impl Vendor {
    /// Parses `A`/`B`/`C`.
    pub fn parse(s: &str) -> Option<Vendor> {
        match s {
            "A" | "a" => Some(Vendor::A),
            "B" | "b" => Some(Vendor::B),
            "C" | "c" => Some(Vendor::C),
            _ => None,
        }
    }

    /// The canonical letter.
    pub fn letter(self) -> &'static str {
        match self {
            Vendor::A => "A",
            Vendor::B => "B",
            Vendor::C => "C",
        }
    }
}

/// Permit or deny, as used by prefix-lists, route-maps and ACLs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Accept the matching object.
    Permit,
    /// Reject the matching object.
    Deny,
}

/// One physical interface. Links are derived from `peer`: devices X and Y
/// are connected iff X has an interface with `peer Y` and Y one with
/// `peer X`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceConfig {
    /// Interface name (`eth0`, ...).
    pub name: String,
    /// Hostname of the device at the other end of the link.
    pub peer: String,
    /// IS-IS link metric (defaults to 10 like most IGPs).
    pub link_metric: u32,
    /// Data-plane ACL applied to packets arriving on this interface.
    pub acl_in: Option<String>,
    /// Data-plane ACL applied to packets leaving via this interface.
    pub acl_out: Option<String>,
}

/// One entry of a prefix-list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixListEntry {
    /// Permit or deny.
    pub action: Action,
    /// The prefix to match.
    pub prefix: Ipv4Prefix,
    /// Match prefixes with length `>= ge` inside `prefix`.
    pub ge: Option<u8>,
    /// Match prefixes with length `<= le` inside `prefix`.
    pub le: Option<u8>,
}

impl PrefixListEntry {
    /// Whether `p` matches this entry (ignoring the action).
    pub fn matches(&self, p: Ipv4Prefix) -> bool {
        if !self.prefix.contains(p) {
            return false;
        }
        match (self.ge, self.le) {
            (None, None) => p.len() == self.prefix.len(),
            (ge, le) => {
                let lower = ge.unwrap_or(self.prefix.len());
                let upper = le.unwrap_or(32);
                p.len() >= lower && p.len() <= upper
            }
        }
    }
}

/// An ordered prefix-list. First matching entry decides; an unmatched
/// prefix is denied (prefix-lists have an implicit deny on all vendors —
/// unlike route policies, this is standardized behaviour).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PrefixList {
    /// Entries in match order.
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// Whether `p` is permitted.
    pub fn permits(&self, p: Ipv4Prefix) -> bool {
        for e in &self.entries {
            if e.matches(p) {
                return e.action == Action::Permit;
            }
        }
        false
    }
}

/// An ordered community-list (same implicit-deny convention).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CommunityList {
    /// `(action, community)` pairs in match order.
    pub entries: Vec<(Action, Community)>,
}

/// A match clause inside a route-map entry. All clauses of an entry must
/// match (AND semantics, as on real devices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchClause {
    /// Prefix is permitted by the named prefix-list.
    PrefixList(String),
    /// Route carries a community permitted by the named community-list.
    CommunityList(String),
    /// Route carries this exact community.
    Community(Community),
    /// Exact prefix match.
    Prefix(Ipv4Prefix),
    /// AS path contains the given AS number.
    AsPathContains(AsNum),
}

/// A set clause inside a route-map entry, applied when the entry permits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetClause {
    /// Set local preference.
    LocalPref(u32),
    /// Set the Cisco-style weight.
    Weight(u32),
    /// Set the MED.
    Med(u32),
    /// Add a community (`additive`) or replace the set with it.
    Community {
        /// The community to attach.
        community: Community,
        /// Keep the existing communities and add this one.
        additive: bool,
    },
    /// Remove every community.
    StripCommunities,
    /// Prepend AS numbers to the path.
    Prepend(Vec<AsNum>),
}

/// One `route-map NAME <action> <seq>` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapEntry {
    /// Sequence number; entries are evaluated in ascending order.
    pub seq: u32,
    /// Permit (apply sets, accept) or deny (reject) on match.
    pub action: Action,
    /// Match clauses (empty = match everything).
    pub matches: Vec<MatchClause>,
    /// Set clauses applied on permit.
    pub sets: Vec<SetClause>,
}

/// A named route-map. What happens to a route matching *no* entry is
/// vendor-specific (the "default route policy" VSB).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RouteMap {
    /// Entries sorted by sequence number.
    pub entries: Vec<RouteMapEntry>,
}

/// Data-plane ACL protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AclProto {
    /// Any IP traffic.
    Ip,
    /// TCP only.
    Tcp,
    /// UDP only.
    Udp,
}

/// One data-plane ACL entry. `None` source/destination means `any`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AclEntry {
    /// Permit or deny.
    pub action: Action,
    /// Protocol selector.
    pub proto: AclProto,
    /// Source prefix (None = any).
    pub src: Option<Ipv4Prefix>,
    /// Destination prefix (None = any).
    pub dst: Option<Ipv4Prefix>,
}

/// A BGP route aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aggregate {
    /// The aggregate prefix announced when contributing routes exist.
    pub prefix: Ipv4Prefix,
    /// Suppress the more-specific contributing routes.
    pub summary_only: bool,
}

/// Sources that can be redistributed into BGP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedistSource {
    /// Static routes.
    Static,
    /// IS-IS-learned routes.
    Isis,
}

/// Per-neighbor BGP session configuration. The peer is identified by
/// hostname; the session is eBGP when `remote_as` differs from the local
/// AS and iBGP otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Neighbor {
    /// Peer hostname.
    pub peer: String,
    /// The peer's AS number.
    pub remote_as: AsNum,
    /// Inbound route-map name.
    pub route_map_in: Option<String>,
    /// Outbound route-map name.
    pub route_map_out: Option<String>,
    /// Default weight assigned to routes from this neighbor.
    pub weight: Option<u32>,
    /// Set self as next hop on routes sent to this (iBGP) peer.
    pub next_hop_self: bool,
    /// Remove private AS numbers when sending to this peer (semantics are
    /// the `remove private AS` VSB).
    pub remove_private_as: bool,
    /// Accept routes whose AS path already contains our AS.
    pub allowas_in: bool,
    /// Present this AS number to the peer instead of the router's real AS
    /// (AS-migration; which ASes end up in the path is the `local AS` VSB).
    pub local_as: Option<AsNum>,
    /// This peer is a route-reflector client of ours.
    pub rr_client: bool,
}

impl Neighbor {
    /// A plain neighbor with everything defaulted.
    pub fn new(peer: impl Into<String>, remote_as: AsNum) -> Self {
        Neighbor {
            peer: peer.into(),
            remote_as,
            route_map_in: None,
            route_map_out: None,
            weight: None,
            next_hop_self: false,
            remove_private_as: false,
            allowas_in: false,
            local_as: None,
            rr_client: false,
        }
    }
}

/// The `router bgp` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpConfig {
    /// The local AS number.
    pub asn: AsNum,
    /// Locally originated prefixes (`network` statements).
    pub networks: Vec<Ipv4Prefix>,
    /// Aggregates.
    pub aggregates: Vec<Aggregate>,
    /// Neighbors in declaration order.
    pub neighbors: Vec<Neighbor>,
    /// Redistribution into BGP.
    pub redistribute: Vec<RedistSource>,
}

impl BgpConfig {
    /// An empty BGP block for the given AS.
    pub fn new(asn: AsNum) -> Self {
        BgpConfig {
            asn,
            networks: Vec::new(),
            aggregates: Vec::new(),
            neighbors: Vec::new(),
            redistribute: Vec::new(),
        }
    }

    /// Finds a neighbor block by peer hostname.
    pub fn neighbor(&self, peer: &str) -> Option<&Neighbor> {
        self.neighbors.iter().find(|n| n.peer == peer)
    }

    /// Finds or creates a neighbor block (parser/update helper).
    pub fn neighbor_mut(&mut self, peer: &str, remote_as: AsNum) -> &mut Neighbor {
        if let Some(i) = self.neighbors.iter().position(|n| n.peer == peer) {
            return &mut self.neighbors[i];
        }
        self.neighbors.push(Neighbor::new(peer, remote_as));
        self.neighbors.last_mut().unwrap()
    }
}

/// IS-IS level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IsisLevel {
    /// Level-1 (intra-area).
    L1,
    /// Level-2 (backbone).
    L2,
    /// Both levels (L1/L2 border router).
    #[default]
    L1L2,
}

/// Which link-state IGP the block configures. The paper treats OSPF with
/// the same machinery as IS-IS ("OSPF follows the same process", §5.4), so
/// both parse into one IGP block; adjacency requires matching protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IgpKind {
    /// IS-IS.
    #[default]
    Isis,
    /// OSPF (areas map to IS-IS areas; levels are ignored).
    Ospf,
}

/// The `router isis` / `router ospf` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsisConfig {
    /// Area identifier (L1 routers only exchange within an area).
    pub area: u32,
    /// The router's level.
    pub level: IsisLevel,
    /// IS-IS or OSPF.
    pub protocol: IgpKind,
}

/// One static route. The next hop is a peer hostname (must be a direct
/// neighbor for the route to be usable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Next-hop device.
    pub next_hop: String,
    /// Administrative preference: *lower is more preferred*. Statics
    /// default to 1; the §7.1 outage was a static-preference change
    /// interacting with eBGP preferences of 30.
    pub preference: u32,
}

/// Protocol administrative preferences (administrative distance). Lower
/// wins when FIBs are merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolPreferences {
    /// eBGP-learned routes.
    pub ebgp: u32,
    /// iBGP-learned routes.
    pub ibgp: u32,
    /// IS-IS-learned routes.
    pub isis: u32,
}

impl Default for ProtocolPreferences {
    fn default() -> Self {
        // Industry-common defaults: eBGP 20, IS-IS 115, iBGP 200.
        ProtocolPreferences {
            ebgp: 20,
            ibgp: 200,
            isis: 115,
        }
    }
}

/// A complete parsed device configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Device hostname (unique within a network).
    pub hostname: String,
    /// Vendor (selects the VSB profile).
    pub vendor: Vendor,
    /// Router id used as the final BGP tie-breaker (lower wins).
    pub router_id: u32,
    /// Interfaces; also define the topology via `peer`.
    pub interfaces: Vec<InterfaceConfig>,
    /// Named prefix-lists.
    pub prefix_lists: BTreeMap<String, PrefixList>,
    /// Named community-lists.
    pub community_lists: BTreeMap<String, CommunityList>,
    /// Named route-maps.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Named data-plane ACLs.
    pub acls: BTreeMap<String, Vec<AclEntry>>,
    /// The BGP block, if any.
    pub bgp: Option<BgpConfig>,
    /// The IS-IS block, if any.
    pub isis: Option<IsisConfig>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
    /// Protocol preferences (overridable with `ip protocol-preference`).
    pub preferences: ProtocolPreferences,
}

impl DeviceConfig {
    /// An empty configuration for `hostname`.
    pub fn new(hostname: impl Into<String>) -> Self {
        DeviceConfig {
            hostname: hostname.into(),
            vendor: Vendor::A,
            router_id: 0,
            interfaces: Vec::new(),
            prefix_lists: BTreeMap::new(),
            community_lists: BTreeMap::new(),
            route_maps: BTreeMap::new(),
            acls: BTreeMap::new(),
            bgp: None,
            isis: None,
            static_routes: Vec::new(),
            preferences: ProtocolPreferences::default(),
        }
    }

    /// The interface facing `peer`, if any.
    pub fn interface_to(&self, peer: &str) -> Option<&InterfaceConfig> {
        self.interfaces.iter().find(|i| i.peer == peer)
    }

    /// Total number of configuration lines when emitted — the paper sizes
    /// configurations in lines (O(1000) per router).
    pub fn line_count(&self) -> usize {
        crate::emit::emit_config(self).lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_nettypes::pfx;

    #[test]
    fn prefix_list_entry_exact_match_without_bounds() {
        let e = PrefixListEntry {
            action: Action::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: None,
            le: None,
        };
        assert!(e.matches(pfx("10.0.0.0/8")));
        assert!(!e.matches(pfx("10.1.0.0/16")));
        assert!(!e.matches(pfx("11.0.0.0/8")));
    }

    #[test]
    fn prefix_list_entry_le_ge() {
        let e = PrefixListEntry {
            action: Action::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: Some(16),
            le: Some(24),
        };
        assert!(!e.matches(pfx("10.0.0.0/8")));
        assert!(e.matches(pfx("10.1.0.0/16")));
        assert!(e.matches(pfx("10.1.2.0/24")));
        assert!(!e.matches(pfx("10.1.2.128/25")));
        // le without ge: length range is [prefix.len(), le].
        let e2 = PrefixListEntry {
            action: Action::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: None,
            le: Some(16),
        };
        assert!(e2.matches(pfx("10.0.0.0/8")));
        assert!(e2.matches(pfx("10.3.0.0/16")));
        assert!(!e2.matches(pfx("10.1.2.0/24")));
    }

    #[test]
    fn prefix_list_first_match_wins_and_implicit_deny() {
        let pl = PrefixList {
            entries: vec![
                PrefixListEntry {
                    action: Action::Deny,
                    prefix: pfx("10.9.0.0/16"),
                    ge: None,
                    le: None,
                },
                PrefixListEntry {
                    action: Action::Permit,
                    prefix: pfx("10.0.0.0/8"),
                    ge: Some(8),
                    le: Some(32),
                },
            ],
        };
        assert!(!pl.permits(pfx("10.9.0.0/16")));
        assert!(pl.permits(pfx("10.8.0.0/16")));
        assert!(!pl.permits(pfx("172.16.0.0/12"))); // implicit deny
    }

    #[test]
    fn neighbor_lookup_and_creation() {
        let mut bgp = BgpConfig::new(65000);
        assert!(bgp.neighbor("X").is_none());
        bgp.neighbor_mut("X", 65001).weight = Some(50);
        assert_eq!(bgp.neighbor("X").unwrap().weight, Some(50));
        bgp.neighbor_mut("X", 65001).allowas_in = true;
        assert_eq!(bgp.neighbors.len(), 1);
        assert!(bgp.neighbor("X").unwrap().allowas_in);
    }

    #[test]
    fn default_preferences() {
        let p = ProtocolPreferences::default();
        assert!(p.ebgp < p.isis && p.isis < p.ibgp);
    }
}
