//! Merging incremental operator commands onto a configuration snapshot.
//!
//! §9 of the paper: "what operators write are incremental command lines into
//! devices", and verification needs the *complete* post-update
//! configuration. [`apply_update`] reuses the snapshot parser to interpret
//! an update script, with two extensions:
//!
//! - `no <command>` removes matching configuration (statics, networks,
//!   neighbors, route-map entries, prefix-list entries);
//! - re-declaring a named entity entry *appends* to it exactly like the
//!   parser does for snapshots, and a neighbor subcommand updates the
//!   existing neighbor in place.

use crate::ir::*;
use crate::parse::{parse_config, ParseError};

/// Applies an incremental update script to `cfg`, returning the merged
/// configuration. The snapshot itself is not modified.
pub fn apply_update(cfg: &DeviceConfig, script: &str) -> Result<DeviceConfig, ParseError> {
    let mut merged = cfg.clone();
    let mut additions = String::new();
    for (i, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            additions.push('\n');
            continue;
        }
        if let Some(rest) = line.strip_prefix("no ") {
            apply_removal(&mut merged, rest.trim(), i + 1)?;
            additions.push('\n');
        } else {
            additions.push_str(raw);
            additions.push('\n');
        }
    }

    // Parse the additive part in the context of the merged config by
    // emitting and re-parsing: additions are concatenated after the
    // snapshot so block context and duplicate checks behave like a real
    // merge of commands typed into the running device.
    let snapshot_text = crate::emit::emit_config(&merged);
    let full = format!("{snapshot_text}\n{additions}");
    parse_config(&full).map_err(|e| {
        let snapshot_lines = snapshot_text.lines().count() + 1;
        ParseError {
            line: e.line.saturating_sub(snapshot_lines),
            message: e.message,
        }
    })
}

fn apply_removal(cfg: &mut DeviceConfig, cmd: &str, line: usize) -> Result<(), ParseError> {
    let t: Vec<&str> = cmd.split_whitespace().collect();
    let fail = |msg: String| ParseError { line, message: msg };
    match t.first() {
        Some(&"ip") => match t.get(1) {
            Some(&"route") => {
                let prefix = t
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail("no ip route PREFIX [NEXTHOP]".into()))?;
                let hop = t.get(3).copied();
                let before = cfg.static_routes.len();
                cfg.static_routes
                    .retain(|s| !(s.prefix == prefix && hop.is_none_or(|h| h == s.next_hop)));
                if cfg.static_routes.len() == before {
                    return Err(fail(format!("no matching static route for {prefix}")));
                }
            }
            Some(&"prefix-list") => {
                let name = t.get(2).ok_or_else(|| fail("no ip prefix-list NAME".into()))?;
                if cfg.prefix_lists.remove(*name).is_none() {
                    return Err(fail(format!("prefix-list {name} does not exist")));
                }
            }
            Some(&"community-list") => {
                let name = t
                    .get(2)
                    .ok_or_else(|| fail("no ip community-list NAME".into()))?;
                if cfg.community_lists.remove(*name).is_none() {
                    return Err(fail(format!("community-list {name} does not exist")));
                }
            }
            _ => return Err(fail(format!("cannot remove `{cmd}`"))),
        },
        Some(&"route-map") => {
            // no route-map NAME [SEQ]
            let name = t.get(1).ok_or_else(|| fail("no route-map NAME [SEQ]".into()))?;
            match t.get(2) {
                None => {
                    if cfg.route_maps.remove(*name).is_none() {
                        return Err(fail(format!("route-map {name} does not exist")));
                    }
                }
                Some(seq) => {
                    let seq: u32 = seq
                        .parse()
                        .map_err(|_| fail(format!("bad sequence `{seq}`")))?;
                    let rm = cfg
                        .route_maps
                        .get_mut(*name)
                        .ok_or_else(|| fail(format!("route-map {name} does not exist")))?;
                    let before = rm.entries.len();
                    rm.entries.retain(|e| e.seq != seq);
                    if rm.entries.len() == before {
                        return Err(fail(format!("route-map {name} has no sequence {seq}")));
                    }
                }
            }
        }
        Some(&"neighbor") => {
            // no neighbor HOST — drop the whole neighbor block.
            let peer = t.get(1).ok_or_else(|| fail("no neighbor HOST".into()))?;
            let bgp = cfg
                .bgp
                .as_mut()
                .ok_or_else(|| fail("device has no bgp block".into()))?;
            let before = bgp.neighbors.len();
            bgp.neighbors.retain(|n| n.peer != *peer);
            if bgp.neighbors.len() == before {
                return Err(fail(format!("neighbor {peer} does not exist")));
            }
        }
        Some(&"network") => {
            let prefix = t
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| fail("no network PREFIX".into()))?;
            let bgp = cfg
                .bgp
                .as_mut()
                .ok_or_else(|| fail("device has no bgp block".into()))?;
            let before = bgp.networks.len();
            bgp.networks.retain(|p| *p != prefix);
            if bgp.networks.len() == before {
                return Err(fail(format!("network {prefix} is not announced")));
            }
        }
        Some(&"aggregate-address") => {
            let prefix = t
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| fail("no aggregate-address PREFIX".into()))?;
            let bgp = cfg
                .bgp
                .as_mut()
                .ok_or_else(|| fail("device has no bgp block".into()))?;
            let before = bgp.aggregates.len();
            bgp.aggregates.retain(|a| a.prefix != prefix);
            if bgp.aggregates.len() == before {
                return Err(fail(format!("aggregate {prefix} is not configured")));
            }
        }
        _ => return Err(fail(format!("cannot remove `{cmd}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_nettypes::pfx;

    fn base() -> DeviceConfig {
        parse_config(
            r#"
hostname R1
router bgp 65001
  network 10.0.1.0/24
  neighbor R2 remote-as 65002
  neighbor R2 weight 5
ip route 10.9.0.0/16 R2 preference 1
"#,
        )
        .unwrap()
    }

    #[test]
    fn additive_update_changes_static_preference() {
        // The §7.1 scenario: change static preference from 1 to 150 by
        // removing and re-adding.
        let cfg = base();
        let updated = apply_update(
            &cfg,
            "no ip route 10.9.0.0/16\nip route 10.9.0.0/16 R2 preference 150\n",
        )
        .unwrap();
        assert_eq!(updated.static_routes.len(), 1);
        assert_eq!(updated.static_routes[0].preference, 150);
    }

    #[test]
    fn update_adds_route_map_and_binds_it() {
        let cfg = base();
        let updated = apply_update(
            &cfg,
            "route-map RM permit 10\n set weight 100\nrouter bgp 65001\n neighbor R2 route-map RM in\n",
        )
        .unwrap();
        assert!(updated.route_maps.contains_key("RM"));
        assert_eq!(
            updated.bgp.unwrap().neighbor("R2").unwrap().route_map_in,
            Some("RM".to_string())
        );
    }

    #[test]
    fn removal_of_missing_entity_fails() {
        let cfg = base();
        assert!(apply_update(&cfg, "no ip route 10.8.0.0/16\n").is_err());
        assert!(apply_update(&cfg, "no neighbor R9\n").is_err());
        assert!(apply_update(&cfg, "no route-map NOPE\n").is_err());
    }

    #[test]
    fn remove_neighbor_and_network() {
        let cfg = base();
        let updated = apply_update(&cfg, "no neighbor R2\nno network 10.0.1.0/24\n").unwrap();
        let bgp = updated.bgp.unwrap();
        assert!(bgp.neighbors.is_empty());
        assert!(bgp.networks.is_empty());
    }

    #[test]
    fn snapshot_is_not_mutated() {
        let cfg = base();
        let _ = apply_update(&cfg, "no neighbor R2\n").unwrap();
        assert_eq!(cfg.bgp.as_ref().unwrap().neighbors.len(), 1);
    }

    #[test]
    fn update_survives_roundtrip() {
        let cfg = base();
        let updated = apply_update(&cfg, "ip route 10.10.0.0/16 R2 preference 20\n").unwrap();
        assert!(updated
            .static_routes
            .iter()
            .any(|s| s.prefix == pfx("10.10.0.0/16") && s.preference == 20));
        // Emitting and re-parsing the merged config is stable.
        let text = crate::emit::emit_config(&updated);
        assert_eq!(parse_config(&text).unwrap(), updated);
    }
}
