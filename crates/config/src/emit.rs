//! The configuration pretty-printer: the inverse of [`crate::parse`].
//!
//! `parse(emit(cfg)) == cfg` is enforced by a property test; topogen
//! generates WANs by building [`DeviceConfig`] values and emitting them, so
//! the whole pipeline exercises the parser on every generated network.

use std::fmt::Write as _;

use crate::ir::*;

fn action_str(a: Action) -> &'static str {
    match a {
        Action::Permit => "permit",
        Action::Deny => "deny",
    }
}

/// Renders a [`DeviceConfig`] to configuration text.
pub fn emit_config(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "hostname {}", cfg.hostname).unwrap();
    writeln!(w, "vendor {}", cfg.vendor.letter()).unwrap();
    if cfg.router_id != 0 {
        writeln!(w, "router-id {}", cfg.router_id).unwrap();
    }
    let defaults = ProtocolPreferences::default();
    if cfg.preferences.ebgp != defaults.ebgp {
        writeln!(w, "ip protocol-preference ebgp {}", cfg.preferences.ebgp).unwrap();
    }
    if cfg.preferences.ibgp != defaults.ibgp {
        writeln!(w, "ip protocol-preference ibgp {}", cfg.preferences.ibgp).unwrap();
    }
    if cfg.preferences.isis != defaults.isis {
        writeln!(w, "ip protocol-preference isis {}", cfg.preferences.isis).unwrap();
    }

    for iface in &cfg.interfaces {
        writeln!(w, "interface {}", iface.name).unwrap();
        if !iface.peer.is_empty() {
            writeln!(w, "  peer {}", iface.peer).unwrap();
        }
        if iface.link_metric != 10 {
            writeln!(w, "  link-metric {}", iface.link_metric).unwrap();
        }
        if let Some(acl) = &iface.acl_in {
            writeln!(w, "  access-group {acl} in").unwrap();
        }
        if let Some(acl) = &iface.acl_out {
            writeln!(w, "  access-group {acl} out").unwrap();
        }
    }

    for (name, pl) in &cfg.prefix_lists {
        for e in &pl.entries {
            write!(
                w,
                "ip prefix-list {name} {} {}",
                action_str(e.action),
                e.prefix
            )
            .unwrap();
            if let Some(ge) = e.ge {
                write!(w, " ge {ge}").unwrap();
            }
            if let Some(le) = e.le {
                write!(w, " le {le}").unwrap();
            }
            writeln!(w).unwrap();
        }
    }

    for (name, cl) in &cfg.community_lists {
        for (a, c) in &cl.entries {
            writeln!(w, "ip community-list {name} {} {c}", action_str(*a)).unwrap();
        }
    }

    for (name, entries) in &cfg.acls {
        for e in entries {
            let proto = match e.proto {
                AclProto::Ip => "ip",
                AclProto::Tcp => "tcp",
                AclProto::Udp => "udp",
            };
            let src = e.src.map_or("any".to_string(), |p| p.to_string());
            let dst = e.dst.map_or("any".to_string(), |p| p.to_string());
            writeln!(
                w,
                "access-list {name} {} {proto} {src} {dst}",
                action_str(e.action)
            )
            .unwrap();
        }
    }

    for (name, rm) in &cfg.route_maps {
        for e in &rm.entries {
            writeln!(w, "route-map {name} {} {}", action_str(e.action), e.seq).unwrap();
            for m in &e.matches {
                match m {
                    MatchClause::PrefixList(n) => writeln!(w, "  match prefix-list {n}").unwrap(),
                    MatchClause::CommunityList(n) => {
                        writeln!(w, "  match community-list {n}").unwrap()
                    }
                    MatchClause::Community(c) => writeln!(w, "  match community {c}").unwrap(),
                    MatchClause::Prefix(p) => writeln!(w, "  match prefix {p}").unwrap(),
                    MatchClause::AsPathContains(a) => {
                        writeln!(w, "  match as-path-contains {a}").unwrap()
                    }
                }
            }
            for s in &e.sets {
                match s {
                    SetClause::LocalPref(v) => writeln!(w, "  set local-preference {v}").unwrap(),
                    SetClause::Weight(v) => writeln!(w, "  set weight {v}").unwrap(),
                    SetClause::Med(v) => writeln!(w, "  set med {v}").unwrap(),
                    SetClause::Community {
                        community,
                        additive,
                    } => {
                        if *additive {
                            writeln!(w, "  set community {community} additive").unwrap();
                        } else {
                            writeln!(w, "  set community {community}").unwrap();
                        }
                    }
                    SetClause::StripCommunities => writeln!(w, "  set community none").unwrap(),
                    SetClause::Prepend(asns) => {
                        let list: Vec<String> = asns.iter().map(|a| a.to_string()).collect();
                        writeln!(w, "  set as-path prepend {}", list.join(" ")).unwrap();
                    }
                }
            }
        }
    }

    if let Some(bgp) = &cfg.bgp {
        writeln!(w, "router bgp {}", bgp.asn).unwrap();
        for p in &bgp.networks {
            writeln!(w, "  network {p}").unwrap();
        }
        for a in &bgp.aggregates {
            if a.summary_only {
                writeln!(w, "  aggregate-address {} summary-only", a.prefix).unwrap();
            } else {
                writeln!(w, "  aggregate-address {}", a.prefix).unwrap();
            }
        }
        for r in &bgp.redistribute {
            match r {
                RedistSource::Static => writeln!(w, "  redistribute static").unwrap(),
                RedistSource::Isis => writeln!(w, "  redistribute isis").unwrap(),
            }
        }
        for n in &bgp.neighbors {
            writeln!(w, "  neighbor {} remote-as {}", n.peer, n.remote_as).unwrap();
            if let Some(rm) = &n.route_map_in {
                writeln!(w, "  neighbor {} route-map {rm} in", n.peer).unwrap();
            }
            if let Some(rm) = &n.route_map_out {
                writeln!(w, "  neighbor {} route-map {rm} out", n.peer).unwrap();
            }
            if let Some(weight) = n.weight {
                writeln!(w, "  neighbor {} weight {weight}", n.peer).unwrap();
            }
            if n.next_hop_self {
                writeln!(w, "  neighbor {} next-hop-self", n.peer).unwrap();
            }
            if n.remove_private_as {
                writeln!(w, "  neighbor {} remove-private-as", n.peer).unwrap();
            }
            if n.allowas_in {
                writeln!(w, "  neighbor {} allowas-in", n.peer).unwrap();
            }
            if let Some(las) = n.local_as {
                writeln!(w, "  neighbor {} local-as {las}", n.peer).unwrap();
            }
            if n.rr_client {
                writeln!(w, "  neighbor {} route-reflector-client", n.peer).unwrap();
            }
        }
    }

    if let Some(isis) = &cfg.isis {
        match isis.protocol {
            IgpKind::Isis => writeln!(w, "router isis").unwrap(),
            IgpKind::Ospf => writeln!(w, "router ospf").unwrap(),
        }
        writeln!(w, "  area {}", isis.area).unwrap();
        let level = match isis.level {
            IsisLevel::L1 => "level-1",
            IsisLevel::L2 => "level-2",
            IsisLevel::L1L2 => "level-1-2",
        };
        writeln!(w, "  is-level {level}").unwrap();
    }

    for s in &cfg.static_routes {
        writeln!(
            w,
            "ip route {} {} preference {}",
            s.prefix, s.next_hop, s.preference
        )
        .unwrap();
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;
    use hoyan_nettypes::pfx;

    #[test]
    fn emit_then_parse_roundtrips() {
        let mut cfg = DeviceConfig::new("R1");
        cfg.vendor = Vendor::C;
        cfg.router_id = 5;
        cfg.interfaces.push(InterfaceConfig {
            name: "eth0".into(),
            peer: "R2".into(),
            link_metric: 30,
            acl_in: Some("A1".into()),
            acl_out: None,
        });
        cfg.prefix_lists.insert(
            "PL".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    action: Action::Permit,
                    prefix: pfx("10.0.0.0/8"),
                    ge: Some(9),
                    le: Some(24),
                }],
            },
        );
        cfg.acls.insert(
            "A1".into(),
            vec![AclEntry {
                action: Action::Deny,
                proto: AclProto::Udp,
                src: None,
                dst: Some(pfx("10.0.0.0/8")),
            }],
        );
        let mut rm = RouteMap::default();
        rm.entries.push(RouteMapEntry {
            seq: 10,
            action: Action::Permit,
            matches: vec![MatchClause::PrefixList("PL".into())],
            sets: vec![
                SetClause::LocalPref(300),
                SetClause::Community {
                    community: "100:920".parse().unwrap(),
                    additive: true,
                },
            ],
        });
        cfg.route_maps.insert("RM".into(), rm);
        let mut bgp = BgpConfig::new(65001);
        bgp.networks.push(pfx("10.0.1.0/24"));
        bgp.aggregates.push(Aggregate {
            prefix: pfx("10.0.0.0/30"),
            summary_only: true,
        });
        bgp.redistribute.push(RedistSource::Isis);
        let mut n = Neighbor::new("R2", 65002);
        n.route_map_in = Some("RM".into());
        n.weight = Some(7);
        n.local_as = Some(64999);
        bgp.neighbors.push(n);
        cfg.bgp = Some(bgp);
        cfg.isis = Some(IsisConfig {
            area: 3,
            level: IsisLevel::L2,
            protocol: IgpKind::Isis,
        });
        cfg.static_routes.push(StaticRoute {
            prefix: pfx("10.9.0.0/16"),
            next_hop: "R2".into(),
            preference: 150,
        });
        cfg.preferences.ebgp = 30;

        let text = emit_config(&cfg);
        let back = parse_config(&text).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn minimal_config_roundtrips() {
        let cfg = DeviceConfig::new("X");
        let back = parse_config(&emit_config(&cfg)).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn line_count_counts_emitted_lines() {
        let cfg = DeviceConfig::new("X");
        assert_eq!(cfg.line_count(), 2); // hostname + vendor
    }
}
