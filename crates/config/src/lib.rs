#![warn(missing_docs)]

//! The router-configuration dialect of the Hoyan reproduction.
//!
//! Each device in the WAN is described by a text configuration in a
//! line-oriented, industry-shaped dialect (hostnames, interfaces with `peer`
//! statements, prefix-lists, community-lists, route-maps, data-plane
//! access-lists, `router bgp`, `router isis`, static routes, aggregation and
//! redistribution). The crate provides:
//!
//! - [`ir`]: the typed intermediate representation ([`DeviceConfig`]) that
//!   the device behavior models are generated from;
//! - [`parse`]: a hand-written, line-oriented parser with positioned errors;
//! - [`emit`]: the inverse pretty-printer (topogen emits through it; the
//!   tests round-trip through it);
//! - [`update`]: merging of *incremental* operator command lines onto an
//!   existing snapshot — the paper (§9) singles this out as a major
//!   practical pain; here `no <line>` removals and entity-replacing
//!   additions are merged by the same parser that reads snapshots.
//!
//! Topology is derived from the configs themselves: two devices are linked
//! when each has an interface whose `peer` names the other.
//!
//! [`diff`] adds the snapshot stage of the incremental pipeline:
//! [`ConfigSnapshot`] (parsed IR + stable per-device content hashes) and
//! [`SnapshotDelta`] (added/removed/modified devices and links, with
//! change-kind classification).

pub mod diff;
pub mod emit;
pub mod ir;
pub mod parse;
pub mod update;

pub use diff::{
    content_hash, declared_peers, origin_prefixes, ConfigSnapshot, DeviceRef, ModifiedDevice,
    SnapshotDelta,
};
pub use ir::{
    AclEntry, AclProto, Action, Aggregate, BgpConfig, CommunityList, DeviceConfig,
    IgpKind, InterfaceConfig, IsisConfig, IsisLevel, MatchClause, Neighbor, PrefixList, PrefixListEntry,
    RedistSource, RouteMap, RouteMapEntry, SetClause, StaticRoute, Vendor,
};
pub use parse::{parse_config, ParseError};
pub use update::apply_update;
