//! Snapshot diffing: the first stage of the incremental verification
//! pipeline (ISSUE 3, mirroring the paper's continuous deployment where
//! "configurations change a few devices at a time").
//!
//! A [`ConfigSnapshot`] is the parsed IR of one configuration directory
//! plus a stable per-device content hash (FNV-1a over the canonical
//! emitted text, so two configs hash equal iff they emit equal).
//! [`ConfigSnapshot::diff`] produces a [`SnapshotDelta`]: added / removed /
//! modified devices, added / removed links, and per-modified-device
//! *change-kind* classification — which of the device's origin
//! announcements, session/policy surface, interfaces, or IGP block
//! changed. The verifier's dirty rules (`hoyan-core::snapshot`) consume
//! that classification, so its granularity is what decides how selective
//! incremental re-verification can be.

use std::collections::{BTreeMap, BTreeSet};

use hoyan_nettypes::Ipv4Prefix;

use crate::emit::emit_config;
use crate::ir::{DeviceConfig, RedistSource};

/// Stable 64-bit content hash of a device configuration: FNV-1a over the
/// canonical emitted text. Identical across runs, platforms and processes
/// (no randomized hashing), so snapshot deltas are reproducible.
pub fn content_hash(cfg: &DeviceConfig) -> u64 {
    let text = emit_config(cfg);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every peer hostname the device declares: interface peers (physical
/// links) plus BGP neighbor statements. A route can only enter or leave a
/// device through one of these, which is what makes peer sets usable as a
/// sound "who could this change affect" frontier.
pub fn declared_peers(cfg: &DeviceConfig) -> BTreeSet<String> {
    let mut peers: BTreeSet<String> =
        cfg.interfaces.iter().map(|i| i.peer.clone()).collect();
    if let Some(bgp) = cfg.bgp.as_ref() {
        peers.extend(bgp.neighbors.iter().map(|n| n.peer.clone()));
    }
    peers
}

/// A parsed configuration snapshot: the stage-one artifact of the
/// snapshot → compiled-network → simulation pipeline. Devices are held in
/// hostname order with a content hash per device.
#[derive(Clone, Debug)]
pub struct ConfigSnapshot {
    devices: Vec<DeviceConfig>,
    hashes: BTreeMap<String, u64>,
}

impl ConfigSnapshot {
    /// Builds a snapshot (sorts devices by hostname; later duplicates of a
    /// hostname are dropped).
    pub fn new(mut devices: Vec<DeviceConfig>) -> ConfigSnapshot {
        devices.sort_by(|a, b| a.hostname.cmp(&b.hostname));
        devices.dedup_by(|b, a| a.hostname == b.hostname);
        let hashes = devices
            .iter()
            .map(|c| (c.hostname.clone(), content_hash(c)))
            .collect();
        ConfigSnapshot { devices, hashes }
    }

    /// The devices, sorted by hostname.
    pub fn devices(&self) -> &[DeviceConfig] {
        &self.devices
    }

    /// Consumes the snapshot, yielding its devices.
    pub fn into_devices(self) -> Vec<DeviceConfig> {
        self.devices
    }

    /// Looks a device up by hostname.
    pub fn device(&self, hostname: &str) -> Option<&DeviceConfig> {
        self.devices
            .binary_search_by(|c| c.hostname.as_str().cmp(hostname))
            .ok()
            .map(|i| &self.devices[i])
    }

    /// The content hash of a device.
    pub fn device_hash(&self, hostname: &str) -> Option<u64> {
        self.hashes.get(hostname).copied()
    }

    /// Physical links of the snapshot: normalized `(a, b)` hostname pairs
    /// (`a < b`) where both ends declare each other as interface peers —
    /// the same mutual-declaration rule the topology builder uses.
    pub fn links(&self) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        for cfg in &self.devices {
            for itf in &cfg.interfaces {
                let Some(peer) = self.device(&itf.peer) else {
                    continue;
                };
                if !peer.interfaces.iter().any(|i| i.peer == cfg.hostname) {
                    continue;
                }
                let pair = if cfg.hostname < itf.peer {
                    (cfg.hostname.clone(), itf.peer.clone())
                } else {
                    (itf.peer.clone(), cfg.hostname.clone())
                };
                out.insert(pair);
            }
        }
        out
    }

    /// Diffs `self` (the baseline) against `other` (the proposed
    /// snapshot), producing the delta the incremental verifier consumes.
    pub fn diff(&self, other: &ConfigSnapshot) -> SnapshotDelta {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut modified = Vec::new();
        for cfg in &self.devices {
            if other.device(&cfg.hostname).is_none() {
                removed.push(DeviceRef::of(cfg));
            }
        }
        for cfg in &other.devices {
            match self.device(&cfg.hostname) {
                None => added.push(DeviceRef::of(cfg)),
                Some(old) => {
                    if self.device_hash(&cfg.hostname) != other.device_hash(&cfg.hostname) {
                        modified.push(ModifiedDevice::classify(old, cfg));
                    }
                }
            }
        }

        let old_links = self.links();
        let new_links = other.links();
        let links_added = new_links.difference(&old_links).cloned().collect();
        let links_removed = old_links.difference(&new_links).cloned().collect();

        // IS-IS invalidation rule: iBGP session conditions ride on *global*
        // IS-IS reachability, so any change that can alter the IGP graph
        // (an IGP block edit, interface changes on an IGP speaker, or an
        // IGP speaker appearing/disappearing) invalidates every family.
        let igp_affecting = modified.iter().any(|m| {
            m.igp_changed || (m.interfaces_changed && m.runs_igp)
        }) || added.iter().chain(removed.iter()).any(|d| d.runs_igp);

        SnapshotDelta {
            added,
            removed,
            modified,
            links_added,
            links_removed,
            igp_affecting,
        }
    }
}

/// A device named by a delta (added or removed), with the facts the dirty
/// rules need about it.
#[derive(Clone, Debug)]
pub struct DeviceRef {
    /// The device hostname.
    pub hostname: String,
    /// Every peer the device declares (interfaces + BGP neighbors).
    pub peers: BTreeSet<String>,
    /// Every prefix the device can originate (networks, aggregates,
    /// statics). An added device announcing an already-known prefix leaves
    /// the family's cache key unchanged, so peer intersection alone cannot
    /// catch it — the dirty rules overlap this set with family prefixes.
    pub origin_prefixes: BTreeSet<Ipv4Prefix>,
    /// Whether the device has an IGP (IS-IS/OSPF) block.
    pub runs_igp: bool,
}

impl DeviceRef {
    fn of(cfg: &DeviceConfig) -> DeviceRef {
        DeviceRef {
            hostname: cfg.hostname.clone(),
            peers: declared_peers(cfg),
            origin_prefixes: origin_fingerprints(cfg).into_keys().collect(),
            runs_igp: cfg.isis.is_some(),
        }
    }
}

/// A device present in both snapshots whose content hash changed, with the
/// change classified by *kind*. The kinds are what let the verifier keep a
/// family clean when, say, only an unrelated origin announcement moved.
#[derive(Clone, Debug)]
pub struct ModifiedDevice {
    /// The device hostname.
    pub hostname: String,
    /// Origin announcements changed: `network` statements, aggregates,
    /// static routes, or redistribution sources.
    pub origins_changed: bool,
    /// The session/policy surface changed: route-maps, prefix-lists,
    /// community-lists, ACLs, BGP neighbors or AS, vendor, router-id, or
    /// protocol preferences.
    pub policy_changed: bool,
    /// The interface list changed (links may appear/disappear or change
    /// metric).
    pub interfaces_changed: bool,
    /// The IGP block changed.
    pub igp_changed: bool,
    /// Prefixes whose origin fingerprint differs between the two versions
    /// (used for the origin-overlap dirty rule).
    pub origin_prefix_delta: BTreeSet<Ipv4Prefix>,
    /// Declared peers, old ∪ new (session formation with an unmodified
    /// counterpart that pre-declared us goes through one of these).
    pub peers: BTreeSet<String>,
    /// Whether either version has an IGP block.
    pub runs_igp: bool,
}

/// The set of prefixes `cfg` can originate — `network` statements,
/// aggregates, and static routes (the key set of the origin
/// fingerprints). The sweep scheduler uses this to estimate a family's
/// device footprint before any simulation runs.
pub fn origin_prefixes(cfg: &DeviceConfig) -> BTreeSet<Ipv4Prefix> {
    origin_fingerprints(cfg).into_keys().collect()
}

/// Origin fingerprints of a config: for every prefix the device can
/// originate, a stable description of *how*. A differing fingerprint means
/// the seeding of that prefix (or the suppression of its aggregate
/// siblings) may change.
fn origin_fingerprints(cfg: &DeviceConfig) -> BTreeMap<Ipv4Prefix, Vec<String>> {
    let mut out: BTreeMap<Ipv4Prefix, Vec<String>> = BTreeMap::new();
    let redistributes_static = cfg
        .bgp
        .as_ref()
        .map(|b| b.redistribute.contains(&RedistSource::Static))
        .unwrap_or(false);
    if let Some(bgp) = cfg.bgp.as_ref() {
        for p in &bgp.networks {
            out.entry(*p).or_default().push("net".to_string());
        }
        for a in &bgp.aggregates {
            out.entry(a.prefix)
                .or_default()
                .push(format!("agg:{}", a.summary_only));
        }
    }
    for s in &cfg.static_routes {
        out.entry(s.prefix).or_default().push(format!(
            "static:{}:{}:{redistributes_static}",
            s.next_hop, s.preference
        ));
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

impl ModifiedDevice {
    fn classify(old: &DeviceConfig, new: &DeviceConfig) -> ModifiedDevice {
        let origin_face = |c: &DeviceConfig| {
            (
                c.bgp
                    .as_ref()
                    .map(|b| (b.networks.clone(), b.aggregates.clone(), b.redistribute.clone())),
                c.static_routes.clone(),
            )
        };
        let policy_face = |c: &DeviceConfig| {
            (
                c.bgp.as_ref().map(|b| (b.asn, b.neighbors.clone())),
                c.route_maps.clone(),
                c.prefix_lists.clone(),
                c.community_lists.clone(),
                c.acls.clone(),
                c.vendor,
                c.router_id,
                c.preferences,
            )
        };
        let origins_changed = origin_face(old) != origin_face(new);
        let policy_changed = policy_face(old) != policy_face(new);
        let interfaces_changed = old.interfaces != new.interfaces;
        let igp_changed = old.isis != new.isis;

        let old_fp = origin_fingerprints(old);
        let new_fp = origin_fingerprints(new);
        let mut origin_prefix_delta: BTreeSet<Ipv4Prefix> = old_fp
            .keys()
            .chain(new_fp.keys())
            .filter(|p| old_fp.get(*p) != new_fp.get(*p))
            .copied()
            .collect();
        // A policy edit can flip what static redistribution admits, which
        // re-seeds statics even though no origin statement moved: treat
        // every static prefix as origin-dirty in that case.
        let redist_static = |c: &DeviceConfig| {
            c.bgp
                .as_ref()
                .map(|b| b.redistribute.contains(&RedistSource::Static))
                .unwrap_or(false)
        };
        if policy_changed && (redist_static(old) || redist_static(new)) {
            origin_prefix_delta.extend(old.static_routes.iter().map(|s| s.prefix));
            origin_prefix_delta.extend(new.static_routes.iter().map(|s| s.prefix));
        }

        let mut peers = declared_peers(old);
        peers.extend(declared_peers(new));
        ModifiedDevice {
            hostname: new.hostname.clone(),
            origins_changed,
            policy_changed,
            interfaces_changed,
            igp_changed,
            origin_prefix_delta,
            peers,
            runs_igp: old.isis.is_some() || new.isis.is_some(),
        }
    }

    /// Short `[origins policy interfaces igp]`-style tag for display.
    pub fn kinds(&self) -> String {
        let mut tags = Vec::new();
        if self.origins_changed {
            tags.push("origins");
        }
        if self.policy_changed {
            tags.push("policy");
        }
        if self.interfaces_changed {
            tags.push("interfaces");
        }
        if self.igp_changed {
            tags.push("igp");
        }
        tags.join("+")
    }
}

/// The difference between two configuration snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotDelta {
    /// Devices present only in the new snapshot.
    pub added: Vec<DeviceRef>,
    /// Devices present only in the baseline.
    pub removed: Vec<DeviceRef>,
    /// Devices present in both whose content changed.
    pub modified: Vec<ModifiedDevice>,
    /// Links present only in the new snapshot (normalized pairs).
    pub links_added: Vec<(String, String)>,
    /// Links present only in the baseline.
    pub links_removed: Vec<(String, String)>,
    /// Whether the delta can alter the IGP graph — if so, the conditioned
    /// IS-IS database (and with it every iBGP session condition) is stale
    /// and every family must be re-simulated.
    pub igp_affecting: bool,
}

impl SnapshotDelta {
    /// Whether the snapshots are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }

    /// Total number of devices named by the delta.
    pub fn device_count(&self) -> usize {
        self.added.len() + self.removed.len() + self.modified.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;

    fn cfg(text: &str) -> DeviceConfig {
        parse_config(text).unwrap()
    }

    fn pair() -> Vec<DeviceConfig> {
        vec![
            cfg("hostname A\ninterface e0\n peer B\nrouter bgp 1\n network 10.0.0.0/24\n neighbor B remote-as 2\n"),
            cfg("hostname B\ninterface e0\n peer A\nrouter bgp 2\n neighbor A remote-as 1\n"),
        ]
    }

    #[test]
    fn identical_snapshots_have_empty_delta() {
        let a = ConfigSnapshot::new(pair());
        let b = ConfigSnapshot::new(pair());
        let d = a.diff(&b);
        assert!(d.is_empty());
        assert!(!d.igp_affecting);
        assert_eq!(a.device_hash("A"), b.device_hash("A"));
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = ConfigSnapshot::new(pair());
        let h1 = a.device_hash("A").unwrap();
        assert_eq!(h1, content_hash(a.device("A").unwrap()));
        let mut devs = pair();
        devs[0].bgp.as_mut().unwrap().networks.push("10.9.0.0/24".parse().unwrap());
        let b = ConfigSnapshot::new(devs);
        assert_ne!(h1, b.device_hash("A").unwrap());
    }

    #[test]
    fn origin_change_is_classified_with_prefix_delta() {
        let a = ConfigSnapshot::new(pair());
        let mut devs = pair();
        devs[0].bgp.as_mut().unwrap().networks.push("10.9.0.0/24".parse().unwrap());
        let b = ConfigSnapshot::new(devs);
        let d = a.diff(&b);
        assert_eq!(d.modified.len(), 1);
        let m = &d.modified[0];
        assert!(m.origins_changed && !m.policy_changed && !m.interfaces_changed);
        assert_eq!(
            m.origin_prefix_delta.iter().copied().collect::<Vec<_>>(),
            vec!["10.9.0.0/24".parse::<Ipv4Prefix>().unwrap()]
        );
        assert!(m.peers.contains("B"));
    }

    #[test]
    fn policy_change_is_classified_without_origin_delta() {
        let a = ConfigSnapshot::new(pair());
        let mut devs = pair();
        devs[0].bgp.as_mut().unwrap().neighbors[0].next_hop_self = true;
        let b = ConfigSnapshot::new(devs);
        let m = &a.diff(&b).modified[0];
        assert!(m.policy_changed && !m.origins_changed);
        assert!(m.origin_prefix_delta.is_empty());
    }

    #[test]
    fn add_and_remove_devices_and_links() {
        let a = ConfigSnapshot::new(pair());
        let mut devs = pair();
        devs[0].interfaces.push(crate::ir::InterfaceConfig {
            name: "e1".into(),
            peer: "C".into(),
            link_metric: 10,
            acl_in: None,
            acl_out: None,
        });
        devs.push(cfg(
            "hostname C\ninterface e0\n peer A\nrouter bgp 3\n network 10.3.0.0/24\n neighbor A remote-as 1\n",
        ));
        let b = ConfigSnapshot::new(devs);
        let d = a.diff(&b);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].hostname, "C");
        assert!(d.added[0].peers.contains("A"));
        assert!(d.added[0].origin_prefixes.contains(&"10.3.0.0/24".parse().unwrap()));
        assert_eq!(d.links_added, vec![("A".to_string(), "C".to_string())]);
        // And the reverse direction: C disappears.
        let r = b.diff(&a);
        assert_eq!(r.removed.len(), 1);
        assert_eq!(r.links_removed, vec![("A".to_string(), "C".to_string())]);
    }

    #[test]
    fn igp_edits_are_flagged_as_igp_affecting() {
        let isis_pair = || {
            vec![
                cfg("hostname A\ninterface e0\n peer B\nrouter isis\n area 0\n"),
                cfg("hostname B\ninterface e0\n peer A\nrouter isis\n area 0\n"),
            ]
        };
        let a = ConfigSnapshot::new(isis_pair());
        // Metric change on an IGP speaker: interfaces changed, IGP-affecting.
        let mut devs = isis_pair();
        devs[0].interfaces[0].link_metric = 77;
        let d = a.diff(&ConfigSnapshot::new(devs));
        assert!(d.modified[0].interfaces_changed);
        assert!(d.igp_affecting);
        // The same metric change on a BGP-only device is not.
        let plain = ConfigSnapshot::new(pair());
        let mut devs = pair();
        devs[0].interfaces[0].link_metric = 77;
        let d = plain.diff(&ConfigSnapshot::new(devs));
        assert!(!d.igp_affecting);
    }

    #[test]
    fn policy_edit_with_static_redistribution_dirties_static_prefixes() {
        let base = || {
            vec![cfg(
                "hostname A\ninterface e0\n peer B\n\
                 route-map RM permit 10\nrouter bgp 1\n neighbor B remote-as 2\n redistribute static\n\
                 ip route 10.5.0.0/24 B preference 1\n",
            )]
        };
        let a = ConfigSnapshot::new(base());
        let mut devs = base();
        devs[0].route_maps.get_mut("RM").unwrap().entries[0].action = crate::ir::Action::Deny;
        let d = a.diff(&ConfigSnapshot::new(devs));
        let m = &d.modified[0];
        assert!(m.policy_changed);
        assert!(m.origin_prefix_delta.contains(&"10.5.0.0/24".parse().unwrap()));
    }
}
