//! The line-oriented configuration parser.
//!
//! Router configurations are sequences of commands with block context
//! (`interface`, `route-map`, `router bgp`, `router isis`) exactly like the
//! vendor CLIs they imitate. Indentation is ignored; any line starting with
//! a top-level keyword closes the current block. `!` and `#` start comments.

use hoyan_nettypes::{AsNum, Community, Ipv4Prefix};

use crate::ir::*;

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

enum Context {
    Top,
    Interface(usize),
    RouteMap { name: String, seq: u32 },
    Bgp,
    Isis,
}

struct Parser {
    cfg: DeviceConfig,
    ctx: Context,
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: msg.into(),
    }
}

fn parse_u32(tok: &str, line: usize, what: &str) -> Result<u32, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("expected {what}, got `{tok}`")))
}

fn parse_prefix(tok: &str, line: usize) -> Result<Ipv4Prefix, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("expected prefix, got `{tok}`")))
}

fn parse_community(tok: &str, line: usize) -> Result<Community, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("expected community, got `{tok}`")))
}

fn parse_action(tok: &str, line: usize) -> Result<Action, ParseError> {
    match tok {
        "permit" => Ok(Action::Permit),
        "deny" => Ok(Action::Deny),
        _ => Err(err(line, format!("expected permit/deny, got `{tok}`"))),
    }
}

/// Parses a full configuration text into a [`DeviceConfig`].
pub fn parse_config(text: &str) -> Result<DeviceConfig, ParseError> {
    let mut p = Parser {
        cfg: DeviceConfig::new(""),
        ctx: Context::Top,
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        p.dispatch(&tokens, line_no)?;
    }
    if p.cfg.hostname.is_empty() {
        return Err(err(0, "configuration missing `hostname`"));
    }
    Ok(p.cfg)
}

impl Parser {
    fn dispatch(&mut self, t: &[&str], line: usize) -> Result<(), ParseError> {
        // Top-level keywords always reset context.
        match t[0] {
            "hostname" | "vendor" | "router-id" | "interface" | "ip" | "access-list"
            | "route-map" | "router" => self.top_level(t, line),
            _ => self.in_context(t, line),
        }
    }

    fn top_level(&mut self, t: &[&str], line: usize) -> Result<(), ParseError> {
        self.ctx = Context::Top;
        match t[0] {
            "hostname" => {
                let name = *t.get(1).ok_or_else(|| err(line, "hostname needs a name"))?;
                self.cfg.hostname = name.to_string();
            }
            "vendor" => {
                let v = t.get(1).and_then(|s| Vendor::parse(s));
                self.cfg.vendor = v.ok_or_else(|| err(line, "vendor must be A, B or C"))?;
            }
            "router-id" => {
                let id = *t.get(1).ok_or_else(|| err(line, "router-id needs a value"))?;
                self.cfg.router_id = parse_u32(id, line, "router id")?;
            }
            "interface" => {
                let name = *t.get(1).ok_or_else(|| err(line, "interface needs a name"))?;
                // Re-entering an existing interface edits it (CLI semantics
                // — incremental update scripts rely on this).
                let idx = match self.cfg.interfaces.iter().position(|i| i.name == name) {
                    Some(i) => i,
                    None => {
                        self.cfg.interfaces.push(InterfaceConfig {
                            name: name.to_string(),
                            peer: String::new(),
                            link_metric: 10,
                            acl_in: None,
                            acl_out: None,
                        });
                        self.cfg.interfaces.len() - 1
                    }
                };
                self.ctx = Context::Interface(idx);
            }
            "ip" => self.ip_command(t, line)?,
            "access-list" => {
                // access-list NAME permit|deny ip|tcp|udp (any|PFX) (any|PFX)
                if t.len() < 6 {
                    return Err(err(line, "access-list NAME ACTION PROTO SRC DST"));
                }
                let name = t[1].to_string();
                let action = parse_action(t[2], line)?;
                let proto = match t[3] {
                    "ip" => AclProto::Ip,
                    "tcp" => AclProto::Tcp,
                    "udp" => AclProto::Udp,
                    other => return Err(err(line, format!("unknown protocol `{other}`"))),
                };
                let src = if t[4] == "any" {
                    None
                } else {
                    Some(parse_prefix(t[4], line)?)
                };
                let dst = if t[5] == "any" {
                    None
                } else {
                    Some(parse_prefix(t[5], line)?)
                };
                self.cfg.acls.entry(name).or_default().push(AclEntry {
                    action,
                    proto,
                    src,
                    dst,
                });
            }
            "route-map" => {
                // route-map NAME permit|deny SEQ
                if t.len() < 4 {
                    return Err(err(line, "route-map NAME ACTION SEQ"));
                }
                let name = t[1].to_string();
                let action = parse_action(t[2], line)?;
                let seq = parse_u32(t[3], line, "sequence number")?;
                let rm = self.cfg.route_maps.entry(name.clone()).or_default();
                if rm.entries.iter().any(|e| e.seq == seq) {
                    return Err(err(
                        line,
                        format!("route-map {name} already has sequence {seq}"),
                    ));
                }
                rm.entries.push(RouteMapEntry {
                    seq,
                    action,
                    matches: Vec::new(),
                    sets: Vec::new(),
                });
                rm.entries.sort_by_key(|e| e.seq);
                self.ctx = Context::RouteMap { name, seq };
            }
            "router" => match t.get(1) {
                Some(&"bgp") => {
                    let asn = *t.get(2).ok_or_else(|| err(line, "router bgp needs an AS"))?;
                    let asn: AsNum = parse_u32(asn, line, "AS number")?;
                    match &self.cfg.bgp {
                        Some(existing) if existing.asn != asn => {
                            return Err(err(line, "conflicting router bgp AS"));
                        }
                        Some(_) => {}
                        None => self.cfg.bgp = Some(BgpConfig::new(asn)),
                    }
                    self.ctx = Context::Bgp;
                }
                Some(&"isis") | Some(&"ospf") => {
                    let protocol = if t[1] == "ospf" {
                        IgpKind::Ospf
                    } else {
                        IgpKind::Isis
                    };
                    match &mut self.cfg.isis {
                        Some(existing) => existing.protocol = protocol,
                        None => {
                            self.cfg.isis = Some(IsisConfig {
                                area: 0,
                                level: IsisLevel::default(),
                                protocol,
                            });
                        }
                    }
                    self.ctx = Context::Isis;
                }
                other => {
                    return Err(err(
                        line,
                        format!("unknown router protocol {:?}", other.unwrap_or(&"")),
                    ))
                }
            },
            _ => unreachable!("dispatch guarantees a top-level keyword"),
        }
        Ok(())
    }

    fn ip_command(&mut self, t: &[&str], line: usize) -> Result<(), ParseError> {
        match t.get(1) {
            Some(&"prefix-list") => {
                // ip prefix-list NAME permit|deny PFX [ge N] [le N]
                if t.len() < 5 {
                    return Err(err(line, "ip prefix-list NAME ACTION PREFIX [ge N] [le N]"));
                }
                let name = t[2].to_string();
                let action = parse_action(t[3], line)?;
                let prefix = parse_prefix(t[4], line)?;
                let mut ge = None;
                let mut le = None;
                let mut rest = &t[5..];
                while !rest.is_empty() {
                    match rest[0] {
                        "ge" => {
                            let v = rest.get(1).ok_or_else(|| err(line, "ge needs a value"))?;
                            ge = Some(parse_u32(v, line, "ge bound")? as u8);
                            rest = &rest[2..];
                        }
                        "le" => {
                            let v = rest.get(1).ok_or_else(|| err(line, "le needs a value"))?;
                            le = Some(parse_u32(v, line, "le bound")? as u8);
                            rest = &rest[2..];
                        }
                        other => return Err(err(line, format!("unexpected token `{other}`"))),
                    }
                }
                self.cfg
                    .prefix_lists
                    .entry(name)
                    .or_default()
                    .entries
                    .push(PrefixListEntry {
                        action,
                        prefix,
                        ge,
                        le,
                    });
            }
            Some(&"community-list") => {
                if t.len() < 5 {
                    return Err(err(line, "ip community-list NAME ACTION COMMUNITY"));
                }
                let name = t[2].to_string();
                let action = parse_action(t[3], line)?;
                let community = parse_community(t[4], line)?;
                self.cfg
                    .community_lists
                    .entry(name)
                    .or_default()
                    .entries
                    .push((action, community));
            }
            Some(&"route") => {
                // ip route PREFIX NEXTHOP [preference N]
                if t.len() < 4 {
                    return Err(err(line, "ip route PREFIX NEXTHOP [preference N]"));
                }
                let prefix = parse_prefix(t[2], line)?;
                let next_hop = t[3].to_string();
                let preference = if t.len() >= 6 && t[4] == "preference" {
                    parse_u32(t[5], line, "preference")?
                } else {
                    1
                };
                self.cfg.static_routes.push(StaticRoute {
                    prefix,
                    next_hop,
                    preference,
                });
            }
            Some(&"protocol-preference") => {
                // ip protocol-preference ebgp|ibgp|isis N
                if t.len() < 4 {
                    return Err(err(line, "ip protocol-preference PROTO N"));
                }
                let v = parse_u32(t[3], line, "preference")?;
                match t[2] {
                    "ebgp" => self.cfg.preferences.ebgp = v,
                    "ibgp" => self.cfg.preferences.ibgp = v,
                    "isis" => self.cfg.preferences.isis = v,
                    other => return Err(err(line, format!("unknown protocol `{other}`"))),
                }
            }
            other => {
                return Err(err(
                    line,
                    format!("unknown ip subcommand {:?}", other.unwrap_or(&"")),
                ))
            }
        }
        Ok(())
    }

    fn in_context(&mut self, t: &[&str], line: usize) -> Result<(), ParseError> {
        match &self.ctx {
            Context::Top => Err(err(line, format!("unknown command `{}`", t[0]))),
            Context::Interface(idx) => {
                let idx = *idx;
                let iface = &mut self.cfg.interfaces[idx];
                match t[0] {
                    "peer" => {
                        let peer = *t.get(1).ok_or_else(|| err(line, "peer needs a hostname"))?;
                        iface.peer = peer.to_string();
                    }
                    "link-metric" => {
                        let v = *t.get(1).ok_or_else(|| err(line, "link-metric needs a value"))?;
                        iface.link_metric = parse_u32(v, line, "metric")?;
                    }
                    "access-group" => {
                        // access-group NAME in|out
                        let name = *t.get(1).ok_or_else(|| err(line, "access-group needs a name"))?;
                        match t.get(2) {
                            Some(&"in") => iface.acl_in = Some(name.to_string()),
                            Some(&"out") => iface.acl_out = Some(name.to_string()),
                            _ => return Err(err(line, "access-group NAME in|out")),
                        }
                    }
                    other => return Err(err(line, format!("unknown interface command `{other}`"))),
                }
                Ok(())
            }
            Context::RouteMap { name, seq } => {
                let (name, seq) = (name.clone(), *seq);
                let entry = self
                    .cfg
                    .route_maps
                    .get_mut(&name)
                    .and_then(|rm| rm.entries.iter_mut().find(|e| e.seq == seq))
                    .expect("context entry exists");
                match (t[0], t.get(1)) {
                    ("match", Some(&"prefix-list")) => {
                        let n = *t.get(2).ok_or_else(|| err(line, "match prefix-list NAME"))?;
                        entry.matches.push(MatchClause::PrefixList(n.to_string()));
                    }
                    ("match", Some(&"community-list")) => {
                        let n = *t.get(2).ok_or_else(|| err(line, "match community-list NAME"))?;
                        entry
                            .matches
                            .push(MatchClause::CommunityList(n.to_string()));
                    }
                    ("match", Some(&"community")) => {
                        let c = *t.get(2).ok_or_else(|| err(line, "match community VALUE"))?;
                        entry
                            .matches
                            .push(MatchClause::Community(parse_community(c, line)?));
                    }
                    ("match", Some(&"prefix")) => {
                        let p = *t.get(2).ok_or_else(|| err(line, "match prefix PREFIX"))?;
                        entry.matches.push(MatchClause::Prefix(parse_prefix(p, line)?));
                    }
                    ("match", Some(&"as-path-contains")) => {
                        let a = *t.get(2).ok_or_else(|| err(line, "match as-path-contains AS"))?;
                        entry
                            .matches
                            .push(MatchClause::AsPathContains(parse_u32(a, line, "AS number")?));
                    }
                    ("set", Some(&"local-preference")) => {
                        let v = *t.get(2).ok_or_else(|| err(line, "set local-preference N"))?;
                        entry.sets.push(SetClause::LocalPref(parse_u32(v, line, "value")?));
                    }
                    ("set", Some(&"weight")) => {
                        let v = *t.get(2).ok_or_else(|| err(line, "set weight N"))?;
                        entry.sets.push(SetClause::Weight(parse_u32(v, line, "value")?));
                    }
                    ("set", Some(&"med")) => {
                        let v = *t.get(2).ok_or_else(|| err(line, "set med N"))?;
                        entry.sets.push(SetClause::Med(parse_u32(v, line, "value")?));
                    }
                    ("set", Some(&"community")) => {
                        let c = *t.get(2).ok_or_else(|| err(line, "set community VALUE"))?;
                        if c == "none" {
                            entry.sets.push(SetClause::StripCommunities);
                        } else {
                            let community = parse_community(c, line)?;
                            let additive = t.get(3) == Some(&"additive");
                            entry.sets.push(SetClause::Community {
                                community,
                                additive,
                            });
                        }
                    }
                    ("set", Some(&"as-path")) => {
                        // set as-path prepend AS [AS...]
                        if t.get(2) != Some(&"prepend") || t.len() < 4 {
                            return Err(err(line, "set as-path prepend AS..."));
                        }
                        let mut asns = Vec::new();
                        for tok in &t[3..] {
                            asns.push(parse_u32(tok, line, "AS number")?);
                        }
                        entry.sets.push(SetClause::Prepend(asns));
                    }
                    _ => {
                        return Err(err(
                            line,
                            format!("unknown route-map command `{}`", t.join(" ")),
                        ))
                    }
                }
                Ok(())
            }
            Context::Bgp => {
                let bgp = self.cfg.bgp.as_mut().expect("bgp context");
                match t[0] {
                    "network" => {
                        let p = *t.get(1).ok_or_else(|| err(line, "network PREFIX"))?;
                        bgp.networks.push(parse_prefix(p, line)?);
                    }
                    "aggregate-address" => {
                        let p = *t.get(1).ok_or_else(|| err(line, "aggregate-address PREFIX"))?;
                        bgp.aggregates.push(Aggregate {
                            prefix: parse_prefix(p, line)?,
                            summary_only: t.get(2) == Some(&"summary-only"),
                        });
                    }
                    "redistribute" => match t.get(1) {
                        Some(&"static") => bgp.redistribute.push(RedistSource::Static),
                        Some(&"isis") => bgp.redistribute.push(RedistSource::Isis),
                        other => {
                            return Err(err(
                                line,
                                format!("cannot redistribute {:?}", other.unwrap_or(&"")),
                            ))
                        }
                    },
                    "neighbor" => {
                        // neighbor HOST <subcommand> ...
                        let peer = *t.get(1).ok_or_else(|| err(line, "neighbor HOST ..."))?;
                        match t.get(2) {
                            Some(&"remote-as") => {
                                let a = *t.get(3).ok_or_else(|| err(line, "remote-as AS"))?;
                                let asn = parse_u32(a, line, "AS number")?;
                                bgp.neighbor_mut(peer, asn).remote_as = asn;
                            }
                            Some(&"route-map") => {
                                let name =
                                    *t.get(3).ok_or_else(|| err(line, "route-map NAME in|out"))?;
                                let n = bgp
                                    .neighbors
                                    .iter_mut()
                                    .find(|n| n.peer == peer)
                                    .ok_or_else(|| {
                                        err(line, format!("neighbor {peer} has no remote-as yet"))
                                    })?;
                                match t.get(4) {
                                    Some(&"in") => n.route_map_in = Some(name.to_string()),
                                    Some(&"out") => n.route_map_out = Some(name.to_string()),
                                    _ => return Err(err(line, "route-map NAME in|out")),
                                }
                            }
                            Some(&"weight") => {
                                let v = *t.get(3).ok_or_else(|| err(line, "weight N"))?;
                                let v = parse_u32(v, line, "weight")?;
                                let n = require_neighbor(bgp, peer, line)?;
                                n.weight = Some(v);
                            }
                            Some(&"next-hop-self") => {
                                require_neighbor(bgp, peer, line)?.next_hop_self = true;
                            }
                            Some(&"remove-private-as") => {
                                require_neighbor(bgp, peer, line)?.remove_private_as = true;
                            }
                            Some(&"allowas-in") => {
                                require_neighbor(bgp, peer, line)?.allowas_in = true;
                            }
                            Some(&"local-as") => {
                                let a = *t.get(3).ok_or_else(|| err(line, "local-as AS"))?;
                                let v = parse_u32(a, line, "AS number")?;
                                require_neighbor(bgp, peer, line)?.local_as = Some(v);
                            }
                            Some(&"route-reflector-client") => {
                                require_neighbor(bgp, peer, line)?.rr_client = true;
                            }
                            other => {
                                return Err(err(
                                    line,
                                    format!(
                                        "unknown neighbor subcommand {:?}",
                                        other.unwrap_or(&"")
                                    ),
                                ))
                            }
                        }
                    }
                    other => return Err(err(line, format!("unknown bgp command `{other}`"))),
                }
                Ok(())
            }
            Context::Isis => {
                let isis = self.cfg.isis.as_mut().expect("isis context");
                match t[0] {
                    "area" => {
                        let a = *t.get(1).ok_or_else(|| err(line, "area N"))?;
                        isis.area = parse_u32(a, line, "area")?;
                    }
                    "is-level" => {
                        isis.level = match t.get(1) {
                            Some(&"level-1") => IsisLevel::L1,
                            Some(&"level-2") => IsisLevel::L2,
                            Some(&"level-1-2") => IsisLevel::L1L2,
                            _ => return Err(err(line, "is-level level-1|level-2|level-1-2")),
                        };
                    }
                    other => return Err(err(line, format!("unknown isis command `{other}`"))),
                }
                Ok(())
            }
        }
    }
}

fn require_neighbor<'a>(
    bgp: &'a mut BgpConfig,
    peer: &str,
    line: usize,
) -> Result<&'a mut Neighbor, ParseError> {
    if bgp.neighbors.iter().any(|n| n.peer == peer) {
        Ok(bgp.neighbors.iter_mut().find(|n| n.peer == peer).unwrap())
    } else {
        Err(err(
            line,
            format!("neighbor {peer} must be declared with remote-as first"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_nettypes::pfx;

    const SAMPLE: &str = r#"
hostname PE1
vendor B
router-id 11

interface eth0
  peer P1
  link-metric 20
  access-group EDGE in

interface eth1
  peer PE2

ip prefix-list CUST permit 10.0.0.0/8 ge 16 le 24
ip prefix-list CUST deny 0.0.0.0/0 le 32

ip community-list GOLD permit 100:920

access-list EDGE deny udp any 10.0.0.0/8
access-list EDGE permit ip any any

route-map RM_IN permit 10
  match prefix-list CUST
  set local-preference 300
  set community 100:920 additive
route-map RM_IN deny 20

router bgp 65001
  network 10.0.1.0/24
  aggregate-address 10.0.0.0/30 summary-only
  redistribute static
  neighbor P1 remote-as 65002
  neighbor P1 route-map RM_IN in
  neighbor P1 weight 100
  neighbor P1 remove-private-as
  neighbor PE2 remote-as 65001
  neighbor PE2 next-hop-self

router isis
  area 1
  is-level level-1-2

ip route 10.9.0.0/16 P1 preference 150
"#;

    #[test]
    fn parses_full_sample() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.hostname, "PE1");
        assert_eq!(cfg.vendor, Vendor::B);
        assert_eq!(cfg.router_id, 11);
        assert_eq!(cfg.interfaces.len(), 2);
        assert_eq!(cfg.interfaces[0].peer, "P1");
        assert_eq!(cfg.interfaces[0].link_metric, 20);
        assert_eq!(cfg.interfaces[0].acl_in.as_deref(), Some("EDGE"));
        assert_eq!(cfg.interfaces[1].link_metric, 10);

        let pl = &cfg.prefix_lists["CUST"];
        assert_eq!(pl.entries.len(), 2);
        assert!(pl.permits(pfx("10.1.0.0/16")));
        assert!(!pl.permits(pfx("10.0.0.0/8"))); // ge bound excludes /8
        assert!(!pl.permits(pfx("172.16.0.0/16")));

        assert_eq!(cfg.community_lists["GOLD"].entries.len(), 1);
        assert_eq!(cfg.acls["EDGE"].len(), 2);

        let rm = &cfg.route_maps["RM_IN"];
        assert_eq!(rm.entries.len(), 2);
        assert_eq!(rm.entries[0].seq, 10);
        assert_eq!(rm.entries[0].matches.len(), 1);
        assert_eq!(rm.entries[0].sets.len(), 2);
        assert_eq!(rm.entries[1].action, Action::Deny);

        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 65001);
        assert_eq!(bgp.networks, vec![pfx("10.0.1.0/24")]);
        assert!(bgp.aggregates[0].summary_only);
        assert_eq!(bgp.redistribute, vec![RedistSource::Static]);
        let p1 = bgp.neighbor("P1").unwrap();
        assert_eq!(p1.remote_as, 65002);
        assert_eq!(p1.route_map_in.as_deref(), Some("RM_IN"));
        assert_eq!(p1.weight, Some(100));
        assert!(p1.remove_private_as);
        let pe2 = bgp.neighbor("PE2").unwrap();
        assert!(pe2.next_hop_self);
        assert_eq!(pe2.remote_as, 65001); // iBGP

        let isis = cfg.isis.as_ref().unwrap();
        assert_eq!(isis.area, 1);
        assert_eq!(isis.level, IsisLevel::L1L2);

        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(cfg.static_routes[0].preference, 150);
    }

    #[test]
    fn error_reports_line_numbers() {
        let bad = "hostname X\nroute-map RM permit ten\n";
        let e = parse_config(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("sequence number"), "{}", e.message);
    }

    #[test]
    fn missing_hostname_is_rejected() {
        assert!(parse_config("router isis\n area 1\n").is_err());
    }

    #[test]
    fn neighbor_settings_require_remote_as_first() {
        let bad = "hostname X\nrouter bgp 1\n neighbor Y weight 5\n";
        let e = parse_config(bad).unwrap_err();
        assert!(e.message.contains("remote-as"), "{}", e.message);
    }

    #[test]
    fn duplicate_route_map_sequence_rejected() {
        let bad = "hostname X\nroute-map RM permit 10\nroute-map RM deny 10\n";
        assert!(parse_config(bad).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cfg = parse_config("! comment\n# another\n\nhostname X\n").unwrap();
        assert_eq!(cfg.hostname, "X");
    }

    #[test]
    fn static_route_default_preference_is_one() {
        let cfg = parse_config("hostname X\nip route 10.0.0.0/8 Y\n").unwrap();
        assert_eq!(cfg.static_routes[0].preference, 1);
    }

    #[test]
    fn protocol_preference_override() {
        let cfg =
            parse_config("hostname X\nip protocol-preference ebgp 30\n").unwrap();
        assert_eq!(cfg.preferences.ebgp, 30);
        assert_eq!(cfg.preferences.ibgp, 200);
    }

    #[test]
    fn set_community_none_strips() {
        let cfg = parse_config(
            "hostname X\nroute-map RM permit 10\n set community none\n",
        )
        .unwrap();
        assert_eq!(
            cfg.route_maps["RM"].entries[0].sets,
            vec![SetClause::StripCommunities]
        );
    }

    #[test]
    fn prepend_multiple_asns() {
        let cfg = parse_config(
            "hostname X\nroute-map RM permit 10\n set as-path prepend 65001 65001 65001\n",
        )
        .unwrap();
        assert_eq!(
            cfg.route_maps["RM"].entries[0].sets,
            vec![SetClause::Prepend(vec![65001, 65001, 65001])]
        );
    }
}
