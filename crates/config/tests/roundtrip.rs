//! Property test: `parse(emit(cfg)) == cfg` for arbitrary configurations.

use hoyan_config::*;
use hoyan_nettypes::{Community, Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr(bits), len))
}

fn arb_community() -> impl Strategy<Value = Community> {
    (any::<u16>(), any::<u16>(), any::<bool>()).prop_map(|(a, v, ext)| {
        if ext {
            Community::ext(a, v)
        } else {
            Community::std(a, v)
        }
    })
}

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![Just(Action::Permit), Just(Action::Deny)]
}

fn arb_match(names: Vec<String>) -> impl Strategy<Value = MatchClause> {
    let pick = proptest::sample::select(names);
    prop_oneof![
        pick.clone().prop_map(MatchClause::PrefixList),
        pick.prop_map(MatchClause::CommunityList),
        arb_community().prop_map(MatchClause::Community),
        arb_prefix().prop_map(MatchClause::Prefix),
        (1u32..70000).prop_map(MatchClause::AsPathContains),
    ]
}

fn arb_set() -> impl Strategy<Value = SetClause> {
    prop_oneof![
        (0u32..1000).prop_map(SetClause::LocalPref),
        (0u32..1000).prop_map(SetClause::Weight),
        (0u32..1000).prop_map(SetClause::Med),
        (arb_community(), any::<bool>()).prop_map(|(community, additive)| SetClause::Community {
            community,
            additive
        }),
        Just(SetClause::StripCommunities),
        proptest::collection::vec(1u32..70000, 1..3).prop_map(SetClause::Prepend),
    ]
}

prop_compose! {
    fn arb_config()(
        hostname in "[A-Z][A-Za-z0-9]{0,6}",
        vendor in prop_oneof![Just(Vendor::A), Just(Vendor::B), Just(Vendor::C)],
        router_id in 1u32..1000,
        peers in proptest::collection::vec("[A-Z][A-Za-z0-9]{0,6}", 0..4),
        metrics in proptest::collection::vec(1u32..100, 4),
        pl_names in proptest::collection::btree_set(arb_name(), 1..3),
        pl_entries in proptest::collection::vec((arb_action(), arb_prefix(), proptest::option::of(0u8..=32u8)), 1..4),
        communities in proptest::collection::vec((arb_action(), arb_community()), 0..3),
        sets in proptest::collection::vec(arb_set(), 0..4),
        asn in 1u32..70000,
        networks in proptest::collection::vec(arb_prefix(), 0..3),
        statics in proptest::collection::vec((arb_prefix(), 1u32..255), 0..3),
        has_isis in any::<bool>(),
        isis_area in 0u32..16,
        level in prop_oneof![Just(IsisLevel::L1), Just(IsisLevel::L2), Just(IsisLevel::L1L2)],
    ) -> DeviceConfig {
        let mut cfg = DeviceConfig::new(hostname.clone());
        cfg.vendor = vendor;
        cfg.router_id = router_id;
        // Interfaces: unique peers only (interface_to assumes one per peer).
        let mut seen = std::collections::HashSet::new();
        for (i, p) in peers.iter().enumerate() {
            if p == &hostname || !seen.insert(p.clone()) {
                continue;
            }
            cfg.interfaces.push(InterfaceConfig {
                name: format!("eth{i}"),
                peer: p.clone(),
                link_metric: metrics[i % metrics.len()],
                acl_in: None,
                acl_out: None,
            });
        }
        let pl_names: Vec<String> = pl_names.into_iter().collect();
        for name in &pl_names {
            let entries = pl_entries
                .iter()
                .map(|(a, p, le)| PrefixListEntry {
                    action: *a,
                    prefix: *p,
                    ge: None,
                    le: le.map(|l| l.max(p.len())),
                })
                .collect();
            cfg.prefix_lists.insert(name.clone(), PrefixList { entries });
        }
        if !communities.is_empty() {
            cfg.community_lists.insert(
                "CL".to_string(),
                CommunityList { entries: communities.clone() },
            );
        }
        let mut rm = RouteMap::default();
        rm.entries.push(RouteMapEntry {
            seq: 10,
            action: Action::Permit,
            matches: vec![MatchClause::PrefixList(pl_names[0].clone())],
            sets: sets.clone(),
        });
        rm.entries.push(RouteMapEntry { seq: 20, action: Action::Deny, matches: vec![], sets: vec![] });
        cfg.route_maps.insert("RM".to_string(), rm);

        let mut bgp = BgpConfig::new(asn);
        bgp.networks = networks;
        for (i, iface) in cfg.interfaces.iter().enumerate() {
            let mut n = Neighbor::new(iface.peer.clone(), asn + i as u32);
            if i == 0 {
                n.route_map_in = Some("RM".to_string());
                n.weight = Some(42);
                n.remove_private_as = true;
            }
            bgp.neighbors.push(n);
        }
        cfg.bgp = Some(bgp);
        if has_isis {
            cfg.isis = Some(IsisConfig { area: isis_area, level, protocol: IgpKind::Isis });
        }
        for (p, pref) in statics {
            if let Some(first) = cfg.interfaces.first() {
                cfg.static_routes.push(StaticRoute {
                    prefix: p,
                    next_hop: first.peer.clone(),
                    preference: pref,
                });
            }
        }
        cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_roundtrip(cfg in arb_config()) {
        let text = emit::emit_config(&cfg);
        let parsed = parse_config(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(parsed, cfg);
    }

    #[test]
    fn emit_is_stable(cfg in arb_config()) {
        let text = emit::emit_config(&cfg);
        let parsed = parse_config(&text).unwrap();
        prop_assert_eq!(emit::emit_config(&parsed), text);
    }
}
