//! Property test: `parse(emit(cfg)) == cfg` for arbitrary configurations.
//!
//! Runs on the in-tree seeded harness (`hoyan_rt::prop`); a failure prints
//! the seed to replay with `HOYAN_TEST_SEED`.

use hoyan_config::*;
use hoyan_nettypes::{Community, Ipv4Addr, Ipv4Prefix};
use hoyan_rt::prop::{check, Gen};

const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const ALNUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
const NAME_REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";

fn arb_prefix(g: &mut Gen) -> Ipv4Prefix {
    let bits = g.u32();
    let len = g.range_u8_inclusive(0, 32);
    Ipv4Prefix::new(Ipv4Addr(bits), len)
}

fn arb_community(g: &mut Gen) -> Community {
    let a = g.u16();
    let v = g.u16();
    if g.bool() {
        Community::ext(a, v)
    } else {
        Community::std(a, v)
    }
}

/// `[A-Z][A-Z0-9_]{0,8}`-shaped list/map names.
fn arb_name(g: &mut Gen) -> String {
    g.ident(UPPER, NAME_REST, 8)
}

/// `[A-Z][A-Za-z0-9]{0,6}`-shaped hostnames.
fn arb_hostname(g: &mut Gen) -> String {
    g.ident(UPPER, ALNUM, 6)
}

fn arb_action(g: &mut Gen) -> Action {
    *g.choose(&[Action::Permit, Action::Deny])
}

fn arb_set(g: &mut Gen) -> SetClause {
    match g.range_u32(0..6) {
        0 => SetClause::LocalPref(g.range_u32(0..1000)),
        1 => SetClause::Weight(g.range_u32(0..1000)),
        2 => SetClause::Med(g.range_u32(0..1000)),
        3 => SetClause::Community {
            community: arb_community(g),
            additive: g.bool(),
        },
        4 => SetClause::StripCommunities,
        _ => SetClause::Prepend(g.vec(1..3, |g| g.range_u32(1..70000))),
    }
}

fn arb_config(g: &mut Gen) -> DeviceConfig {
    let hostname = arb_hostname(g);
    let vendor = *g.choose(&[Vendor::A, Vendor::B, Vendor::C]);
    let router_id = g.range_u32(1..1000);
    let peers = g.vec(0..4, arb_hostname);
    let metrics = g.vec(4..5, |g| g.range_u32(1..100));
    let pl_names: std::collections::BTreeSet<String> =
        g.vec(1..3, arb_name).into_iter().collect();
    let pl_entries = g.vec(1..4, |g| {
        let a = arb_action(g);
        let p = arb_prefix(g);
        let le = if g.bool() {
            Some(g.range_u8_inclusive(0, 32))
        } else {
            None
        };
        (a, p, le)
    });
    let communities = g.vec(0..3, |g| (arb_action(g), arb_community(g)));
    let sets = g.vec(0..4, arb_set);
    let asn = g.range_u32(1..70000);
    let networks = g.vec(0..3, arb_prefix);
    let statics = g.vec(0..3, |g| (arb_prefix(g), g.range_u32(1..255)));
    let has_isis = g.bool();
    let isis_area = g.range_u32(0..16);
    let level = *g.choose(&[IsisLevel::L1, IsisLevel::L2, IsisLevel::L1L2]);

    let mut cfg = DeviceConfig::new(hostname.clone());
    cfg.vendor = vendor;
    cfg.router_id = router_id;
    // Interfaces: unique peers only (interface_to assumes one per peer).
    let mut seen = std::collections::HashSet::new();
    for (i, p) in peers.iter().enumerate() {
        if p == &hostname || !seen.insert(p.clone()) {
            continue;
        }
        cfg.interfaces.push(InterfaceConfig {
            name: format!("eth{i}"),
            peer: p.clone(),
            link_metric: metrics[i % metrics.len()],
            acl_in: None,
            acl_out: None,
        });
    }
    let pl_names: Vec<String> = pl_names.into_iter().collect();
    for name in &pl_names {
        let entries = pl_entries
            .iter()
            .map(|(a, p, le)| PrefixListEntry {
                action: *a,
                prefix: *p,
                ge: None,
                le: le.map(|l| l.max(p.len())),
            })
            .collect();
        cfg.prefix_lists.insert(name.clone(), PrefixList { entries });
    }
    if !communities.is_empty() {
        cfg.community_lists.insert(
            "CL".to_string(),
            CommunityList { entries: communities.clone() },
        );
    }
    let mut rm = RouteMap::default();
    rm.entries.push(RouteMapEntry {
        seq: 10,
        action: Action::Permit,
        matches: vec![MatchClause::PrefixList(pl_names[0].clone())],
        sets: sets.clone(),
    });
    rm.entries.push(RouteMapEntry { seq: 20, action: Action::Deny, matches: vec![], sets: vec![] });
    cfg.route_maps.insert("RM".to_string(), rm);

    let mut bgp = BgpConfig::new(asn);
    bgp.networks = networks;
    for (i, iface) in cfg.interfaces.iter().enumerate() {
        let mut n = Neighbor::new(iface.peer.clone(), asn + i as u32);
        if i == 0 {
            n.route_map_in = Some("RM".to_string());
            n.weight = Some(42);
            n.remove_private_as = true;
        }
        bgp.neighbors.push(n);
    }
    cfg.bgp = Some(bgp);
    if has_isis {
        cfg.isis = Some(IsisConfig { area: isis_area, level, protocol: IgpKind::Isis });
    }
    for (p, pref) in statics {
        if let Some(first) = cfg.interfaces.first() {
            cfg.static_routes.push(StaticRoute {
                prefix: p,
                next_hop: first.peer.clone(),
                preference: pref,
            });
        }
    }
    cfg
}

#[test]
fn emit_parse_roundtrip() {
    check("emit_parse_roundtrip", |g| {
        let cfg = arb_config(g);
        let text = emit::emit_config(&cfg);
        let parsed = parse_config(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(parsed, cfg);
    });
}

#[test]
fn emit_is_stable() {
    check("emit_is_stable", |g| {
        let cfg = arb_config(g);
        let text = emit::emit_config(&cfg);
        let parsed = parse_config(&text).unwrap();
        assert_eq!(emit::emit_config(&parsed), text);
    });
}
