#![warn(missing_docs)]

//! Fundamental network types shared by every Hoyan subsystem.
//!
//! This crate is dependency-free and holds the vocabulary of the verifier:
//! IPv4 prefixes and a longest-prefix-match trie, BGP path attributes
//! (AS paths, communities, local preference, MED, weight, origin), and the
//! [`RouteAttrs`] record that route updates, RIB rules and extended-RIB
//! comparisons are all built from.

pub mod aspath;
pub mod attrs;
pub mod community;
pub mod prefix;
pub mod trie;

pub use aspath::{is_private_as, AsNum, AsPath, FIRST_PRIVATE_AS, LAST_PRIVATE_AS};
pub use attrs::{LinkId, NodeId, Origin, RouteAttrs, DEFAULT_LOCAL_PREF};
pub use community::{Community, CommunitySet};
pub use prefix::{pfx, Ipv4Addr, Ipv4Prefix, PrefixParseError};
pub use trie::PrefixTrie;
