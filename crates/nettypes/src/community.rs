//! BGP community values and sets.
//!
//! Communities matter to Hoyan twice over: they are matched and set by route
//! policies, and whether a vendor *keeps or strips* them on outbound updates
//! by default is one of the highest-impact VSBs the paper found (63.91% of
//! devices affected, Figure 6).

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use crate::prefix::PrefixParseError;

/// A community value. Standard communities are `asn:value` pairs packed into
/// 32 bits; extended communities get a flag so the "ext community" VSB can
/// treat them separately.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community {
    /// Packed `asn:value` (high 16 bits : low 16 bits).
    pub raw: u32,
    /// True for extended communities (stripped by some vendors by default).
    pub extended: bool,
}

impl Community {
    /// A standard community `asn:value`.
    pub fn std(asn: u16, value: u16) -> Self {
        Community {
            raw: ((asn as u32) << 16) | value as u32,
            extended: false,
        }
    }

    /// An extended community `asn:value`.
    pub fn ext(asn: u16, value: u16) -> Self {
        Community {
            raw: ((asn as u32) << 16) | value as u32,
            extended: true,
        }
    }

    /// The administrator (AS) half.
    pub fn asn(self) -> u16 {
        (self.raw >> 16) as u16
    }

    /// The value half.
    pub fn value(self) -> u16 {
        self.raw as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.extended {
            write!(f, "ext:{}:{}", self.asn(), self.value())
        } else {
            write!(f, "{}:{}", self.asn(), self.value())
        }
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Community {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (s, extended) = match s.strip_prefix("ext:") {
            Some(rest) => (rest, true),
            None => (s, false),
        };
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let asn: u16 = a.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        let value: u16 = v.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        Ok(if extended {
            Community::ext(asn, value)
        } else {
            Community::std(asn, value)
        })
    }
}

/// An ordered set of communities attached to a route.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct CommunitySet(BTreeSet<Community>);

impl CommunitySet {
    /// The empty set.
    pub fn new() -> Self {
        CommunitySet::default()
    }

    /// Builds a set from a list of communities.
    pub fn from_iter<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        CommunitySet(iter.into_iter().collect())
    }

    /// Adds a community, returning whether it was newly inserted.
    pub fn add(&mut self, c: Community) -> bool {
        self.0.insert(c)
    }

    /// Removes a community, returning whether it was present.
    pub fn remove(&mut self, c: Community) -> bool {
        self.0.remove(&c)
    }

    /// Membership test.
    pub fn contains(&self, c: Community) -> bool {
        self.0.contains(&c)
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied()
    }

    /// Returns the set with all standard communities removed (the
    /// strip-on-send behavior of some vendors).
    pub fn without_standard(&self) -> CommunitySet {
        CommunitySet(self.0.iter().copied().filter(|c| c.extended).collect())
    }

    /// Returns the set with all extended communities removed.
    pub fn without_extended(&self) -> CommunitySet {
        CommunitySet(self.0.iter().copied().filter(|c| !c.extended).collect())
    }

    /// Returns the empty set (strip everything).
    pub fn cleared(&self) -> CommunitySet {
        CommunitySet::new()
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "-");
        }
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(","))
    }
}

impl fmt::Debug for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let c: Community = "920:1".parse().unwrap();
        assert_eq!(c, Community::std(920, 1));
        assert_eq!(c.to_string(), "920:1");
        let e: Community = "ext:100:5".parse().unwrap();
        assert!(e.extended);
        assert_eq!(e.to_string(), "ext:100:5");
        assert!("junk".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
    }

    #[test]
    fn set_operations() {
        let mut s = CommunitySet::new();
        assert!(s.add(Community::std(100, 1)));
        assert!(!s.add(Community::std(100, 1)));
        assert!(s.add(Community::ext(100, 2)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Community::std(100, 1)));
        assert!(s.remove(Community::std(100, 1)));
        assert!(!s.remove(Community::std(100, 1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stripping_variants() {
        let s = CommunitySet::from_iter([
            Community::std(100, 1),
            Community::ext(100, 2),
            Community::std(200, 3),
        ]);
        assert_eq!(s.without_standard().len(), 1);
        assert_eq!(s.without_extended().len(), 2);
        assert!(s.cleared().is_empty());
        // The original is untouched.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_empty_as_dash() {
        // RIB dumps in the paper show "-" for no communities (Figure 6).
        assert_eq!(CommunitySet::new().to_string(), "-");
    }
}
