//! IPv4 addresses and prefixes.
//!
//! Prefixes are stored canonicalized: host bits below the mask are always
//! zero, so two textual spellings of the same prefix compare equal.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address, stored as a big-endian `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error produced when parsing an address or prefix from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Addr {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for slot in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| PrefixParseError(s.to_string()))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| PrefixParseError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(PrefixParseError(s.to_string()));
        }
        let [a, b, c, d] = octets;
        Ok(Ipv4Addr::new(a, b, c, d))
    }
}

/// An IPv4 prefix in CIDR form, canonicalized so host bits are zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Builds a prefix from a network address and length, masking host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Ipv4Prefix {
            bits: addr.0 & Self::mask(len),
            len,
        }
    }

    /// The all-zero default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { bits: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The network address (host bits zero).
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr(self.bits)
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.bits
    }

    /// Whether `other` is a (non-strict) subset of this prefix.
    pub fn contains(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains_addr(other.network())
    }

    /// The immediate parent prefix (one bit shorter), or `None` at `/0`.
    pub fn parent(self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::new(Ipv4Addr(self.bits), self.len - 1))
        }
    }

    /// The two halves of this prefix, or `None` at `/32`.
    pub fn children(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Ipv4Prefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let right = Ipv4Prefix {
            bits: self.bits | (1 << (31 - self.len as u32)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// Bit `i` of the network address counting from the most significant bit.
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.bits & (1 << (31 - i as u32)) != 0
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError(s.to_string()));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// Convenience constructor used pervasively in tests: `"10.0.1.0/24".parse()`
/// with a panic on malformed input.
pub fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap_or_else(|_| panic!("bad prefix literal {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(a.octets(), [10, 1, 2, 3]);
        assert_eq!(a.to_string(), "10.1.2.3");
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        assert!("10.1.2".parse::<Ipv4Addr>().is_err());
        assert!("10.1.2.3.4".parse::<Ipv4Addr>().is_err());
        assert!("10.1.2.256".parse::<Ipv4Addr>().is_err());
        assert!("ten.one.two.three".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let a = pfx("10.0.1.7/24");
        let b = pfx("10.0.1.0/24");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let big = pfx("10.0.0.0/8");
        let small = pfx("10.1.0.0/16");
        assert!(big.contains(small));
        assert!(!small.contains(big));
        assert!(big.contains(big));
        assert!(!big.contains(pfx("11.0.0.0/16")));
        assert!(big.contains_addr("10.200.0.1".parse().unwrap()));
        assert!(!big.contains_addr("11.0.0.1".parse().unwrap()));
    }

    #[test]
    fn default_route() {
        assert!(Ipv4Prefix::DEFAULT.is_default());
        assert!(Ipv4Prefix::DEFAULT.contains(pfx("192.168.0.0/16")));
        assert_eq!(Ipv4Prefix::DEFAULT.to_string(), "0.0.0.0/0");
        assert_eq!(pfx("0.0.0.0/0"), Ipv4Prefix::DEFAULT);
    }

    #[test]
    fn parent_and_children() {
        let p = pfx("10.0.1.0/31");
        let (l, r) = p.children().unwrap();
        assert_eq!(l, pfx("10.0.1.0/32"));
        assert_eq!(r, pfx("10.0.1.1/32"));
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        assert!(pfx("1.2.3.4/32").children().is_none());
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn bit_indexing() {
        let p = pfx("128.0.0.0/1");
        assert!(p.bit(0));
        let q = pfx("64.0.0.0/2");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }
}
