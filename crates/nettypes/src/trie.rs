//! A binary prefix trie with longest-prefix match.
//!
//! Used for FIB lookup during packet reachability (§5.5: "based on longest
//! prefix or other built-in logic") and by prefix-lists in route policies.

use crate::prefix::{Ipv4Addr, Ipv4Prefix};

/// A map from IPv4 prefixes to values supporting exact and longest-prefix
/// lookups. Nodes are stored in a flat arena; children indices of 0 mean
/// "absent" (index 0 is the root, which is never a child).
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Clone, Debug)]
struct Node<T> {
    value: Option<T>,
    children: [u32; 2],
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node {
                value: None,
                children: [0, 0],
            }],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn descend_or_create(&mut self, prefix: Ipv4Prefix) -> usize {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            idx = if next == 0 {
                let new = self.nodes.len();
                self.nodes.push(Node {
                    value: None,
                    children: [0, 0],
                });
                self.nodes[idx].children[dir] = new as u32;
                new
            } else {
                next
            };
        }
        idx
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let idx = self.descend_or_create(prefix);
        let old = self.nodes[idx].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up the exact prefix.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            if next == 0 {
                return None;
            }
            idx = next;
        }
        self.nodes[idx].value.as_ref()
    }

    /// Mutable exact lookup.
    pub fn get_mut(&mut self, prefix: Ipv4Prefix) -> Option<&mut T> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            if next == 0 {
                return None;
            }
            idx = next;
        }
        self.nodes[idx].value.as_mut()
    }

    /// Removes the value at the exact prefix (nodes are not compacted).
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<T> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            if next == 0 {
                return None;
            }
            idx = next;
        }
        let old = self.nodes[idx].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match for an address: the most specific stored prefix
    /// containing `addr`, with its value.
    pub fn lpm(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let full = Ipv4Prefix::new(addr, 32);
        let mut idx = 0usize;
        let mut best: Option<(u8, usize)> = self.nodes[0].value.as_ref().map(|_| (0u8, 0usize));
        for i in 0..32u8 {
            let dir = full.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            if next == 0 {
                break;
            }
            idx = next;
            if self.nodes[idx].value.is_some() {
                best = Some((i + 1, idx));
            }
        }
        best.map(|(len, idx)| {
            (
                Ipv4Prefix::new(addr, len),
                self.nodes[idx].value.as_ref().expect("tracked Some"),
            )
        })
    }

    /// All stored prefixes (with values) that contain `addr`, shortest first.
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<(Ipv4Prefix, &T)> {
        let full = Ipv4Prefix::new(addr, 32);
        let mut out = Vec::new();
        let mut idx = 0usize;
        if let Some(v) = self.nodes[0].value.as_ref() {
            out.push((Ipv4Prefix::DEFAULT, v));
        }
        for i in 0..32u8 {
            let dir = full.bit(i) as usize;
            let next = self.nodes[idx].children[dir] as usize;
            if next == 0 {
                break;
            }
            idx = next;
            if let Some(v) = self.nodes[idx].value.as_ref() {
                out.push((Ipv4Prefix::new(addr, i + 1), v));
            }
        }
        out
    }

    /// Iterates over all `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![(0usize, 0u32, 0u8)]; // (node, bits, len)
        while let Some((idx, bits, len)) = stack.pop() {
            if let Some(v) = self.nodes[idx].value.as_ref() {
                out.push((Ipv4Prefix::new(Ipv4Addr(bits), len), v));
            }
            for dir in [1usize, 0usize] {
                let next = self.nodes[idx].children[dir] as usize;
                if next != 0 {
                    let bit = if dir == 1 { 1u32 << (31 - len as u32) } else { 0 };
                    stack.push((next, bits | bit, len + 1));
                }
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::pfx;

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(pfx("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(pfx("10.0.0.0/9")), None);
        assert_eq!(t.remove(pfx("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(pfx("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, "default");
        t.insert(pfx("10.0.0.0/8"), "eight");
        t.insert(pfx("10.1.0.0/16"), "sixteen");
        let (p, v) = t.lpm("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(p, pfx("10.1.0.0/16"));
        assert_eq!(*v, "sixteen");
        let (p, v) = t.lpm("10.2.0.1".parse().unwrap()).unwrap();
        assert_eq!(p, pfx("10.0.0.0/8"));
        assert_eq!(*v, "eight");
        let (p, v) = t.lpm("192.168.0.1".parse().unwrap()).unwrap();
        assert_eq!(p, Ipv4Prefix::DEFAULT);
        assert_eq!(*v, "default");
    }

    #[test]
    fn lpm_without_default_can_miss() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), ());
        assert!(t.lpm("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn matches_lists_all_covering_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 0);
        t.insert(pfx("10.0.0.0/8"), 8);
        t.insert(pfx("10.1.0.0/16"), 16);
        t.insert(pfx("10.1.2.0/24"), 24);
        let m = t.matches("10.1.2.3".parse().unwrap());
        let lens: Vec<u8> = m.iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![0, 8, 16, 24]);
    }

    #[test]
    fn iter_yields_all() {
        let mut t = PrefixTrie::new();
        let ps = ["10.0.0.0/8", "10.1.0.0/16", "192.168.1.0/24", "0.0.0.0/0"];
        for (i, p) in ps.iter().enumerate() {
            t.insert(pfx(p), i);
        }
        let mut got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = ps.iter().map(|p| pfx(p).to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn host_route_lookup() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.1.5/32"), "host");
        let (p, v) = t.lpm("10.0.1.5".parse().unwrap()).unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(*v, "host");
        assert!(t.lpm("10.0.1.6".parse().unwrap()).is_none());
    }
}
