//! BGP AS paths and the operations route policies perform on them.
//!
//! Several of the vendor-specific behaviors the paper catalogs (Table 2) are
//! AS-path operations — `remove-private-AS` semantics, AS-loop tolerance and
//! `local-as` migration — so the primitive operations live here and the
//! vendor-dependent *choice* of operation lives in `hoyan-device`.

use std::fmt;

/// A BGP autonomous-system number.
pub type AsNum = u32;

/// First AS number of the 16-bit private range.
pub const FIRST_PRIVATE_AS: AsNum = 64512;
/// Last AS number of the 16-bit private range.
pub const LAST_PRIVATE_AS: AsNum = 65534;

/// Whether `asn` falls in the private-use range.
pub fn is_private_as(asn: AsNum) -> bool {
    (FIRST_PRIVATE_AS..=LAST_PRIVATE_AS).contains(&asn)
}

/// An AS path: the sequence of AS numbers a route has traversed, most recent
/// (nearest) first, as carried in BGP UPDATE messages.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AsPath(Vec<AsNum>);

impl AsPath {
    /// The empty path (a locally originated route, shown as `i` in RIBs).
    pub fn empty() -> Self {
        AsPath(Vec::new())
    }

    /// Builds a path from nearest-first AS numbers.
    pub fn from_slice(asns: &[AsNum]) -> Self {
        AsPath(asns.to_vec())
    }

    /// Number of AS hops (the metric used in best-path selection).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for locally originated routes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The AS numbers, nearest first.
    pub fn asns(&self) -> &[AsNum] {
        &self.0
    }

    /// Returns a new path with `asn` prepended (done once per eBGP hop).
    pub fn prepend(&self, asn: AsNum) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// Returns a new path with `asns` prepended in order.
    pub fn prepend_all(&self, asns: &[AsNum]) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + asns.len());
        v.extend_from_slice(asns);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// Whether the path already contains `asn` — the standard eBGP loop check.
    pub fn contains(&self, asn: AsNum) -> bool {
        self.0.contains(&asn)
    }

    /// Whether any AS number appears more than once (an AS repetition, which
    /// some vendors permit and others reject — the "AS loop" VSB).
    pub fn has_repetition(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.0.iter().any(|asn| !seen.insert(*asn))
    }

    /// `remove-private-AS`, vendor A semantics: strips *every* private AS
    /// number from the path.
    pub fn remove_private_all(&self) -> AsPath {
        AsPath(self.0.iter().copied().filter(|a| !is_private_as(*a)).collect())
    }

    /// `remove-private-AS`, vendor B semantics: strips private AS numbers
    /// only from the front of the path, stopping at the first public one.
    pub fn remove_private_leading(&self) -> AsPath {
        let skip = self.0.iter().take_while(|a| is_private_as(**a)).count();
        AsPath(self.0[skip..].to_vec())
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "i");
        }
        let parts: Vec<String> = self.0.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join("-"))
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_orders_nearest_first() {
        let p = AsPath::empty().prepend(100).prepend(200).prepend(300);
        assert_eq!(p.asns(), &[300, 200, 100]);
        assert_eq!(p.to_string(), "300-200-100");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn empty_path_displays_as_origin() {
        assert_eq!(AsPath::empty().to_string(), "i");
        assert!(AsPath::empty().is_empty());
    }

    #[test]
    fn loop_detection() {
        let p = AsPath::from_slice(&[100, 200, 300]);
        assert!(p.contains(200));
        assert!(!p.contains(400));
        assert!(!p.has_repetition());
        assert!(AsPath::from_slice(&[100, 200, 100]).has_repetition());
    }

    #[test]
    fn private_ranges() {
        assert!(is_private_as(64512));
        assert!(is_private_as(65534));
        assert!(!is_private_as(64511));
        assert!(!is_private_as(65535));
    }

    #[test]
    fn remove_private_all_vs_leading() {
        // Vendor A removes every private AS; vendor B stops at the first
        // public one — the example from the paper's introduction.
        let p = AsPath::from_slice(&[64512, 100, 64513, 200]);
        assert_eq!(p.remove_private_all().asns(), &[100, 200]);
        assert_eq!(p.remove_private_leading().asns(), &[100, 64513, 200]);
    }

    #[test]
    fn remove_private_on_fully_private_path() {
        let p = AsPath::from_slice(&[64512, 64513]);
        assert!(p.remove_private_all().is_empty());
        assert!(p.remove_private_leading().is_empty());
    }

    #[test]
    fn prepend_all_for_local_as_migration() {
        // The "local AS" VSB: some vendors prepend only the old AS, others
        // prepend both old and new.
        let p = AsPath::from_slice(&[100]);
        assert_eq!(p.prepend_all(&[65001, 200]).asns(), &[65001, 200, 100]);
    }
}
