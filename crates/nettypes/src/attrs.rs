//! Route attributes and identifiers.
//!
//! [`RouteAttrs`] is the record the whole system converses in: the simulator
//! propagates it, policies rewrite it, the route selector ranks it, and the
//! tuner compares it field-by-field (the "extended RIB" of §6 is exactly
//! "all attributes of a route that can make impacts in route selection").

use std::fmt;

use crate::aspath::AsPath;
use crate::community::CommunitySet;

/// Identifies a device (router) in a network model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Identifies an undirected link in a network model. The link's aliveness is
/// also the index of its Boolean variable in topology conditions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// BGP origin attribute, ranked IGP < EGP < Incomplete (lower is better).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Origin {
    /// Originated by an IGP / `network` statement.
    #[default]
    Igp,
    /// Learned via EGP (historic).
    Egp,
    /// Redistributed or otherwise incomplete.
    Incomplete,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "i"),
            Origin::Egp => write!(f, "e"),
            Origin::Incomplete => write!(f, "?"),
        }
    }
}

/// Default BGP local preference when none is set.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// All selection-relevant attributes of a route.
///
/// `isis_weight` exists because Hoyan verifies IS-IS by *translating it into
/// a path-vector protocol* whose nodes carry a transitive weight attribute
/// ranked above AS-path length (Appendix C); reusing the same record keeps
/// one propagation engine for both protocols.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RouteAttrs {
    /// Cisco-style per-router weight; highest wins, never propagated.
    pub weight: u32,
    /// Local preference; highest wins, propagated over iBGP only.
    pub local_pref: u32,
    /// The AS path; shortest wins.
    pub as_path: AsPath,
    /// Origin code; lowest wins.
    pub origin: Origin,
    /// Multi-exit discriminator; lowest wins.
    pub med: u32,
    /// Communities attached to the route.
    pub communities: CommunitySet,
    /// Accumulated IS-IS weight (only meaningful for translated IS-IS
    /// routes); lowest wins and outranks AS-path length.
    pub isis_weight: u64,
}

impl Default for RouteAttrs {
    fn default() -> Self {
        RouteAttrs {
            weight: 0,
            local_pref: DEFAULT_LOCAL_PREF,
            as_path: AsPath::empty(),
            origin: Origin::Igp,
            med: 0,
            communities: CommunitySet::new(),
            isis_weight: 0,
        }
    }
}

impl RouteAttrs {
    /// A fresh locally-originated route.
    pub fn originated() -> Self {
        RouteAttrs::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_ranking() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
        assert_eq!(Origin::Igp.to_string(), "i");
        assert_eq!(Origin::Incomplete.to_string(), "?");
    }

    #[test]
    fn defaults_match_bgp_conventions() {
        let a = RouteAttrs::default();
        assert_eq!(a.weight, 0);
        assert_eq!(a.local_pref, 100);
        assert_eq!(a.med, 0);
        assert!(a.as_path.is_empty());
        assert!(a.communities.is_empty());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
    }
}
