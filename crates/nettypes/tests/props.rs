//! Property-based tests for the nettypes crate: the trie must agree with a
//! naive linear scan, and prefix/AS-path algebra must satisfy its invariants.
//!
//! Runs on the in-tree seeded harness (`hoyan_rt::prop`); a failure prints
//! the seed to replay with `HOYAN_TEST_SEED`.

use hoyan_nettypes::{AsPath, Ipv4Addr, Ipv4Prefix, PrefixTrie};
use hoyan_rt::prop::{check, Gen};

fn arb_prefix(g: &mut Gen) -> Ipv4Prefix {
    let bits = g.u32();
    let len = g.range_u8_inclusive(0, 32);
    Ipv4Prefix::new(Ipv4Addr(bits), len)
}

#[test]
fn prefix_display_roundtrip() {
    check("prefix_display_roundtrip", |g| {
        let p = arb_prefix(g);
        let back: Ipv4Prefix = p.to_string().parse().unwrap();
        assert_eq!(p, back);
    });
}

#[test]
fn prefix_contains_is_reflexive_and_antisymmetric() {
    check("prefix_contains_is_reflexive_and_antisymmetric", |g| {
        let a = arb_prefix(g);
        let b = arb_prefix(g);
        assert!(a.contains(a));
        if a.contains(b) && b.contains(a) {
            assert_eq!(a, b);
        }
    });
}

#[test]
fn children_partition_parent() {
    check("children_partition_parent", |g| {
        let p = arb_prefix(g);
        if let Some((l, r)) = p.children() {
            assert!(p.contains(l) && p.contains(r));
            assert!(!l.contains(r) && !r.contains(l));
            assert_eq!(l.parent().unwrap(), p);
            assert_eq!(r.parent().unwrap(), p);
        }
    });
}

#[test]
fn trie_lpm_agrees_with_linear_scan() {
    check("trie_lpm_agrees_with_linear_scan", |g| {
        let entries = g.vec(0..40, |g| (arb_prefix(g), g.u16()));
        let addr_bits = g.u32();
        let mut trie = PrefixTrie::new();
        let mut map = std::collections::HashMap::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.insert(*p, *v); // last insert wins, like the trie
        }
        let addr = Ipv4Addr(addr_bits);
        let expect = map
            .iter()
            .filter(|(p, _)| p.contains_addr(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.lpm(addr).map(|(p, v)| (p, *v));
        assert_eq!(got, expect);
    });
}

#[test]
fn trie_get_agrees_with_map() {
    check("trie_get_agrees_with_map", |g| {
        let entries = g.vec(0..40, |g| (arb_prefix(g), g.u16()));
        let probe = arb_prefix(g);
        let mut trie = PrefixTrie::new();
        let mut map = std::collections::HashMap::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.insert(*p, *v);
        }
        assert_eq!(trie.len(), map.len());
        assert_eq!(trie.get(probe).copied(), map.get(&probe).copied());
    });
}

#[test]
fn aspath_prepend_grows_by_one() {
    check("aspath_prepend_grows_by_one", |g| {
        let asns = g.vec(0..8, |g| g.range_u32(1..70000));
        let head = g.range_u32(1..70000);
        let p = AsPath::from_slice(&asns);
        let q = p.prepend(head);
        assert_eq!(q.len(), p.len() + 1);
        assert_eq!(q.asns()[0], head);
        assert_eq!(&q.asns()[1..], p.asns());
    });
}

#[test]
fn remove_private_all_removes_exactly_private() {
    check("remove_private_all_removes_exactly_private", |g| {
        let asns = g.vec(0..12, |g| g.range_u32(1..70000));
        let p = AsPath::from_slice(&asns);
        let cleaned = p.remove_private_all();
        assert!(cleaned.asns().iter().all(|a| !hoyan_nettypes::is_private_as(*a)));
        // Leading-run removal never removes more than full removal keeps... i.e.
        // leading removal output is a suffix of the input and a superset of full removal.
        let leading = p.remove_private_leading();
        assert!(leading.len() >= cleaned.len());
        assert_eq!(&p.asns()[p.len() - leading.len()..], leading.asns());
    });
}
