//! Property-based tests for the nettypes crate: the trie must agree with a
//! naive linear scan, and prefix/AS-path algebra must satisfy its invariants.

use hoyan_nettypes::{AsPath, Ipv4Addr, Ipv4Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr(bits), len))
}

proptest! {
    #[test]
    fn prefix_display_roundtrip(p in arb_prefix()) {
        let back: Ipv4Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_is_reflexive_and_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.contains(a));
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn children_partition_parent(p in arb_prefix()) {
        if let Some((l, r)) = p.children() {
            prop_assert!(p.contains(l) && p.contains(r));
            prop_assert!(!l.contains(r) && !r.contains(l));
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(r.parent().unwrap(), p);
        }
    }

    #[test]
    fn trie_lpm_agrees_with_linear_scan(
        entries in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..40),
        addr_bits in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut map = std::collections::HashMap::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.insert(*p, *v); // last insert wins, like the trie
        }
        let addr = Ipv4Addr(addr_bits);
        let expect = map
            .iter()
            .filter(|(p, _)| p.contains_addr(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.lpm(addr).map(|(p, v)| (p, *v));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn trie_get_agrees_with_map(
        entries in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..40),
        probe in arb_prefix(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut map = std::collections::HashMap::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), map.len());
        prop_assert_eq!(trie.get(probe).copied(), map.get(&probe).copied());
    }

    #[test]
    fn aspath_prepend_grows_by_one(asns in proptest::collection::vec(1u32..70000, 0..8), head in 1u32..70000) {
        let p = AsPath::from_slice(&asns);
        let q = p.prepend(head);
        prop_assert_eq!(q.len(), p.len() + 1);
        prop_assert_eq!(q.asns()[0], head);
        prop_assert_eq!(&q.asns()[1..], p.asns());
    }

    #[test]
    fn remove_private_all_removes_exactly_private(asns in proptest::collection::vec(1u32..70000, 0..12)) {
        let p = AsPath::from_slice(&asns);
        let cleaned = p.remove_private_all();
        prop_assert!(cleaned.asns().iter().all(|a| !hoyan_nettypes::is_private_as(*a)));
        // Leading-run removal never removes more than full removal keeps... i.e.
        // leading removal output is a suffix of the input and a superset of full removal.
        let leading = p.remove_private_leading();
        prop_assert!(leading.len() >= cleaned.len());
        prop_assert_eq!(&p.asns()[p.len() - leading.len()..], leading.asns());
    }
}
