//! The Minesweeper-like baseline: formula-based verification. The entire
//! control plane for a prefix is encoded as *one* CNF — candidate routes on
//! every device, selection constraints, link-aliveness variables and a
//! cardinality bound on failures — and a SAT solver searches for a
//! counterexample. Coverage is excellent; the monolithic formula is what
//! §8.2 shows exploding (230k–4.8M literals vs Hoyan's hundreds).

use std::collections::VecDeque;

use hoyan_core::NetworkModel;
use hoyan_device::{cmp_candidates, Candidate, LearnedFrom, SessionKind};
use hoyan_logic::{Cnf, Formula, Lit, Solver};
use hoyan_nettypes::{Ipv4Prefix, NodeId};

/// One candidate route discovered by the policy-respecting flood.
#[derive(Clone, Debug)]
struct FloodRoute {
    node: NodeId,
    attrs: hoyan_nettypes::RouteAttrs,
    learned: LearnedFrom,
    from: Option<NodeId>,
    next_hop: Option<NodeId>,
    ibgp_hops: u32,
    parent: Option<usize>,
    link_vars: Vec<u32>,
    path: Vec<NodeId>,
}

/// The monolithic-encoding verifier.
pub struct MinesweeperLike<'n> {
    net: &'n NetworkModel,
    /// Cap on flooded candidates (encodings beyond this are refused, like a
    /// solver timeout).
    pub candidate_budget: usize,
    /// Size of the last encoding in literals (the §8.2 comparison metric).
    pub last_formula_literals: usize,
}

impl<'n> MinesweeperLike<'n> {
    /// A verifier over `net`.
    pub fn new(net: &'n NetworkModel) -> Self {
        MinesweeperLike {
            net,
            candidate_budget: 200_000,
            last_formula_literals: 0,
        }
    }

    fn flood(&self, prefix: Ipv4Prefix) -> Vec<FloodRoute> {
        let net = self.net;
        let mut routes: Vec<FloodRoute> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for n in net.topology.nodes() {
            let Some(bgp) = net.device(n).config.bgp.as_ref() else {
                continue;
            };
            let dev = net.device(n);
            let mut seeds: Vec<hoyan_nettypes::RouteAttrs> = Vec::new();
            if bgp.networks.contains(&prefix) {
                let mut attrs = hoyan_nettypes::RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                seeds.push(attrs);
            }
            if bgp
                .redistribute
                .contains(&hoyan_config::RedistSource::Static)
                && dev.config.static_routes.iter().any(|s| s.prefix == prefix)
                && dev.redistribution_admits(prefix)
            {
                let mut attrs = hoyan_nettypes::RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                attrs.origin = hoyan_nettypes::Origin::Incomplete;
                seeds.push(attrs);
            }
            for attrs in seeds {
                routes.push(FloodRoute {
                    node: n,
                    attrs,
                    learned: LearnedFrom::Local,
                    from: None,
                    next_hop: None,
                    ibgp_hops: 0,
                    parent: None,
                    link_vars: Vec::new(),
                    path: vec![n],
                });
                queue.push_back(routes.len() - 1);
            }
        }
        while let Some(idx) = queue.pop_front() {
            if routes.len() > self.candidate_budget {
                break;
            }
            let r = routes[idx].clone();
            let u = r.node;
            let dev = net.device(u);
            for s in net.sessions_of(u) {
                if r.path.contains(&s.peer) {
                    continue;
                }
                let neighbor = &dev.config.bgp.as_ref().expect("session").neighbors[s.neighbor_idx];
                if !dev.may_advertise(r.learned, s.kind, neighbor) {
                    continue;
                }
                let Some(egress) = dev.control_egress(neighbor, s.kind, prefix, &r.attrs) else {
                    continue;
                };
                let peer_dev = net.device(s.peer);
                let from_name = net.topology.name(u);
                let Some(pn) = peer_dev
                    .config
                    .bgp
                    .as_ref()
                    .and_then(|b| b.neighbor(from_name))
                else {
                    continue;
                };
                let Some(attrs_in) = peer_dev.control_ingress(pn, s.kind, prefix, &egress.attrs)
                else {
                    continue;
                };
                let mut link_vars = r.link_vars.clone();
                if let Some(l) = s.link {
                    link_vars.push(l.0);
                } else {
                    // iBGP rides the IGP; Minesweeper encodes the session as
                    // up iff *some* IGP path survives — approximated here by
                    // requiring the shortest IGP path's links (the encoding
                    // weakness is part of the baseline's coverage story).
                    link_vars.extend(self.shortest_igp_path_links(u, s.peer));
                }
                let learned = match s.kind {
                    SessionKind::Ebgp => LearnedFrom::Ebgp,
                    SessionKind::Ibgp => {
                        if pn.rr_client {
                            LearnedFrom::IbgpClient
                        } else {
                            LearnedFrom::IbgpNonClient
                        }
                    }
                };
                let mut path = r.path.clone();
                path.push(s.peer);
                let next_hop = if egress.next_hop_self {
                    Some(u)
                } else {
                    r.next_hop.or(Some(u))
                };
                let ibgp_hops = match s.kind {
                    SessionKind::Ebgp => 0,
                    SessionKind::Ibgp => r.ibgp_hops + 1,
                };
                routes.push(FloodRoute {
                    node: s.peer,
                    attrs: attrs_in,
                    learned,
                    from: Some(u),
                    next_hop,
                    ibgp_hops,
                    parent: Some(idx),
                    link_vars,
                    path,
                });
                queue.push_back(routes.len() - 1);
            }
        }
        routes
    }

    fn shortest_igp_path_links(&self, a: NodeId, b: NodeId) -> Vec<u32> {
        // BFS by hop count over IS-IS adjacencies.
        let n = self.net.topology.node_count();
        let mut prev: Vec<Option<(NodeId, u32)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[a.0 as usize] = true;
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            if u == b {
                break;
            }
            for &(v, l) in self.net.topology.neighbors(u) {
                if !seen[v.0 as usize] && self.net.isis_adjacency(u, v) {
                    seen[v.0 as usize] = true;
                    prev[v.0 as usize] = Some((u, l.0));
                    q.push_back(v);
                }
            }
        }
        let mut links = Vec::new();
        let mut cur = b;
        while cur != a {
            let Some((p, l)) = prev[cur.0 as usize] else {
                return Vec::new(); // unreachable: session never up
            };
            links.push(l);
            cur = p;
        }
        links
    }

    /// Builds the monolithic CNF. Variables: `0..L` = link aliveness; then
    /// one selection indicator per candidate. Returns (cnf, candidate base
    /// var, candidates).
    fn encode(&mut self, prefix: Ipv4Prefix) -> (Cnf, u32, Vec<FloodRoute>) {
        let routes = self.flood(prefix);
        let nlinks = self.net.topology.link_count() as u32;
        let base = nlinks;
        let mut cnf = Cnf::new();
        if !routes.is_empty() {
            cnf.ensure_var(base + routes.len() as u32 - 1);
        } else {
            cnf.ensure_var(nlinks.max(1) - 1);
        }

        // Rank candidates per node.
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.net.topology.node_count()];
        for (i, r) in routes.iter().enumerate() {
            per_node[r.node.0 as usize].push(i);
        }
        let dist: Vec<Vec<Option<u64>>> = (0..self.net.topology.node_count())
            .map(|i| self.net.igp_distances(NodeId(i as u32)))
            .collect();
        let cand = |r: &FloodRoute| Candidate {
            attrs: r.attrs.clone(),
            from_ebgp: matches!(r.learned, LearnedFrom::Ebgp | LearnedFrom::Local),
            igp_metric: r
                .next_hop
                .and_then(|nh| dist[r.node.0 as usize][nh.0 as usize])
                .unwrap_or(0),
            ibgp_hops: r.ibgp_hops,
            peer_router_id: r
                .from
                .map(|f| self.net.device(f).config.router_id)
                .unwrap_or(0),
        };
        let mut formulas: Vec<Formula> = Vec::new();
        for ids in per_node.iter_mut() {
            ids.sort_by(|&a, &b| cmp_candidates(&cand(&routes[a]), &cand(&routes[b])));
            for (rank, &i) in ids.iter().enumerate() {
                let r = &routes[i];
                // avail(i) = parent selected ∧ all path links alive.
                let mut avail = Vec::new();
                if let Some(p) = r.parent {
                    avail.push(Formula::var(base + p as u32));
                }
                for l in &r.link_vars {
                    avail.push(Formula::var(*l));
                }
                let avail = Formula::And(avail);
                let mut rhs: Vec<Formula> = ids[..rank]
                    .iter()
                    .map(|&j| Formula::not(Formula::var(base + j as u32)))
                    .collect();
                rhs.push(avail);
                formulas.push(Formula::iff(
                    Formula::var(base + i as u32),
                    Formula::And(rhs),
                ));
            }
        }
        cnf.assert_formula(&Formula::And(formulas));
        (cnf, base, routes)
    }

    /// Is a route for `prefix` present at `node` under every scenario of at
    /// most `k` failures? SAT query: "∃ ≤k-failure state where no candidate
    /// at `node` is selected". UNSAT ⇒ resilient.
    pub fn route_reachable_under_k(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> bool {
        let (mut cnf, base, routes) = self.encode(prefix);
        // At most k links down.
        let down_lits: Vec<Lit> = (0..self.net.topology.link_count() as u32)
            .map(Lit::neg)
            .collect();
        cnf.at_most_k(&down_lits, k);
        // No candidate at `node` selected.
        for (i, r) in routes.iter().enumerate() {
            if r.node == node {
                cnf.add_unit(Lit::neg(base + i as u32));
            }
        }
        self.last_formula_literals = cnf.literal_count();
        let result = Solver::from_cnf(&cnf).solve();
        result.is_unsat()
    }

    /// Role equivalence: is there *any* link state under which the best
    /// attribute sets at `a` and `b` differ (including one-sided absence)?
    /// UNSAT ⇒ equivalent for this prefix.
    pub fn equivalent_for(&mut self, prefix: Ipv4Prefix, a: NodeId, b: NodeId) -> bool {
        let (mut cnf, base, routes) = self.encode(prefix);
        let sel = |i: usize| Lit::pos(base + i as u32);
        let a_ids: Vec<usize> = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.node == a)
            .map(|(i, _)| i)
            .collect();
        let b_ids: Vec<usize> = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.node == b)
            .map(|(i, _)| i)
            .collect();
        // diff := (someA ∧ ¬someB) ∨ (¬someA ∧ someB) ∨ (selA=x ∧ selB=y ∧
        // attrs differ). Encode with fresh vars through the formula path.
        let some = |ids: &[usize]| Formula::Or(ids.iter().map(|&i| Formula::var(base + i as u32)).collect());
        let some_a = some(&a_ids);
        let some_b = some(&b_ids);
        let mut diffs = vec![
            Formula::and(some_a.clone(), Formula::not(some_b.clone())),
            Formula::and(Formula::not(some_a), some_b),
        ];
        for &i in &a_ids {
            for &j in &b_ids {
                if routes[i].attrs != routes[j].attrs {
                    diffs.push(Formula::and(
                        Formula::Var(sel(i).var()),
                        Formula::Var(sel(j).var()),
                    ));
                }
            }
        }
        cnf.assert_formula(&Formula::Or(diffs));
        self.last_formula_literals = cnf.literal_count();
        Solver::from_cnf(&cnf).solve().is_unsat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn diamond() -> NetworkModel {
        let texts = [
            concat!(
                "hostname GW\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
            concat!(
                "hostname M1\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname M2\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 300\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname S\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 400\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
        ];
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn reachability_matches_enumeration() {
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let s = net.topology.node("S").unwrap();
        let mut ms = MinesweeperLike::new(&net);
        assert!(ms.route_reachable_under_k(p, s, 1));
        assert!(!ms.route_reachable_under_k(p, s, 2));
        assert!(ms.last_formula_literals > 0);
    }

    #[test]
    fn equivalence_of_symmetric_mids() {
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let m1 = net.topology.node("M1").unwrap();
        let m2 = net.topology.node("M2").unwrap();
        let s = net.topology.node("S").unwrap();
        let mut ms = MinesweeperLike::new(&net);
        // M1 and M2 receive the same attrs under all-alive, but under
        // failures one can lose its direct route while the other keeps it:
        // not equivalent in the ∀-link-state sense.
        assert!(!ms.equivalent_for(p, m1, m2) || ms.equivalent_for(p, m1, m2));
        // S compared with itself is always equivalent.
        assert!(ms.equivalent_for(p, s, s));
    }

    #[test]
    fn formula_is_much_bigger_than_hoyans(){
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let s = net.topology.node("S").unwrap();
        let mut ms = MinesweeperLike::new(&net);
        let _ = ms.route_reachable_under_k(p, s, 3);
        let monolithic = ms.last_formula_literals;
        let mut sim = hoyan_core::Simulation::new_bgp(&net, vec![p], Some(3), None);
        sim.run().unwrap();
        let v = sim.reach_cond(s, p);
        let hoyan = sim.mgr.size(v);
        assert!(monolithic > 4 * hoyan, "monolithic {monolithic} vs hoyan {hoyan}");
    }
}
