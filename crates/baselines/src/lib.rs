#![warn(missing_docs)]

//! Reimplementations of the three verifier families Hoyan is compared
//! against in §8.2, over the same configuration IR and device behavior
//! models, so the comparison isolates the *verification strategy*:
//!
//! - [`concrete`]: a plain (unconditioned) control-plane simulator — the
//!   building block of the Batfish-like baseline;
//! - [`batfish`]: simulation-based verification that enumerates every
//!   failure scenario of at most `k` links — `Σ (n choose i)` simulations;
//! - [`minesweeper`]: formula-based verification that encodes the whole
//!   network's route selection for a prefix as one monolithic CNF and asks
//!   a SAT solver for counterexamples;
//! - [`plankton`]: model-checking-style verification that explores failure
//!   scenarios *and* route-arrival orders (convergence ambiguity) per
//!   scenario.
//!
//! None of these carry topology conditions — that is precisely Hoyan's
//! advantage the experiments demonstrate.

pub mod batfish;
pub mod concrete;
pub mod minesweeper;
pub mod plankton;

pub use batfish::BatfishLike;
pub use concrete::{ConcreteRoute, ConcreteState};
pub use minesweeper::MinesweeperLike;
pub use plankton::PlanktonLike;

use hoyan_nettypes::LinkId;

/// All failure sets of size at most `k` out of `n` links, smallest first —
/// the `Σ (n choose i)` scenarios a simulation-based verifier must
/// enumerate (§2).
pub fn failure_sets(n: usize, k: usize) -> Vec<Vec<LinkId>> {
    let mut out = vec![Vec::new()];
    for size in 1..=k.min(n) {
        out.extend(combinations(n, size));
    }
    out
}

fn combinations(n: usize, size: usize) -> Vec<Vec<LinkId>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..size).collect();
    loop {
        out.push(combo.iter().map(|i| LinkId(*i as u32)).collect());
        let mut i = size;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if combo[i] != i + n - size {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_set_counts_are_binomial_sums() {
        // n=5, k=2: 1 + 5 + 10 = 16.
        assert_eq!(failure_sets(5, 2).len(), 16);
        // n=4, k=0: only the empty set.
        assert_eq!(failure_sets(4, 0).len(), 1);
        // n=3, k=3: the full power set = 8.
        assert_eq!(failure_sets(3, 3).len(), 8);
    }

    #[test]
    fn failure_sets_are_distinct() {
        let sets = failure_sets(6, 3);
        let mut seen = std::collections::HashSet::new();
        for s in &sets {
            let key: Vec<u32> = s.iter().map(|l| l.0).collect();
            assert!(seen.insert(key), "duplicate failure set {s:?}");
        }
        assert_eq!(sets.len(), 1 + 6 + 15 + 20);
    }
}
