//! A plain, unconditioned control-plane simulator: converges one concrete
//! topology (some links dead) to its steady state. This is the inner loop
//! of the Batfish-like baseline and the per-scenario engine of the
//! Plankton-like one; it shares the device behavior models with Hoyan so
//! both verifiers agree route-for-route on any single scenario.

use std::collections::{HashMap, HashSet};

use hoyan_config::RedistSource;
use hoyan_core::NetworkModel;
use hoyan_device::{cmp_candidates, Candidate, LearnedFrom, SessionKind};
use hoyan_nettypes::{Ipv4Prefix, LinkId, NodeId, Origin, RouteAttrs};

/// One concrete route in a node's RIB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteRoute {
    /// Attributes as stored.
    pub attrs: RouteAttrs,
    /// Advertising peer.
    pub from: Option<NodeId>,
    /// How it was learned.
    pub learned: LearnedFrom,
    /// BGP next hop.
    pub next_hop: Option<NodeId>,
    /// IGP metric to the next hop on the surviving topology.
    pub igp_metric: u64,
    /// Advertiser's router id.
    pub peer_router_id: u32,
    /// iBGP reflection hops (cluster-list proxy).
    pub ibgp_hops: u32,
}

impl ConcreteRoute {
    fn candidate(&self) -> Candidate {
        Candidate {
            attrs: self.attrs.clone(),
            from_ebgp: matches!(self.learned, LearnedFrom::Ebgp | LearnedFrom::Local),
            igp_metric: self.igp_metric,
            ibgp_hops: self.ibgp_hops,
            peer_router_id: self.peer_router_id,
        }
    }
}

/// Converged state of one concrete scenario.
#[derive(Clone, Debug, Default)]
pub struct ConcreteState {
    /// Ranked routes per (node, prefix); index 0 is the best.
    pub ribs: HashMap<(NodeId, Ipv4Prefix), Vec<ConcreteRoute>>,
}

impl ConcreteState {
    /// The best route at a node.
    pub fn best(&self, node: NodeId, prefix: Ipv4Prefix) -> Option<&ConcreteRoute> {
        self.ribs.get(&(node, prefix)).and_then(|v| v.first())
    }

    /// Whether any route exists at a node.
    pub fn has_route(&self, node: NodeId, prefix: Ipv4Prefix) -> bool {
        self.ribs.contains_key(&(node, prefix))
    }
}

/// IGP (IS-IS) shortest-path distances on the surviving topology.
pub fn igp_distances_with_failures(
    net: &NetworkModel,
    src: NodeId,
    dead: &HashSet<LinkId>,
) -> Vec<Option<u64>> {
    let n = net.topology.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[src.0 as usize] = Some(0);
    if !net.runs_isis(src) {
        return dist;
    }
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, src.0)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if dist[u as usize] != Some(d) {
            continue;
        }
        let u_id = NodeId(u);
        for &(v, link) in net.topology.neighbors(u_id) {
            if dead.contains(&link) || !net.isis_adjacency(u_id, v) {
                continue;
            }
            let nd = d + net.topology.metric_from(u_id, link) as u64;
            if dist[v.0 as usize].is_none_or(|old| nd < old) {
                dist[v.0 as usize] = Some(nd);
                heap.push(std::cmp::Reverse((nd, v.0)));
            }
        }
    }
    dist
}

/// Converges `prefixes` on the topology with `dead` links failed.
///
/// Synchronous rounds: every node recomputes its best routes from what it
/// last received and re-announces; a fixpoint is reached when a full round
/// changes nothing. Per-(sender, receiver) slots give BGP's implicit-
/// withdraw semantics.
pub fn converge(
    net: &NetworkModel,
    prefixes: &[Ipv4Prefix],
    dead: &HashSet<LinkId>,
) -> ConcreteState {
    let n = net.topology.node_count();
    // IGP distances per node (for session liveness + metric tie-break).
    let dist: Vec<Vec<Option<u64>>> = (0..n)
        .map(|i| igp_distances_with_failures(net, NodeId(i as u32), dead))
        .collect();

    // received[(receiver, sender, prefix)] = route as accepted by ingress.
    let mut received: HashMap<(NodeId, NodeId, Ipv4Prefix), ConcreteRoute> = HashMap::new();

    // Local seeds.
    let mut locals: HashMap<(NodeId, Ipv4Prefix), Vec<ConcreteRoute>> = HashMap::new();
    for i in 0..n {
        let node = NodeId(i as u32);
        let dev = net.device(node);
        let Some(bgp) = dev.config.bgp.as_ref() else {
            continue;
        };
        for p in prefixes {
            let mut seeds = Vec::new();
            if bgp.networks.contains(p) {
                let mut attrs = RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                seeds.push(attrs);
            }
            if bgp.redistribute.contains(&RedistSource::Static)
                && dev.config.static_routes.iter().any(|s| s.prefix == *p)
                && dev.redistribution_admits(*p)
            {
                let mut attrs = RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                attrs.origin = Origin::Incomplete;
                seeds.push(attrs);
            }
            for attrs in seeds {
                locals.entry((node, *p)).or_default().push(ConcreteRoute {
                    attrs,
                    from: None,
                    learned: LearnedFrom::Local,
                    next_hop: None,
                    igp_metric: 0,
                    peer_router_id: dev.config.router_id,
                    ibgp_hops: 0,
                });
            }
        }
    }

    let ranked_rib = |received: &HashMap<(NodeId, NodeId, Ipv4Prefix), ConcreteRoute>,
                      node: NodeId,
                      p: Ipv4Prefix|
     -> Vec<ConcreteRoute> {
        let mut rib: Vec<ConcreteRoute> = locals.get(&(node, p)).cloned().unwrap_or_default();
        for s in net.sessions_of(node) {
            if let Some(r) = received.get(&(node, s.peer, p)) {
                rib.push(r.clone());
            }
        }
        rib.sort_by(|a, b| cmp_candidates(&a.candidate(), &b.candidate()));
        rib
    };

    let max_rounds = 4 * n + 16;
    for _round in 0..max_rounds {
        let mut changed = false;
        for i in 0..n {
            let u = NodeId(i as u32);
            let dev = net.device(u);
            for p in prefixes {
                let rib = ranked_rib(&received, u, *p);
                let best = rib.first();
                for s in net.sessions_of(u) {
                    // Session liveness on the surviving topology.
                    let alive = match s.kind {
                        SessionKind::Ebgp => s.link.map(|l| !dead.contains(&l)).unwrap_or(false),
                        SessionKind::Ibgp => {
                            dist[u.0 as usize][s.peer.0 as usize].is_some()
                                && dist[s.peer.0 as usize][u.0 as usize].is_some()
                        }
                    };
                    let key = (s.peer, u, *p);
                    let mut new_val: Option<ConcreteRoute> = None;
                    if alive {
                        if let Some(best) = best {
                            let neighbor =
                                &dev.config.bgp.as_ref().expect("session").neighbors
                                    [s.neighbor_idx];
                            let eligible = best.from != Some(s.peer)
                                && dev.may_advertise(best.learned, s.kind, neighbor);
                            if eligible {
                                if let Some(egress) =
                                    dev.control_egress(neighbor, s.kind, *p, &best.attrs)
                                {
                                    // Receiver-side ingress.
                                    let peer_dev = net.device(s.peer);
                                    let from_name = net.topology.name(u);
                                    if let Some(peer_neighbor) = peer_dev
                                        .config
                                        .bgp
                                        .as_ref()
                                        .and_then(|b| b.neighbor(from_name))
                                    {
                                        if let Some(attrs_in) = peer_dev.control_ingress(
                                            peer_neighbor,
                                            s.kind,
                                            *p,
                                            &egress.attrs,
                                        ) {
                                            let next_hop = if egress.next_hop_self {
                                                Some(u)
                                            } else {
                                                best.next_hop.or(Some(u))
                                            };
                                            let igp_metric = next_hop
                                                .and_then(|nh| {
                                                    dist[s.peer.0 as usize][nh.0 as usize]
                                                })
                                                .unwrap_or(0);
                                            let learned = match s.kind {
                                                SessionKind::Ebgp => LearnedFrom::Ebgp,
                                                SessionKind::Ibgp => {
                                                    if peer_neighbor.rr_client {
                                                        LearnedFrom::IbgpClient
                                                    } else {
                                                        LearnedFrom::IbgpNonClient
                                                    }
                                                }
                                            };
                                            let ibgp_hops = match s.kind {
                                                SessionKind::Ibgp => best.ibgp_hops + 1,
                                                SessionKind::Ebgp => 0,
                                            };
                                            new_val = Some(ConcreteRoute {
                                                attrs: attrs_in,
                                                from: Some(u),
                                                learned,
                                                next_hop,
                                                igp_metric,
                                                peer_router_id: dev.config.router_id,
                                                ibgp_hops,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let old = received.get(&key);
                    if old != new_val.as_ref() {
                        changed = true;
                        match new_val {
                            Some(v) => {
                                received.insert(key, v);
                            }
                            None => {
                                received.remove(&key);
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut state = ConcreteState::default();
    for i in 0..n {
        let node = NodeId(i as u32);
        for p in prefixes {
            let rib = ranked_rib(&received, node, *p);
            if !rib.is_empty() {
                state.ribs.insert((node, *p), rib);
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn diamond() -> NetworkModel {
        let configs = vec![
            parse_config(concat!(
                "hostname GW\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname M1\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname M2\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 300\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ))
            .unwrap(),
            parse_config(concat!(
                "hostname S\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 400\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ))
            .unwrap(),
        ];
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn healthy_topology_propagates_everywhere() {
        let net = diamond();
        let state = converge(&net, &[pfx("10.0.1.0/24")], &HashSet::new());
        for name in ["GW", "M1", "M2", "S"] {
            let n = net.topology.node(name).unwrap();
            assert!(state.has_route(n, pfx("10.0.1.0/24")), "{name} missing route");
        }
        let s = net.topology.node("S").unwrap();
        assert_eq!(state.ribs[&(s, pfx("10.0.1.0/24"))].len(), 2);
    }

    #[test]
    fn failure_reroutes_through_surviving_path() {
        let net = diamond();
        let gw = net.topology.node("GW").unwrap();
        let m1 = net.topology.node("M1").unwrap();
        let s = net.topology.node("S").unwrap();
        let dead: HashSet<LinkId> = [net.topology.link_between(gw, m1).unwrap()].into();
        let state = converge(&net, &[pfx("10.0.1.0/24")], &dead);
        let best = state.best(s, pfx("10.0.1.0/24")).unwrap();
        // Only the M2 path remains.
        let m2 = net.topology.node("M2").unwrap();
        assert_eq!(best.from, Some(m2));
        assert_eq!(state.ribs[&(s, pfx("10.0.1.0/24"))].len(), 1);
    }

    #[test]
    fn disconnection_empties_rib() {
        let net = diamond();
        let gw = net.topology.node("GW").unwrap();
        let m1 = net.topology.node("M1").unwrap();
        let m2 = net.topology.node("M2").unwrap();
        let dead: HashSet<LinkId> = [
            net.topology.link_between(gw, m1).unwrap(),
            net.topology.link_between(gw, m2).unwrap(),
        ]
        .into();
        let state = converge(&net, &[pfx("10.0.1.0/24")], &dead);
        let s = net.topology.node("S").unwrap();
        assert!(!state.has_route(s, pfx("10.0.1.0/24")));
        assert!(state.has_route(gw, pfx("10.0.1.0/24"))); // local seed
    }
}
