//! The Batfish-like baseline: simulation-based verification. Fast for one
//! snapshot, but `k`-failure coverage requires *enumerating* every failure
//! scenario and re-simulating — `Σ (n choose i)` control-plane convergences
//! (§2), which is what Tables 4 and 5 show blowing up.

use std::collections::HashSet;

use hoyan_core::NetworkModel;
use hoyan_nettypes::{Ipv4Prefix, LinkId, NodeId};

use crate::concrete::{converge, ConcreteState};
use crate::failure_sets;

/// The simulation-enumeration verifier.
pub struct BatfishLike<'n> {
    net: &'n NetworkModel,
    /// Optional budget: abort (returning `None`) after this many scenarios.
    pub scenario_budget: Option<usize>,
    /// Optional wall-clock deadline: abort (returning `None`) past it.
    pub deadline: Option<std::time::Instant>,
    /// Scenarios actually simulated by the last query.
    pub scenarios_run: usize,
}

impl<'n> BatfishLike<'n> {
    /// A verifier over `net`.
    pub fn new(net: &'n NetworkModel) -> Self {
        BatfishLike {
            net,
            scenario_budget: None,
            deadline: None,
            scenarios_run: 0,
        }
    }

    /// Converges one concrete scenario.
    pub fn simulate(&self, prefixes: &[Ipv4Prefix], dead: &HashSet<LinkId>) -> ConcreteState {
        converge(self.net, prefixes, dead)
    }

    fn out_of_budget(&self) -> bool {
        if let Some(budget) = self.scenario_budget {
            if self.scenarios_run >= budget {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() > d {
                return true;
            }
        }
        false
    }

    /// Exhaustive verification: simulates **every** scenario of at most `k`
    /// failures (no early exit — this is the full `Σ (n choose i)` cost a
    /// simulation-based verifier pays to *prove* a property) and returns the
    /// number of scenarios in which `node` lacks a route. `None` = budget
    /// exhausted.
    pub fn count_breaking_scenarios(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> Option<usize> {
        let sets = failure_sets(self.net.topology.link_count(), k);
        self.scenarios_run = 0;
        let mut breaking = 0usize;
        for dead_links in sets {
            if self.out_of_budget() {
                return None;
            }
            self.scenarios_run += 1;
            let dead: HashSet<LinkId> = dead_links.into_iter().collect();
            let state = converge(self.net, &[prefix], &dead);
            if !state.has_route(node, prefix) {
                breaking += 1;
            }
        }
        Some(breaking)
    }

    /// Is a route for `prefix` present at `node` under **every** scenario
    /// of at most `k` failures? `None` = budget exhausted (the `> 24h`
    /// table cells).
    pub fn route_reachable_under_k(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> Option<bool> {
        let sets = failure_sets(self.net.topology.link_count(), k);
        self.scenarios_run = 0;
        for dead_links in sets {
            if self.out_of_budget() {
                return None;
            }
            self.scenarios_run += 1;
            let dead: HashSet<LinkId> = dead_links.into_iter().collect();
            let state = converge(self.net, &[prefix], &dead);
            if !state.has_route(node, prefix) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// The minimum failure-set size that breaks reachability, searching by
    /// increasing size up to `k` (exhaustive, like running Batfish `(n
    /// choose k)` times). `Ok(None)` = survives everything up to `k`.
    pub fn min_failures_to_break(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> Option<Option<usize>> {
        let sets = failure_sets(self.net.topology.link_count(), k);
        self.scenarios_run = 0;
        for dead_links in sets {
            if self.out_of_budget() {
                return None;
            }
            self.scenarios_run += 1;
            let size = dead_links.len();
            let dead: HashSet<LinkId> = dead_links.into_iter().collect();
            let state = converge(self.net, &[prefix], &dead);
            if !state.has_route(node, prefix) {
                return Some(Some(size));
            }
        }
        Some(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_core::Simulation;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn diamond() -> NetworkModel {
        let texts = [
            concat!(
                "hostname GW\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
            concat!(
                "hostname M1\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname M2\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 300\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname S\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 400\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
        ];
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn agrees_with_hoyan_on_the_diamond() {
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let s = net.topology.node("S").unwrap();

        // Hoyan: conditioned simulation.
        let mut sim = Simulation::new_bgp(&net, vec![p], Some(3), None);
        sim.run().unwrap();
        let v = sim.reach_cond(s, p);
        let hoyan_min = sim.mgr.min_failures_to_falsify(v);

        // Batfish-like: enumerate.
        let mut bf = BatfishLike::new(&net);
        assert_eq!(bf.route_reachable_under_k(p, s, 1), Some(true));
        assert_eq!(bf.route_reachable_under_k(p, s, 2), Some(false));
        assert_eq!(bf.min_failures_to_break(p, s, 3), Some(Some(2)));
        assert_eq!(hoyan_min, 2);
    }

    #[test]
    fn scenario_count_is_binomial() {
        let net = diamond(); // 4 links
        let mut bf = BatfishLike::new(&net);
        let _ = bf.route_reachable_under_k(pfx("10.0.1.0/24"), net.topology.node("GW").unwrap(), 2);
        // 1 + 4 + 6 = 11 scenarios (GW always has the local route, so no
        // early exit).
        assert_eq!(bf.scenarios_run, 11);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let net = diamond();
        let s = net.topology.node("S").unwrap();
        let mut bf = BatfishLike::new(&net);
        bf.scenario_budget = Some(3);
        assert_eq!(bf.route_reachable_under_k(pfx("10.0.1.0/24"), s, 2), None);
    }

    #[test]
    fn agrees_with_verifier_on_random_scenarios() {
        // Cross-check: concrete converge() vs Hoyan's conditioned sim
        // evaluated under each specific failure assignment.
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let mut sim = Simulation::new_bgp(&net, vec![p], None, None);
        sim.run().unwrap();
        for dead_links in failure_sets(net.topology.link_count(), 2) {
            let dead: HashSet<LinkId> = dead_links.iter().copied().collect();
            let state = converge(&net, &[p], &dead);
            let mut assign = vec![true; net.topology.link_count()];
            for l in &dead {
                assign[l.0 as usize] = false;
            }
            for n in net.topology.nodes() {
                let cond = sim.reach_cond(n, p);
                let hoyan_reach = sim.mgr.eval(cond, &assign);
                let concrete_reach = state.has_route(n, p);
                assert_eq!(
                    hoyan_reach,
                    concrete_reach,
                    "divergence at {} under {:?}",
                    net.topology.name(n),
                    dead
                );
            }
        }
    }
}
