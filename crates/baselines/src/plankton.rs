//! The Plankton-like baseline: model checking over failure scenarios *and*
//! route-arrival orders. Per failure scenario it enumerates the distinct
//! convergence outcomes (equivalence-class exploration stands in for
//! Plankton's partial-order reduction); a property must hold in every
//! outcome of every scenario. Handles racing like Hoyan, but pays the
//! scenario × ordering product the paper shows timing out for k ≥ 2.

use std::collections::{HashSet, VecDeque};

use hoyan_core::NetworkModel;
use hoyan_device::{cmp_candidates, Candidate, LearnedFrom, SessionKind};
use hoyan_logic::{Cnf, Formula, Solver};
use hoyan_nettypes::{Ipv4Prefix, LinkId, NodeId};

use crate::failure_sets;

/// The explicit-exploration verifier.
pub struct PlanktonLike<'n> {
    net: &'n NetworkModel,
    /// Abort after this many (scenario, outcome) explorations.
    pub exploration_budget: Option<usize>,
    /// Optional wall-clock deadline.
    pub deadline: Option<std::time::Instant>,
    /// Explorations performed by the last query.
    pub explorations: usize,
}

impl<'n> PlanktonLike<'n> {
    /// A verifier over `net`.
    pub fn new(net: &'n NetworkModel) -> Self {
        PlanktonLike {
            net,
            exploration_budget: None,
            deadline: None,
            explorations: 0,
        }
    }

    /// All convergence outcomes (projected on "node has a selected route")
    /// for one failure scenario, up to `limit` outcomes.
    fn outcomes_for_scenario(
        &self,
        prefix: Ipv4Prefix,
        dead: &HashSet<LinkId>,
        target: NodeId,
        limit: usize,
    ) -> Vec<bool> {
        // Flood candidates on the surviving topology.
        #[derive(Clone)]
        struct R {
            node: NodeId,
            attrs: hoyan_nettypes::RouteAttrs,
            learned: LearnedFrom,
            from: Option<NodeId>,
            next_hop: Option<NodeId>,
            ibgp_hops: u32,
            parent: Option<usize>,
            path: Vec<NodeId>,
        }
        let net = self.net;
        let mut routes: Vec<R> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for n in net.topology.nodes() {
            let Some(bgp) = net.device(n).config.bgp.as_ref() else {
                continue;
            };
            let dev = net.device(n);
            let mut seeds: Vec<hoyan_nettypes::RouteAttrs> = Vec::new();
            if bgp.networks.contains(&prefix) {
                let mut attrs = hoyan_nettypes::RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                seeds.push(attrs);
            }
            if bgp
                .redistribute
                .contains(&hoyan_config::RedistSource::Static)
                && dev.config.static_routes.iter().any(|s| s.prefix == prefix)
                && dev.redistribution_admits(prefix)
            {
                let mut attrs = hoyan_nettypes::RouteAttrs::originated();
                attrs.weight = hoyan_core::LOCAL_WEIGHT;
                attrs.origin = hoyan_nettypes::Origin::Incomplete;
                seeds.push(attrs);
            }
            for attrs in seeds {
                routes.push(R {
                    node: n,
                    attrs,
                    learned: LearnedFrom::Local,
                    from: None,
                    next_hop: None,
                    ibgp_hops: 0,
                    parent: None,
                    path: vec![n],
                });
                queue.push_back(routes.len() - 1);
            }
        }
        while let Some(idx) = queue.pop_front() {
            if routes.len() > 50_000 {
                break;
            }
            let r = routes[idx].clone();
            let u = r.node;
            let dev = net.device(u);
            for s in net.sessions_of(u) {
                // Session liveness under the scenario.
                let alive = match s.kind {
                    SessionKind::Ebgp => s.link.map(|l| !dead.contains(&l)).unwrap_or(false),
                    SessionKind::Ibgp => {
                        let d =
                            crate::concrete::igp_distances_with_failures(net, u, dead);
                        d[s.peer.0 as usize].is_some()
                    }
                };
                if !alive || r.path.contains(&s.peer) {
                    continue;
                }
                let neighbor = &dev.config.bgp.as_ref().expect("session").neighbors[s.neighbor_idx];
                if !dev.may_advertise(r.learned, s.kind, neighbor) {
                    continue;
                }
                let Some(egress) = dev.control_egress(neighbor, s.kind, prefix, &r.attrs) else {
                    continue;
                };
                let peer_dev = net.device(s.peer);
                let from_name = net.topology.name(u);
                let Some(pn) = peer_dev
                    .config
                    .bgp
                    .as_ref()
                    .and_then(|b| b.neighbor(from_name))
                else {
                    continue;
                };
                let Some(attrs_in) = peer_dev.control_ingress(pn, s.kind, prefix, &egress.attrs)
                else {
                    continue;
                };
                let learned = match s.kind {
                    SessionKind::Ebgp => LearnedFrom::Ebgp,
                    SessionKind::Ibgp => {
                        if pn.rr_client {
                            LearnedFrom::IbgpClient
                        } else {
                            LearnedFrom::IbgpNonClient
                        }
                    }
                };
                let mut path = r.path.clone();
                path.push(s.peer);
                let next_hop = if egress.next_hop_self {
                    Some(u)
                } else {
                    r.next_hop.or(Some(u))
                };
                let ibgp_hops = match s.kind {
                    SessionKind::Ibgp => r.ibgp_hops + 1,
                    SessionKind::Ebgp => 0,
                };
                routes.push(R {
                    node: s.peer,
                    attrs: attrs_in,
                    learned,
                    from: Some(u),
                    next_hop,
                    ibgp_hops,
                    parent: Some(idx),
                    path,
                });
                queue.push_back(routes.len() - 1);
            }
        }
        if routes.is_empty() {
            return vec![false];
        }

        // Selection constraint system; enumerate outcomes projected on
        // "target selects something".
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); net.topology.node_count()];
        for (i, r) in routes.iter().enumerate() {
            per_node[r.node.0 as usize].push(i);
        }
        let dist: Vec<Vec<Option<u64>>> = (0..net.topology.node_count())
            .map(|i| {
                crate::concrete::igp_distances_with_failures(net, NodeId(i as u32), dead)
            })
            .collect();
        let cand = |r: &R| Candidate {
            attrs: r.attrs.clone(),
            from_ebgp: matches!(r.learned, LearnedFrom::Ebgp | LearnedFrom::Local),
            igp_metric: r
                .next_hop
                .and_then(|nh| dist[r.node.0 as usize][nh.0 as usize])
                .unwrap_or(0),
            ibgp_hops: r.ibgp_hops,
            peer_router_id: r.from.map(|f| net.device(f).config.router_id).unwrap_or(0),
        };
        let mut formulas = Vec::new();
        for ids in per_node.iter_mut() {
            ids.sort_by(|&a, &b| cmp_candidates(&cand(&routes[a]), &cand(&routes[b])));
            for (rank, &i) in ids.iter().enumerate() {
                let avail = match routes[i].parent {
                    None => Formula::Const(true),
                    Some(p) => Formula::var(p as u32),
                };
                let mut rhs: Vec<Formula> = ids[..rank]
                    .iter()
                    .map(|&j| Formula::not(Formula::var(j as u32)))
                    .collect();
                rhs.push(avail);
                formulas.push(Formula::iff(Formula::var(i as u32), Formula::And(rhs)));
            }
        }
        let mut cnf = Cnf::new();
        cnf.ensure_var(routes.len() as u32 - 1);
        cnf.assert_formula(&Formula::And(formulas));
        let vars: Vec<u32> = (0..routes.len() as u32).collect();
        let models = Solver::from_cnf(&cnf).count_models(&vars, limit);
        let target_ids: Vec<usize> = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.node == target)
            .map(|(i, _)| i)
            .collect();
        models
            .iter()
            .map(|m| target_ids.iter().any(|&i| m[i]))
            .collect()
    }

    /// Does `node` hold a route for `prefix` in **every** convergence
    /// outcome of **every** scenario of at most `k` failures? `None` =
    /// budget exhausted.
    pub fn route_reachable_under_k(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> Option<bool> {
        self.explore(prefix, node, k, true).map(|b| b == 0)
    }

    /// Exhaustive exploration: visits every scenario and outcome (no early
    /// exit) and returns the number of (scenario, outcome) pairs where
    /// `node` lacks a route. `None` = budget exhausted.
    pub fn count_breaking(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
    ) -> Option<usize> {
        self.explore(prefix, node, k, false)
    }

    fn explore(
        &mut self,
        prefix: Ipv4Prefix,
        node: NodeId,
        k: usize,
        early_exit: bool,
    ) -> Option<usize> {
        self.explorations = 0;
        let mut breaking = 0usize;
        for dead_links in failure_sets(self.net.topology.link_count(), k) {
            if let Some(budget) = self.exploration_budget {
                if self.explorations >= budget {
                    return None;
                }
            }
            if let Some(d) = self.deadline {
                if std::time::Instant::now() > d {
                    return None;
                }
            }
            let dead: HashSet<LinkId> = dead_links.into_iter().collect();
            let outcomes = self.outcomes_for_scenario(prefix, &dead, node, 64);
            self.explorations += outcomes.len().max(1);
            breaking += outcomes.iter().filter(|ok| !**ok).count();
            if early_exit && breaking > 0 {
                return Some(breaking);
            }
        }
        Some(breaking)
    }

    /// Whether convergence is ambiguous (more than one outcome) in the
    /// no-failure scenario — Plankton's racing coverage.
    pub fn racing_ambiguous(&mut self, prefix: Ipv4Prefix) -> bool {
        let outcomes =
            self.outcomes_for_scenario(prefix, &HashSet::new(), NodeId(0), 64);
        // Outcome count > 1 means different orders converge differently —
        // projected on any node; use full-model count instead.
        outcomes.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoyan_config::parse_config;
    use hoyan_device::VsbProfile;
    use hoyan_nettypes::pfx;

    fn diamond() -> NetworkModel {
        let texts = [
            concat!(
                "hostname GW\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 100\n network 10.0.1.0/24\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
            concat!(
                "hostname M1\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname M2\ninterface e0\n peer GW\ninterface e1\n peer S\n",
                "router bgp 300\n neighbor GW remote-as 100\n neighbor S remote-as 400\n",
            ),
            concat!(
                "hostname S\ninterface e0\n peer M1\ninterface e1\n peer M2\n",
                "router bgp 400\n neighbor M1 remote-as 200\n neighbor M2 remote-as 300\n",
            ),
        ];
        let configs = texts.iter().map(|t| parse_config(t).unwrap()).collect();
        NetworkModel::from_configs(configs, VsbProfile::ground_truth).unwrap()
    }

    #[test]
    fn agrees_with_enumeration_on_diamond() {
        let net = diamond();
        let p = pfx("10.0.1.0/24");
        let s = net.topology.node("S").unwrap();
        let mut pl = PlanktonLike::new(&net);
        assert_eq!(pl.route_reachable_under_k(p, s, 1), Some(true));
        assert_eq!(pl.route_reachable_under_k(p, s, 2), Some(false));
        assert!(pl.explorations > 0);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let net = diamond();
        let s = net.topology.node("S").unwrap();
        let mut pl = PlanktonLike::new(&net);
        pl.exploration_budget = Some(2);
        assert_eq!(pl.route_reachable_under_k(pfx("10.0.1.0/24"), s, 2), None);
    }

    #[test]
    fn diamond_has_unambiguous_convergence() {
        let net = diamond();
        let mut pl = PlanktonLike::new(&net);
        assert!(!pl.racing_ambiguous(pfx("10.0.1.0/24")));
    }
}
