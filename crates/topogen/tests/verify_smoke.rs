//! End-to-end smoke: the verifier must handle generated WANs.

use hoyan_core::Verifier;
use hoyan_device::VsbProfile;
use hoyan_topogen::WanSpec;

#[test]
fn tiny_wan_verifies() {
    let wan = WanSpec::tiny(1).build();
    let verifier = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let p = wan.customer_prefixes[0];
    // The prefix must reach a remote-region core router.
    let report = verifier.route_reachability(p, "CR1x0", 1).unwrap();
    assert!(report.reachable_now, "route must propagate: {report:?}");
}

#[test]
fn small_wan_full_sweep() {
    let wan = WanSpec::small(2).build();
    let verifier = Verifier::new(wan.configs.clone(), VsbProfile::ground_truth, Some(3)).unwrap();
    let t0 = std::time::Instant::now();
    let reports = verifier.verify_all_routes(1, 8).unwrap().reports;
    eprintln!("small sweep k=1: {} prefixes in {:?}", reports.len(), t0.elapsed());
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(r.scope.len() >= 2, "prefix {} should propagate, scope={:?}", r.prefix, r.scope);
    }
}
