//! Golden-file check for topology generation: the emitted configuration
//! texts of a seeded WAN are pinned byte-for-byte. Any change to the
//! in-tree PRNG, the generator's draw order, or the config emitter that
//! alters generated topologies shows up as a diff here, not as silent
//! benchmark/experiment drift.
//!
//! To re-bless after an *intentional* generator change:
//!
//! ```text
//! HOYAN_BLESS=1 cargo test -p hoyan-topogen --test golden_wan
//! ```

use hoyan_topogen::WanSpec;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/tiny_wan_seed42.txt"
);

fn render(seed: u64) -> String {
    let wan = WanSpec::tiny(seed).build();
    let mut out = String::new();
    for (cfg, text) in wan.configs.iter().zip(&wan.texts) {
        out.push_str(&format!("===== {} =====\n", cfg.hostname));
        out.push_str(text);
        if !text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// FNV-1a over the rendered snapshot — a cheap fixed-width fingerprint for
/// the larger spec sizes where a full golden file would be unwieldy.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn tiny_wan_matches_golden_file() {
    let got = render(42);
    if std::env::var("HOYAN_BLESS").map(|v| v == "1").unwrap_or(false) {
        std::fs::write(GOLDEN, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN} ({e}); run with HOYAN_BLESS=1 to create it")
    });
    assert!(
        got == want,
        "generated tiny WAN (seed 42) diverged from the golden snapshot.\n\
         If the generator change is intentional, re-bless with:\n\
         HOYAN_BLESS=1 cargo test -p hoyan-topogen --test golden_wan\n\
         (got {} bytes, want {} bytes)",
        got.len(),
        want.len()
    );
}

#[test]
fn small_wan_fingerprint_is_stable() {
    let wan = WanSpec::small(7).build();
    let mut out = String::new();
    for t in &wan.texts {
        out.push_str(t);
        out.push('\n');
    }
    // Pinned fingerprint of the seed-7 small WAN. A failure here means the
    // generator's output changed; verify the change is intentional, then
    // update the constant with the printed value.
    const EXPECTED: u64 = 0xeedb_2845_89ca_ad72;
    let h = fnv1a(&out);
    assert!(
        h == EXPECTED,
        "small WAN (seed 7) fingerprint changed: got {h:#018x}, want {EXPECTED:#018x}.\n\
         If the generator change is intentional, update EXPECTED."
    );
}
