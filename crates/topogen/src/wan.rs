//! The WAN generator.
//!
//! Layout per region `r`:
//!
//! ```text
//!   DC[r,p] ==eBGP== PE[r,p] ====== CR[r,0] ---- backbone ring + extra
//!                      \\            |            cross-region links
//!                       \\========= CR[r,1]      (asymmetric)
//!   ISP[r,i] ==eBGP== MAN[r,i] ==== CR[r,0], CR[r,1]
//! ```
//!
//! The core (CR/PE/MAN) is one AS running iBGP over IS-IS: core routers are
//! route reflectors, PE/MAN routers their clients. Each PE pair announces
//! customer prefixes learned over eBGP from its DC edge; PEs also carry a
//! static route pinning the DC path for one prefix, and two designated
//! "old" PEs override the eBGP protocol preference to 30 — the §7.1 outage
//! ingredients. MAN routers peer with external ISPs; egress policy toward
//! ISPs only announces customer routes (matched by community).

use hoyan_config::*;
use hoyan_nettypes::{AsNum, Community, Ipv4Addr, Ipv4Prefix};
use hoyan_rt::rng::StdRng;

/// The backbone AS number.
pub const CORE_AS: AsNum = 64500;
/// Community tagged on customer routes at PE ingress.
pub const CUSTOMER_COMMUNITY: Community = Community {
    raw: (64500u32 << 16) | 100,
    extended: false,
};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct WanSpec {
    /// RNG seed (all output is deterministic in the seed).
    pub seed: u64,
    /// Number of geographic regions.
    pub regions: usize,
    /// Provider-edge routers per region (each with a DC edge).
    pub pes_per_region: usize,
    /// MAN routers per region (each with an external ISP).
    pub mans_per_region: usize,
    /// Customer leaf (/24) prefixes per PE.
    pub prefixes_per_pe: usize,
    /// Extra random cross-region core links (asymmetry knob).
    pub extra_core_links: usize,
    /// Leaf prefixes per aggregate block. At the default (`1`) every
    /// customer prefix is a flat /24 as before. At `4`, each PE's leaves
    /// are grouped into /22 blocks and the DC additionally announces the
    /// covering /22 — the overlap closure then co-simulates each block as
    /// one five-prefix family, which is how the paper-scale preset reaches
    /// O(10k) prefixes without O(10k) separate simulations.
    pub block_prefixes: usize,
}

impl WanSpec {
    /// A few-node WAN for unit tests.
    pub fn tiny(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 2,
            pes_per_region: 1,
            mans_per_region: 1,
            prefixes_per_pe: 1,
            extra_core_links: 1,
            block_prefixes: 1,
        }
    }

    /// Roughly 20 core routers — the paper's "small subnet" (§8.2).
    pub fn small(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 2,
            pes_per_region: 5,
            mans_per_region: 3,
            prefixes_per_pe: 2,
            extra_core_links: 2,
            block_prefixes: 1,
        }
    }

    /// Roughly 80 core routers — the paper's "medium subnet" (§8.2).
    pub fn medium(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 5,
            pes_per_region: 8,
            mans_per_region: 6,
            prefixes_per_pe: 2,
            extra_core_links: 5,
            block_prefixes: 1,
        }
    }

    /// The reference WAN (O(100) core routers) used for the in-the-wild
    /// figures.
    pub fn reference(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 6,
            pes_per_region: 9,
            mans_per_region: 7,
            prefixes_per_pe: 3,
            extra_core_links: 8,
            block_prefixes: 1,
        }
    }

    /// Paper-scale preset (~100 devices including DC and ISP edges):
    /// 4 regions of 2 CRs + 8 PEs + 3 MANs, i.e. 52 core routers, plus one
    /// DC router per PE and one ISP per MAN. The scale used by
    /// `experiments modular` to measure how much of the sweep the abstract
    /// first pass settles.
    pub fn wan_large(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 4,
            pes_per_region: 8,
            mans_per_region: 3,
            prefixes_per_pe: 2,
            extra_core_links: 4,
            block_prefixes: 1,
        }
    }

    /// The Table-3 preset: O(100) core routers and O(10k) announced
    /// customer prefixes. Leaves are grouped into /22 aggregate blocks
    /// (`block_prefixes = 4`, i.e. five announced prefixes per block) so
    /// the sweep co-simulates each block as one family — the scale knob
    /// that makes a whole-WAN sweep tractable, exactly like the paper's
    /// per-"related group" simulation. Seeded and pinned like `wan_large`
    /// (see `wan_paper_is_table3_scale`).
    pub fn wan_paper(seed: u64) -> WanSpec {
        WanSpec {
            seed,
            regions: 4,
            pes_per_region: 10,
            mans_per_region: 3,
            prefixes_per_pe: 200,
            extra_core_links: 4,
            block_prefixes: 4,
        }
    }

    /// Number of core (single-AS) routers this spec produces.
    pub fn core_router_count(&self) -> usize {
        self.regions * (2 + self.pes_per_region + self.mans_per_region)
    }

    /// Builds the WAN.
    pub fn build(&self) -> Wan {
        Builder::new(self.clone()).build()
    }
}

/// A generated WAN: parsed configs plus emitted texts and bookkeeping.
#[derive(Clone, Debug)]
pub struct Wan {
    /// Parsed device configurations (core + externals).
    pub configs: Vec<DeviceConfig>,
    /// The emitted configuration text per device (parse-verified).
    pub texts: Vec<String>,
    /// Customer prefixes announced by DC edges.
    pub customer_prefixes: Vec<Ipv4Prefix>,
    /// External (ISP) prefixes.
    pub external_prefixes: Vec<Ipv4Prefix>,
    /// Redundant device pairs subject to the equivalent-role intent (the
    /// two core routers of each region).
    pub equiv_pairs: Vec<(String, String)>,
    /// Mapping `(prefix, dc, pe)` for every customer prefix.
    pub prefix_origin: Vec<(Ipv4Prefix, String, String)>,
    /// The two "old" PEs whose eBGP preference is 30 (§7.1).
    pub old_pes: Vec<String>,
}

impl Wan {
    /// Total device count (core + external).
    pub fn device_count(&self) -> usize {
        self.configs.len()
    }

    /// Hostname list.
    pub fn hostnames(&self) -> Vec<&str> {
        self.configs.iter().map(|c| c.hostname.as_str()).collect()
    }

    /// Looks a config up by hostname.
    pub fn config(&self, hostname: &str) -> Option<&DeviceConfig> {
        self.configs.iter().find(|c| c.hostname == hostname)
    }
}

struct Builder {
    spec: WanSpec,
    rng: StdRng,
    configs: Vec<DeviceConfig>,
    customer_prefixes: Vec<Ipv4Prefix>,
    external_prefixes: Vec<Ipv4Prefix>,
    old_pes: Vec<String>,
    next_router_id: u32,
}

impl Builder {
    fn new(spec: WanSpec) -> Builder {
        let rng = StdRng::seed_from_u64(spec.seed);
        Builder {
            spec,
            rng,
            configs: Vec::new(),
            customer_prefixes: Vec::new(),
            external_prefixes: Vec::new(),
            old_pes: Vec::new(),
            next_router_id: 1,
        }
    }

    fn vendor_for(&mut self, role: &str) -> Vendor {
        match role {
            "core" => Vendor::A, // region parity overrides below
            "man" => {
                if self.rng.gen_bool(0.6) {
                    Vendor::B
                } else {
                    Vendor::A
                }
            }
            _ => {
                if self.rng.gen_bool(0.3) {
                    Vendor::C
                } else {
                    Vendor::A
                }
            }
        }
    }

    fn device(&mut self, hostname: &str, vendor: Vendor) -> usize {
        let mut cfg = DeviceConfig::new(hostname);
        cfg.vendor = vendor;
        cfg.router_id = self.next_router_id;
        self.next_router_id += 1;
        self.configs.push(cfg);
        self.configs.len() - 1
    }

    fn find(&mut self, hostname: &str) -> usize {
        self.configs
            .iter()
            .position(|c| c.hostname == hostname)
            .expect("device exists")
    }

    /// Adds a bidirectional link unless the pair is already linked.
    fn link(&mut self, a: &str, b: &str, metric: u32) {
        let ai = self.find(a);
        if self.configs[ai].interfaces.iter().any(|i| i.peer == b) {
            return;
        }
        self.link_unchecked(a, b, metric);
    }

    fn link_unchecked(&mut self, a: &str, b: &str, metric: u32) {
        let ai = self.find(a);
        let n = self.configs[ai].interfaces.len();
        self.configs[ai].interfaces.push(InterfaceConfig {
            name: format!("eth{n}"),
            peer: b.to_string(),
            link_metric: metric,
            acl_in: None,
            acl_out: None,
        });
        let bi = self.find(b);
        let n = self.configs[bi].interfaces.len();
        self.configs[bi].interfaces.push(InterfaceConfig {
            name: format!("eth{n}"),
            peer: a.to_string(),
            link_metric: metric,
            acl_in: None,
            acl_out: None,
        });
    }

    fn enable_isis(&mut self, hostname: &str, area: u32, level: IsisLevel) {
        let i = self.find(hostname);
        self.configs[i].isis = Some(IsisConfig { area, level, protocol: IgpKind::Isis });
    }

    fn bgp(&mut self, hostname: &str, asn: AsNum) -> &mut BgpConfig {
        let i = self.find(hostname);
        self.configs[i].bgp.get_or_insert_with(|| BgpConfig::new(asn))
    }

    fn build(mut self) -> Wan {
        let spec = self.spec.clone();

        // ---- Devices ----
        for r in 0..spec.regions {
            for c in 0..2 {
                // Odd regions run vendor-B cores: a VSB on a backbone relay
                // cascades to everything downstream (the paper's accuracy
                // collapse before the tuner ran).
                let v = if r % 2 == 1 { Vendor::B } else { self.vendor_for("core") };
                self.device(&format!("CR{r}x{c}"), v);
            }
            for p in 0..spec.pes_per_region {
                let v = self.vendor_for("pe");
                self.device(&format!("PE{r}x{p}"), v);
                self.device(&format!("DC{r}x{p}"), Vendor::A);
            }
            for m in 0..spec.mans_per_region {
                let v = self.vendor_for("man");
                self.device(&format!("MAN{r}x{m}"), v);
                self.device(&format!("ISP{r}x{m}"), Vendor::A);
            }
        }

        // ---- Physical links ----
        // Backbone: dual ring over region cores + intra-region core pair.
        for r in 0..spec.regions {
            self.link(&format!("CR{r}x0"), &format!("CR{r}x1"), 10);
            let next = (r + 1) % spec.regions;
            if next != r {
                self.link(&format!("CR{r}x0"), &format!("CR{next}x0"), 20);
                self.link(&format!("CR{r}x1"), &format!("CR{next}x1"), 25);
            }
        }
        // Extra asymmetric cross-region links.
        for _ in 0..spec.extra_core_links {
            let r1 = self.rng.gen_range(0..spec.regions);
            let r2 = self.rng.gen_range(0..spec.regions);
            let c1 = self.rng.gen_range(0..2);
            let c2 = self.rng.gen_range(0..2);
            let a = format!("CR{r1}x{c1}");
            let b = format!("CR{r2}x{c2}");
            if a == b {
                continue;
            }
            let ai = self.find(&a);
            if self.configs[ai].interfaces.iter().any(|i| i.peer == b) {
                continue;
            }
            let metric = self.rng.gen_range(15..40);
            self.link(&a, &b, metric);
        }
        // PEs to both region cores; DC edge to its PE.
        for r in 0..spec.regions {
            for p in 0..spec.pes_per_region {
                let pe = format!("PE{r}x{p}");
                self.link(&pe, &format!("CR{r}x0"), 10);
                self.link(&pe, &format!("CR{r}x1"), 10);
                self.link(&pe, &format!("DC{r}x{p}"), 5);
            }
            for m in 0..spec.mans_per_region {
                let man = format!("MAN{r}x{m}");
                self.link(&man, &format!("CR{r}x0"), 12);
                self.link(&man, &format!("CR{r}x1"), 12);
                self.link(&man, &format!("ISP{r}x{m}"), 5);
            }
        }

        // ---- IS-IS on the core AS ----
        for r in 0..spec.regions {
            for c in 0..2 {
                self.enable_isis(&format!("CR{r}x{c}"), 0, IsisLevel::L1L2);
            }
            for p in 0..spec.pes_per_region {
                self.enable_isis(&format!("PE{r}x{p}"), 0, IsisLevel::L1L2);
            }
            for m in 0..spec.mans_per_region {
                self.enable_isis(&format!("MAN{r}x{m}"), 0, IsisLevel::L1L2);
            }
        }

        // ---- Prefixes ----
        let mut customer_by_pe: Vec<(String, Vec<Ipv4Prefix>)> = Vec::new();
        let mut counter = 0u32;
        let mut block = 0u32;
        for r in 0..spec.regions {
            for p in 0..spec.pes_per_region {
                let mut list = Vec::new();
                if spec.block_prefixes > 1 {
                    // Aggregate blocks: each /22 covers `block_prefixes`
                    // leaf /24s announced alongside it, so the overlap
                    // closure co-simulates the whole block as one family.
                    let bs = spec.block_prefixes.min(4) as u32;
                    let blocks = spec.prefixes_per_pe / spec.block_prefixes.min(4);
                    for _ in 0..blocks {
                        let x = (block / 64) as u8;
                        let y = ((block % 64) * 4) as u8;
                        block += 1;
                        let agg = Ipv4Prefix::new(Ipv4Addr::new(10, x, y, 0), 22);
                        list.push(agg);
                        self.customer_prefixes.push(agg);
                        for i in 0..bs {
                            let pfx = Ipv4Prefix::new(
                                Ipv4Addr::new(10, x, y + i as u8, 0),
                                24,
                            );
                            list.push(pfx);
                            self.customer_prefixes.push(pfx);
                        }
                    }
                } else {
                    for _ in 0..spec.prefixes_per_pe {
                        let pfx = Ipv4Prefix::new(
                            Ipv4Addr::new(10, (counter / 250) as u8, (counter % 250) as u8, 0),
                            24,
                        );
                        counter += 1;
                        list.push(pfx);
                        self.customer_prefixes.push(pfx);
                    }
                }
                customer_by_pe.push((format!("DC{r}x{p}"), list));
            }
        }
        let mut ext_counter = 0u8;
        let mut external_by_isp: Vec<(String, Ipv4Prefix)> = Vec::new();
        for r in 0..spec.regions {
            for m in 0..spec.mans_per_region {
                let pfx =
                    Ipv4Prefix::new(Ipv4Addr::new(198, 18, ext_counter, 0), 24);
                ext_counter = ext_counter.wrapping_add(1);
                self.external_prefixes.push(pfx);
                external_by_isp.push((format!("ISP{r}x{m}"), pfx));
            }
        }

        // ---- BGP ----
        // Core routers: iBGP full mesh among cores + RR for region clients.
        let core_names: Vec<String> = (0..spec.regions)
            .flat_map(|r| (0..2).map(move |c| format!("CR{r}x{c}")))
            .collect();
        for name in &core_names {
            self.bgp(name, CORE_AS);
        }
        for i in 0..core_names.len() {
            for j in 0..core_names.len() {
                if i == j {
                    continue;
                }
                let peer = core_names[j].clone();
                let bgp = self.bgp(&core_names[i], CORE_AS);
                bgp.neighbor_mut(&peer, CORE_AS);
            }
        }

        // PE/MAN as RR clients of the two region cores.
        for r in 0..spec.regions {
            let cr0 = format!("CR{r}x0");
            let cr1 = format!("CR{r}x1");
            let mut clients: Vec<String> = (0..spec.pes_per_region)
                .map(|p| format!("PE{r}x{p}"))
                .collect();
            clients.extend((0..spec.mans_per_region).map(|m| format!("MAN{r}x{m}")));
            for client in clients {
                for cr in [&cr0, &cr1] {
                    let bgp = self.bgp(cr, CORE_AS);
                    bgp.neighbor_mut(&client, CORE_AS).rr_client = true;
                    let bgp = self.bgp(&client, CORE_AS);
                    let n = bgp.neighbor_mut(cr, CORE_AS);
                    n.next_hop_self = false;
                }
            }
        }

        // PE <-> DC edge eBGP, with customer-tagging ingress policy, a
        // static+redistribution for the first prefix, and next-hop-self
        // toward the cores.
        for (idx, (dc_name, prefixes)) in customer_by_pe.iter().enumerate() {
            let pe_name = dc_name.replace("DC", "PE");
            let dc_as: AsNum = 65000 + idx as u32;

            // DC edge announces its prefixes. Every third DC prepends a
            // public+private AS pattern (traffic engineering), which makes
            // the remove-private-AS semantics observable downstream.
            {
                let prepends = idx % 3 == 0;
                let bgp = self.bgp(dc_name, dc_as);
                bgp.networks.extend(prefixes.iter().copied());
                let n = bgp.neighbor_mut(&pe_name, CORE_AS);
                if prepends {
                    n.route_map_out = Some("RM_TE_OUT".to_string());
                }
                if prepends {
                    let i = self.find(dc_name);
                    let rm = self.configs[i]
                        .route_maps
                        .entry("RM_TE_OUT".to_string())
                        .or_default();
                    if rm.entries.is_empty() {
                        rm.entries.push(RouteMapEntry {
                            seq: 10,
                            action: Action::Permit,
                            matches: vec![],
                            sets: vec![SetClause::Prepend(vec![3356, 64513])],
                        });
                    }
                }
            }
            // PE ingress: permit only this DC's prefixes, tag community,
            // set customer local-pref.
            {
                let i = self.find(&pe_name);
                let cfg = &mut self.configs[i];
                let pl_name = "PL_CUST".to_string();
                let pl = cfg.prefix_lists.entry(pl_name.clone()).or_default();
                for p in prefixes {
                    pl.entries.push(PrefixListEntry {
                        action: Action::Permit,
                        prefix: *p,
                        ge: None,
                        le: None,
                    });
                }
                let rm = cfg.route_maps.entry("RM_CUST_IN".to_string()).or_default();
                if rm.entries.is_empty() {
                    rm.entries.push(RouteMapEntry {
                        seq: 10,
                        action: Action::Permit,
                        matches: vec![MatchClause::PrefixList(pl_name)],
                        sets: vec![
                            SetClause::LocalPref(300),
                            SetClause::Community {
                                community: CUSTOMER_COMMUNITY,
                                additive: true,
                            },
                        ],
                    });
                    rm.entries.push(RouteMapEntry {
                        seq: 20,
                        action: Action::Deny,
                        matches: vec![],
                        sets: vec![],
                    });
                }
                // A static pinning the DC-facing forwarding path for the
                // first prefix (the §7.1 ingredient: the FIB contest is
                // static-preference vs eBGP-preference).
                cfg.static_routes.push(StaticRoute {
                    prefix: prefixes[0],
                    next_hop: dc_name.clone(),
                    preference: 1,
                });
            }
            {
                let bgp = self.bgp(&pe_name, CORE_AS);
                let n = bgp.neighbor_mut(dc_name, dc_as);
                n.route_map_in = Some("RM_CUST_IN".to_string());
                // next-hop-self toward the RRs so core FIBs resolve via IGP.
                for cr in [
                    dc_name.replace("DC", "CR").split('x').next().unwrap().to_string() + "x0",
                    dc_name.replace("DC", "CR").split('x').next().unwrap().to_string() + "x1",
                ] {
                    let bgp2 = self.bgp(&pe_name, CORE_AS);
                    bgp2.neighbor_mut(&cr, CORE_AS).next_hop_self = true;
                }
            }
        }

        // MAN <-> ISP eBGP: ISP announces an external prefix; MAN egress to
        // the ISP only announces customer-tagged routes.
        for (idx, (isp_name, pfx)) in external_by_isp.iter().enumerate() {
            let man_name = isp_name.replace("ISP", "MAN");
            let isp_as: AsNum = 64600 + idx as u32;
            {
                let bgp = self.bgp(isp_name, isp_as);
                bgp.networks.push(*pfx);
                bgp.neighbor_mut(&man_name, CORE_AS);
            }
            {
                let i = self.find(&man_name);
                let cfg = &mut self.configs[i];
                let rm = cfg
                    .route_maps
                    .entry("RM_ISP_OUT".to_string())
                    .or_default();
                if rm.entries.is_empty() {
                    rm.entries.push(RouteMapEntry {
                        seq: 10,
                        action: Action::Permit,
                        matches: vec![MatchClause::Community(CUSTOMER_COMMUNITY)],
                        sets: vec![],
                    });
                    rm.entries.push(RouteMapEntry {
                        seq: 20,
                        action: Action::Deny,
                        matches: vec![],
                        sets: vec![],
                    });
                }
                let rm_in = cfg.route_maps.entry("RM_ISP_IN".to_string()).or_default();
                if rm_in.entries.is_empty() {
                    rm_in.entries.push(RouteMapEntry {
                        seq: 10,
                        action: Action::Permit,
                        matches: vec![],
                        sets: vec![SetClause::LocalPref(100)],
                    });
                }
            }
            {
                let bgp = self.bgp(&man_name, CORE_AS);
                let n = bgp.neighbor_mut(isp_name, isp_as);
                n.route_map_out = Some("RM_ISP_OUT".to_string());
                n.route_map_in = Some("RM_ISP_IN".to_string());
                // Private DC AS numbers must not leak to ISPs; the removal
                // semantics are the "remove private AS" VSB.
                n.remove_private_as = true;
                let region = man_name
                    .trim_start_matches("MAN")
                    .split('x')
                    .next()
                    .unwrap()
                    .to_string();
                for cr in [format!("CR{region}x0"), format!("CR{region}x1")] {
                    let bgp2 = self.bgp(&man_name, CORE_AS);
                    bgp2.neighbor_mut(&cr, CORE_AS).next_hop_self = true;
                }
            }
        }

        // All PEs run a vendor-default eBGP preference of 255, so statics
        // (preference 1..150) normally win the FIB merge; the two "old" PEs
        // below override it to 30 for a legacy business reason (§7.1).
        for r in 0..spec.regions {
            for p in 0..spec.pes_per_region {
                let name = format!("PE{r}x{p}");
                let i = self.find(&name);
                self.configs[i].preferences.ebgp = 255;
            }
        }

        // Two "old" PEs with eBGP preference 30 (§7.1).
        if spec.regions >= 1 && spec.pes_per_region >= 1 {
            for r in 0..spec.regions.min(2) {
                let name = format!("PE{r}x0");
                let i = self.find(&name);
                self.configs[i].preferences.ebgp = 30;
                self.old_pes.push(name);
            }
        }

        // ---- Emit & reparse (the pipeline always exercises the parser) ----
        let texts: Vec<String> = self.configs.iter().map(emit::emit_config).collect();
        let configs: Vec<DeviceConfig> = texts
            .iter()
            .map(|t| parse_config(t).expect("generated config must parse"))
            .collect();

        let equiv_pairs = (0..spec.regions)
            .map(|r| (format!("CR{r}x0"), format!("CR{r}x1")))
            .collect();
        let prefix_origin = customer_by_pe
            .iter()
            .flat_map(|(dc, prefixes)| {
                let pe = dc.replace("DC", "PE");
                prefixes
                    .iter()
                    .map(move |p| (*p, dc.clone(), pe.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        Wan {
            configs,
            texts,
            customer_prefixes: self.customer_prefixes,
            external_prefixes: self.external_prefixes,
            equiv_pairs,
            prefix_origin,
            old_pes: self.old_pes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_wan_builds_and_reparses() {
        let wan = WanSpec::tiny(1).build();
        assert_eq!(
            wan.device_count(),
            2 * (2 + 1 + 1) + 2 * 2 // core + DC/ISP externals
        );
        assert_eq!(wan.customer_prefixes.len(), 2);
        assert_eq!(wan.external_prefixes.len(), 2);
        for (cfg, text) in wan.configs.iter().zip(&wan.texts) {
            assert_eq!(&parse_config(text).unwrap(), cfg);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = WanSpec::small(7).build();
        let b = WanSpec::small(7).build();
        assert_eq!(a.texts, b.texts);
        let c = WanSpec::small(8).build();
        assert_ne!(a.texts, c.texts);
    }

    #[test]
    fn small_and_medium_sizes_match_paper_subnets() {
        assert_eq!(WanSpec::small(1).core_router_count(), 20);
        assert_eq!(WanSpec::medium(1).core_router_count(), 80);
        let reference = WanSpec::reference(1).core_router_count();
        assert!((90..=130).contains(&reference));
    }

    #[test]
    fn wan_large_is_paper_scale() {
        // The `gen --size wan-large` preset: ~100 devices total, pinned so
        // the modular-pipeline benchmarks measure a stable workload.
        let spec = WanSpec::wan_large(1);
        assert_eq!(spec.core_router_count(), 52);
        let wan = spec.build();
        assert_eq!(wan.device_count(), 96);
        assert_eq!(wan.customer_prefixes.len(), 64);
    }

    #[test]
    fn wan_paper_is_table3_scale() {
        // The `gen --size wan-paper` preset: O(100) routers and O(10k)
        // announced prefixes, pinned so `experiments wan` measures a
        // stable whole-WAN workload across PRs.
        let spec = WanSpec::wan_paper(1);
        assert_eq!(spec.core_router_count(), 60);
        let wan = spec.build();
        assert_eq!(wan.device_count(), 112);
        // 40 PEs × 50 blocks × (1 aggregate + 4 leaves).
        assert_eq!(wan.customer_prefixes.len(), 10_000);
        assert_eq!(wan.external_prefixes.len(), 12);
        // Every block is one overlap family: the /22 covers its leaves.
        let agg = wan.customer_prefixes[0];
        assert_eq!(agg.len(), 22);
        for leaf in &wan.customer_prefixes[1..5] {
            assert_eq!(leaf.len(), 24);
            assert!(agg.contains(*leaf), "{agg} should cover {leaf}");
        }
        // Blocks stay inside 10.0.0.0/8 well clear of the perturbation
        // range (10.240.0.0/12).
        let last = *wan.customer_prefixes.last().unwrap();
        assert!(last.network().octets()[1] < 32);
    }

    #[test]
    fn block_prefixes_default_keeps_legacy_addressing() {
        // `block_prefixes: 1` must reproduce the historical flat-/24
        // scheme byte-for-byte — committed fixtures and BENCH baselines
        // depend on it.
        let wan = WanSpec::wan_large(42).build();
        assert_eq!(wan.customer_prefixes.len(), 64);
        assert!(wan.customer_prefixes.iter().all(|p| p.len() == 24));
        assert_eq!(wan.customer_prefixes[0], "10.0.0.0/24".parse().unwrap());
    }

    #[test]
    fn old_pes_have_low_ebgp_preference() {
        let wan = WanSpec::small(3).build();
        assert_eq!(wan.old_pes.len(), 2);
        for pe in &wan.old_pes {
            assert_eq!(wan.config(pe).unwrap().preferences.ebgp, 30);
        }
    }

    #[test]
    fn pe_has_a_pinning_static() {
        let wan = WanSpec::tiny(5).build();
        let pe = wan.config("PE0x0").unwrap();
        assert_eq!(pe.static_routes.len(), 1);
        assert_eq!(pe.static_routes[0].preference, 1);
    }

    #[test]
    fn man_egress_policy_filters_by_community() {
        let wan = WanSpec::tiny(5).build();
        let man = wan.config("MAN0x0").unwrap();
        let rm = &man.route_maps["RM_ISP_OUT"];
        assert!(matches!(
            rm.entries[0].matches[0],
            MatchClause::Community(c) if c == CUSTOMER_COMMUNITY
        ));
    }
}
