#![warn(missing_docs)]

//! Seeded generators for WAN topologies, configurations and workloads.
//!
//! The paper's evaluation runs on Alibaba's production WAN; this crate is
//! the substitution (see DESIGN.md): a deterministic generator of
//! *asymmetric* global WANs with the same structural features the paper
//! stresses — a single-AS backbone running iBGP over IS-IS with route
//! reflection, provider-edge routers in redundant pairs, eBGP to
//! data-center edges and external ISPs, per-neighbor policies,
//! community-based egress control, multi-vendor devices, and statics with
//! redistribution.
//!
//! [`errors`] injects the §7 error classes into update plans for the
//! Figure 7 campaign: wrong static preference, IP conflicts from missing
//! filters, racing-prone dual announcements, and equivalence-breaking
//! per-device edits.

pub mod errors;
pub mod perturb;
pub mod vsb_scenarios;
pub mod wan;

pub use errors::{ErrorClass, InjectedUpdate, UpdatePlan};
pub use perturb::{Perturbation, PerturbationPlan};
pub use vsb_scenarios::{all_scenarios, scenario, Probe, VsbScenario};
pub use wan::{Wan, WanSpec};
