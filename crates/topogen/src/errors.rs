//! Update-plan generation with injected configuration errors — the workload
//! behind the Figure 7 campaign and the §7 case studies.
//!
//! Each [`InjectedUpdate`] is an *incremental command script* for one device
//! (merged onto the snapshot with `hoyan_config::apply_update`), optionally
//! carrying a seeded error of one of the paper's §7 classes.

use hoyan_config::apply_update;
use hoyan_nettypes::Ipv4Prefix;
use hoyan_rt::rng::StdRng;

use crate::wan::Wan;

/// The §7 error classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ErrorClass {
    /// §7.1: raise the static preference on a PE whose eBGP preference was
    /// specially configured to 30 — the static stops being used.
    WrongStaticPreference,
    /// §7.2: announce an IP prefix already used elsewhere (missing filter /
    /// address recovery confusion) — an IP conflict.
    IpConflict,
    /// §7.1/Fig 1: add an egress weight-rewriting policy on an iBGP session
    /// of a dual-announced prefix — convergence becomes arrival-order
    /// dependent.
    RacingWeightPolicy,
    /// §7.2: add an inbound deny on one router of a redundant PE pair but
    /// not its twin — breaks the equivalent-role property.
    EquivalenceBreak,
}

impl ErrorClass {
    /// All classes.
    pub const ALL: [ErrorClass; 4] = [
        ErrorClass::WrongStaticPreference,
        ErrorClass::IpConflict,
        ErrorClass::RacingWeightPolicy,
        ErrorClass::EquivalenceBreak,
    ];
}

/// One update in a plan: an incremental script for one device.
#[derive(Clone, Debug)]
pub struct InjectedUpdate {
    /// Target device hostname.
    pub device: String,
    /// The incremental command lines.
    pub script: String,
    /// The injected error, if this update is faulty.
    pub error: Option<ErrorClass>,
    /// A prefix relevant to checking the update (if any).
    pub focus_prefix: Option<Ipv4Prefix>,
}

/// A batch of updates (e.g. one month's operations).
#[derive(Clone, Debug)]
pub struct UpdatePlan {
    /// The updates in application order.
    pub updates: Vec<InjectedUpdate>,
}

impl UpdatePlan {
    /// Generates a plan of `n` updates against `wan`; each update is faulty
    /// with probability `error_rate`. Deterministic in `seed`.
    pub fn generate(wan: &Wan, seed: u64, n: usize, error_rate: f64) -> UpdatePlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut updates = Vec::new();
        for i in 0..n {
            let faulty = rng.gen_bool(error_rate);
            let update = if faulty {
                let class = ErrorClass::ALL[rng.gen_range(0..ErrorClass::ALL.len())];
                Self::faulty_update(wan, &mut rng, class, i)
            } else {
                Self::benign_update(wan, &mut rng, i)
            };
            if let Some(u) = update {
                updates.push(u);
            }
        }
        UpdatePlan { updates }
    }

    /// A harmless update: add a new, unused customer prefix announcement on
    /// a DC edge (footprint expansion — the most common daily operation).
    fn benign_update(wan: &Wan, rng: &mut StdRng, salt: usize) -> Option<InjectedUpdate> {
        let dcs: Vec<&str> = wan
            .hostnames()
            .into_iter()
            .filter(|h| h.starts_with("DC"))
            .collect();
        if dcs.is_empty() {
            return None;
        }
        let dc = dcs[rng.gen_range(0..dcs.len())];
        let new_prefix: Ipv4Prefix = format!("10.200.{}.0/24", salt % 250).parse().unwrap();
        // Announce it at the DC and admit it at the PE's prefix list.
        Some(InjectedUpdate {
            device: dc.to_string(),
            script: format!("router bgp 0\n network {new_prefix}\n"),
            error: None,
            focus_prefix: Some(new_prefix),
        })
    }

    fn faulty_update(
        wan: &Wan,
        rng: &mut StdRng,
        class: ErrorClass,
        salt: usize,
    ) -> Option<InjectedUpdate> {
        match class {
            ErrorClass::WrongStaticPreference => {
                let pe = wan.old_pes.get(salt % wan.old_pes.len().max(1))?.clone();
                let cfg = wan.config(&pe)?;
                let s = cfg.static_routes.first()?;
                Some(InjectedUpdate {
                    device: pe.clone(),
                    script: format!(
                        "no ip route {p} {nh}\nip route {p} {nh} preference 150\n",
                        p = s.prefix,
                        nh = s.next_hop
                    ),
                    error: Some(ErrorClass::WrongStaticPreference),
                    focus_prefix: Some(s.prefix),
                })
            }
            ErrorClass::IpConflict => {
                // Announce somebody else's prefix from a different DC edge.
                let victim = wan.customer_prefixes.first()?;
                let dcs: Vec<&str> = wan
                    .hostnames()
                    .into_iter()
                    .filter(|h| h.starts_with("DC") && !h.ends_with("0x0"))
                    .collect();
                let dc = dcs.get(rng.gen_range(0..dcs.len().max(1)))?.to_string();
                Some(InjectedUpdate {
                    device: dc,
                    script: format!("router bgp 0\n network {victim}\n"),
                    error: Some(ErrorClass::IpConflict),
                    focus_prefix: Some(*victim),
                })
            }
            ErrorClass::RacingWeightPolicy => {
                // On a core router, rewrite weight on an iBGP egress — with
                // a dual-announced prefix this makes convergence
                // order-dependent (Figure 1's shape).
                let crs: Vec<&str> = wan
                    .hostnames()
                    .into_iter()
                    .filter(|h| h.starts_with("CR"))
                    .collect();
                let cr = crs.get(rng.gen_range(0..crs.len().max(1)))?.to_string();
                let peer_cr = crs
                    .iter()
                    .find(|c| **c != cr)
                    .map(|c| c.to_string())?;
                let focus = wan.customer_prefixes.get(salt % wan.customer_prefixes.len())?;
                Some(InjectedUpdate {
                    device: cr.clone(),
                    script: format!(
                        "route-map RM_W{salt} permit 10\n set weight 100\nrouter bgp 0\n neighbor {peer_cr} route-map RM_W{salt} out\n",
                    ),
                    error: Some(ErrorClass::RacingWeightPolicy),
                    focus_prefix: Some(*focus),
                })
            }
            ErrorClass::EquivalenceBreak => {
                // Drop one customer prefix at CR{r}x0's ingress from the
                // prefix's PE — its twin CR{r}x1 keeps the route, breaking
                // the equivalent-role intent.
                let (prefix, _dc, pe) = wan
                    .prefix_origin
                    .get(salt % wan.prefix_origin.len().max(1))?
                    .clone();
                let region = pe.trim_start_matches("PE").split('x').next()?.to_string();
                let cr = format!("CR{region}x0");
                wan.config(&cr)?;
                Some(InjectedUpdate {
                    device: cr,
                    script: format!(
                        "ip prefix-list PL_DROP{salt} permit {prefix}\nroute-map RM_DROP{salt} deny 5\n match prefix-list PL_DROP{salt}\nroute-map RM_DROP{salt} permit 10\nrouter bgp 0\n neighbor {pe} route-map RM_DROP{salt} in\n"
                    ),
                    error: Some(ErrorClass::EquivalenceBreak),
                    focus_prefix: Some(prefix),
                })
            }
        }
    }

    /// Applies the plan to the snapshot, returning the updated configs.
    /// Scripts that reference `router bgp 0` are rewritten to the device's
    /// actual AS first (operator shorthand).
    pub fn apply(
        &self,
        wan: &Wan,
    ) -> Result<Vec<hoyan_config::DeviceConfig>, hoyan_config::ParseError> {
        let mut configs = wan.configs.clone();
        for u in &self.updates {
            let Some(idx) = configs.iter().position(|c| c.hostname == u.device) else {
                continue;
            };
            let asn = configs[idx].bgp.as_ref().map(|b| b.asn).unwrap_or(0);
            let script = u.script.replace("router bgp 0", &format!("router bgp {asn}"));
            configs[idx] = apply_update(&configs[idx], &script)?;
        }
        Ok(configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wan::WanSpec;

    #[test]
    fn plans_are_deterministic() {
        let wan = WanSpec::small(11).build();
        let p1 = UpdatePlan::generate(&wan, 42, 20, 0.3);
        let p2 = UpdatePlan::generate(&wan, 42, 20, 0.3);
        assert_eq!(p1.updates.len(), p2.updates.len());
        for (a, b) in p1.updates.iter().zip(&p2.updates) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.script, b.script);
            assert_eq!(a.error, b.error);
        }
    }

    #[test]
    fn plans_apply_cleanly() {
        let wan = WanSpec::small(11).build();
        let plan = UpdatePlan::generate(&wan, 7, 12, 0.5);
        assert!(!plan.updates.is_empty());
        let updated = plan.apply(&wan).expect("scripts merge");
        assert_eq!(updated.len(), wan.configs.len());
        // At least one update actually changed something.
        assert!(updated
            .iter()
            .zip(&wan.configs)
            .any(|(a, b)| a != b));
    }

    #[test]
    fn wrong_static_preference_targets_old_pe() {
        let wan = WanSpec::small(11).build();
        let mut rng = StdRng::seed_from_u64(1);
        let u = UpdatePlan::faulty_update(&wan, &mut rng, ErrorClass::WrongStaticPreference, 0)
            .expect("old PEs exist");
        assert!(wan.old_pes.contains(&u.device));
        assert!(u.script.contains("preference 150"));
    }

    #[test]
    fn error_rate_zero_yields_benign_plan() {
        let wan = WanSpec::small(11).build();
        let plan = UpdatePlan::generate(&wan, 3, 10, 0.0);
        assert!(plan.updates.iter().all(|u| u.error.is_none()));
    }
}
