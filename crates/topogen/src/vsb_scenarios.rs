//! Minimal scenarios that exercise each of the eight Table 2 VSBs.
//!
//! Each scenario is a small network where the *true* behavior of a
//! vendor-B or -C device differs observably from the naive (vendor-A)
//! assumption, so the behavior model tuner can detect and localize exactly
//! that VSB. The Table 2 experiment drives all eight through the tuner.

use hoyan_config::{parse_config, DeviceConfig};
use hoyan_nettypes::{pfx, Ipv4Addr, Ipv4Prefix};

/// A probe packet description for data-plane VSBs.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Source device hostname.
    pub src_device: String,
    /// Destination address (inside the family's prefix).
    pub dst: Ipv4Addr,
}

/// One VSB-exercising scenario.
#[derive(Clone, Debug)]
pub struct VsbScenario {
    /// The VSB class this scenario manifests.
    pub kind: hoyan_device::VsbKind,
    /// Device configurations.
    pub configs: Vec<DeviceConfig>,
    /// The prefix family to validate.
    pub family: Vec<Ipv4Prefix>,
    /// Hostname of the device carrying the VSB.
    pub culprit: String,
    /// A data-plane probe, for VSBs invisible to control-plane ext-RIBs.
    pub probe: Option<Probe>,
}

fn cfgs(texts: &[String]) -> Vec<DeviceConfig> {
    texts
        .iter()
        .map(|t| parse_config(t).expect("scenario config parses"))
        .collect()
}

/// Builds the scenario for a VSB kind.
pub fn scenario(kind: hoyan_device::VsbKind) -> VsbScenario {
    use hoyan_device::VsbKind as K;
    match kind {
        K::DefaultAcl => {
            // B binds an ACL that matches nothing relevant; whether the
            // probe passes is the vendor's default-ACL action (A: deny,
            // B: permit). Control-plane RIBs are identical.
            let texts = vec![
                concat!(
                    "hostname GW\nvendor A\nrouter-id 1\ninterface e0\n peer FW\n",
                    "router bgp 100\n network 10.7.0.0/24\n neighbor FW remote-as 200\n",
                )
                .to_string(),
                concat!(
                    "hostname FW\nvendor B\nrouter-id 2\ninterface e0\n peer GW\ninterface e1\n peer S\n access-group EDGE in\n",
                    "access-list EDGE deny udp any 192.168.0.0/16\n",
                    "router bgp 200\n neighbor GW remote-as 100\n neighbor S remote-as 300\n",
                )
                .to_string(),
                concat!(
                    "hostname S\nvendor A\nrouter-id 3\ninterface e0\n peer FW\n",
                    "router bgp 300\n neighbor FW remote-as 200\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.7.0.0/24")],
                culprit: "FW".into(),
                probe: Some(Probe {
                    src_device: "S".into(),
                    dst: "10.7.0.9".parse().unwrap(),
                }),
            }
        }
        K::DefaultRoutePolicy => {
            // B binds an ingress route-map whose entries match nothing the
            // GW announces: A's default accepts, B's rejects.
            let texts = vec![
                concat!(
                    "hostname GW\nvendor A\nrouter-id 1\ninterface e0\n peer R\n",
                    "router bgp 100\n network 10.8.0.0/24\n neighbor R remote-as 200\n",
                )
                .to_string(),
                concat!(
                    "hostname R\nvendor B\nrouter-id 2\ninterface e0\n peer GW\n",
                    "ip prefix-list ONLY9 permit 9.0.0.0/8\n",
                    "route-map NARROW permit 10\n match prefix-list ONLY9\n",
                    "router bgp 200\n neighbor GW remote-as 100\n neighbor GW route-map NARROW in\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.8.0.0/24")],
                culprit: "R".into(),
                probe: None,
            }
        }
        K::Community => {
            // The Figure 6 chain (see hoyan-tuner's tests): B strips
            // communities on send.
            let texts = vec![
                concat!(
                    "hostname R1\nvendor A\nrouter-id 1\ninterface e0\n peer R2\n",
                    "route-map TAG permit 10\n set community 100:920 additive\n",
                    "router bgp 100\n network 10.0.0.0/8\n network 20.0.0.0/8\n",
                    " neighbor R2 remote-as 200\n neighbor R2 route-map TAG out\n",
                )
                .to_string(),
                concat!(
                    "hostname R2\nvendor B\nrouter-id 2\ninterface e0\n peer R1\ninterface e1\n peer R3\n",
                    "router bgp 200\n neighbor R1 remote-as 100\n neighbor R3 remote-as 300\n",
                )
                .to_string(),
                concat!(
                    "hostname R3\nvendor A\nrouter-id 3\ninterface e0\n peer R2\n",
                    "router bgp 300\n neighbor R2 remote-as 200\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.0.0.0/8"), pfx("20.0.0.0/8")],
                culprit: "R2".into(),
                probe: None,
            }
        }
        K::RouteRedistribution => {
            // B redistributes a static default route; A would not.
            let texts = vec![
                concat!(
                    "hostname B1\nvendor B\nrouter-id 1\ninterface e0\n peer R\ninterface e1\n peer UP\n",
                    "ip route 0.0.0.0/0 UP preference 1\n",
                    "router bgp 100\n redistribute static\n neighbor R remote-as 200\n",
                )
                .to_string(),
                concat!(
                    "hostname R\nvendor A\nrouter-id 2\ninterface e0\n peer B1\n",
                    "router bgp 200\n neighbor B1 remote-as 100\n",
                )
                .to_string(),
                "hostname UP\nvendor A\nrouter-id 3\ninterface e0\n peer B1\n".to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("0.0.0.0/0")],
                culprit: "B1".into(),
                probe: None,
            }
        }
        K::AsLoop => {
            // The origin prepends a repeated AS; vendor B accepts the
            // repetition, vendor A rejects it.
            let texts = vec![
                concat!(
                    "hostname O\nvendor A\nrouter-id 1\ninterface e0\n peer R\n",
                    "route-map REP permit 10\n set as-path prepend 300 300\n",
                    "router bgp 100\n network 10.9.0.0/24\n",
                    " neighbor R remote-as 200\n neighbor R route-map REP out\n",
                )
                .to_string(),
                concat!(
                    "hostname R\nvendor B\nrouter-id 2\ninterface e0\n peer O\n",
                    "router bgp 200\n neighbor O remote-as 100\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.9.0.0/24")],
                culprit: "R".into(),
                probe: None,
            }
        }
        K::RemovePrivateAs => {
            // Mixed private/public/private path; B's leading-only removal
            // leaves different ASes than A's remove-all.
            let texts = vec![
                concat!(
                    "hostname O\nvendor A\nrouter-id 1\ninterface e0\n peer M\n",
                    "route-map TE permit 10\n set as-path prepend 64512 3356 64513\n",
                    "router bgp 100\n network 10.6.0.0/24\n",
                    " neighbor M remote-as 200\n neighbor M route-map TE out\n",
                )
                .to_string(),
                concat!(
                    "hostname M\nvendor B\nrouter-id 2\ninterface e0\n peer O\ninterface e1\n peer X\n",
                    "router bgp 200\n neighbor O remote-as 100\n neighbor O allowas-in\n",
                    " neighbor X remote-as 300\n neighbor X remove-private-as\n",
                )
                .to_string(),
                concat!(
                    "hostname X\nvendor A\nrouter-id 3\ninterface e0\n peer M\n",
                    "router bgp 300\n neighbor M remote-as 200\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.6.0.0/24")],
                culprit: "M".into(),
                probe: None,
            }
        }
        K::SelfNextHop => {
            // B relays an eBGP route over iBGP without explicit
            // next-hop-self; the VSB silently rewrites the next hop.
            let texts = vec![
                concat!(
                    "hostname E\nvendor A\nrouter-id 1\ninterface e0\n peer PE\n",
                    "router bgp 900\n network 10.5.0.0/24\n neighbor PE remote-as 100\n",
                )
                .to_string(),
                concat!(
                    "hostname PE\nvendor B\nrouter-id 2\ninterface e0\n peer E\ninterface e1\n peer CR\n",
                    "router bgp 100\n neighbor E remote-as 900\n neighbor CR remote-as 100\n",
                    "router isis\n area 1\n",
                )
                .to_string(),
                concat!(
                    "hostname CR\nvendor A\nrouter-id 3\ninterface e0\n peer PE\n",
                    "router bgp 100\n neighbor PE remote-as 100\n",
                    "router isis\n area 1\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.5.0.0/24")],
                culprit: "PE".into(),
                probe: None,
            }
        }
        K::LocalAs => {
            // B under AS migration presents local-as 64499; whether the
            // real AS is also prepended is the VSB.
            let texts = vec![
                concat!(
                    "hostname MIG\nvendor B\nrouter-id 1\ninterface e0\n peer P\n",
                    "router bgp 100\n network 10.4.0.0/24\n",
                    " neighbor P remote-as 200\n neighbor P local-as 64499\n",
                )
                .to_string(),
                concat!(
                    "hostname P\nvendor A\nrouter-id 2\ninterface e0\n peer MIG\n",
                    "router bgp 200\n neighbor MIG remote-as 64499\n",
                )
                .to_string(),
            ];
            VsbScenario {
                kind,
                configs: cfgs(&texts),
                family: vec![pfx("10.4.0.0/24")],
                culprit: "MIG".into(),
                probe: None,
            }
        }
    }
}

/// All eight scenarios in Table 2 order.
pub fn all_scenarios() -> Vec<VsbScenario> {
    hoyan_device::VsbKind::ALL.iter().map(|k| scenario(*k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        let all = all_scenarios();
        assert_eq!(all.len(), 8);
        for s in &all {
            assert!(!s.configs.is_empty());
            assert!(!s.family.is_empty());
            assert!(s.configs.iter().any(|c| c.hostname == s.culprit));
        }
    }

    #[test]
    fn culprits_are_non_vendor_a() {
        for s in all_scenarios() {
            let culprit = s.configs.iter().find(|c| c.hostname == s.culprit).unwrap();
            assert_ne!(culprit.vendor, hoyan_config::Vendor::A, "{:?}", s.kind);
        }
    }
}
