//! Seeded single-change perturbations of a generated WAN.
//!
//! The incremental pipeline (`hoyan diff` / `Verifier::reverify`) is
//! exercised against realistic operator edits: announce a new prefix at a
//! DC edge, retune a PE's pinning-static preference, change a MAN's
//! ISP-ingress local-pref, or retune a core link metric. Each
//! [`Perturbation`] carries a self-contained payload (hostnames + values),
//! so applying a plan is deterministic and independent of the RNG that
//! chose it — the property tests replay plans against both the fresh and
//! the incremental sweep.

use hoyan_config::{DeviceConfig, SetClause};
use hoyan_nettypes::{Ipv4Addr, Ipv4Prefix};
use hoyan_rt::rng::StdRng;

use crate::wan::Wan;

/// One operator edit, with everything needed to apply it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Perturbation {
    /// A DC edge announces one more prefix (creates a brand-new family).
    AddOrigin {
        /// DC edge hostname.
        dc: String,
        /// The newly announced prefix (outside the generator's ranges).
        prefix: Ipv4Prefix,
    },
    /// A PE's pinning static gets a new preference (origin-only change:
    /// dirties just the families overlapping the static's prefix).
    StaticPreference {
        /// PE hostname.
        pe: String,
        /// The pinned prefix.
        prefix: Ipv4Prefix,
        /// The new preference value.
        preference: u32,
    },
    /// A MAN's ISP-ingress route-map sets a different local-pref (policy
    /// change: dirties every family whose propagation touches the MAN).
    PolicyLocalPref {
        /// MAN hostname.
        man: String,
        /// The new local-pref.
        local_pref: u32,
    },
    /// A core link's IS-IS metric changes on both ends (IGP-affecting:
    /// dirties everything — iBGP session conditions ride on the IGP).
    LinkMetric {
        /// One end.
        a: String,
        /// The other end.
        b: String,
        /// The new metric.
        metric: u32,
    },
}

impl std::fmt::Display for Perturbation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Perturbation::AddOrigin { dc, prefix } => {
                write!(f, "add-origin {prefix} at {dc}")
            }
            Perturbation::StaticPreference {
                pe,
                prefix,
                preference,
            } => write!(f, "static-preference {prefix} -> {preference} at {pe}"),
            Perturbation::PolicyLocalPref { man, local_pref } => {
                write!(f, "policy-local-pref -> {local_pref} at {man}")
            }
            Perturbation::LinkMetric { a, b, metric } => {
                write!(f, "link-metric {a}-{b} -> {metric}")
            }
        }
    }
}

/// A deterministic list of perturbations for one WAN.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerturbationPlan {
    /// The edits, in application order.
    pub perturbations: Vec<Perturbation>,
}

impl PerturbationPlan {
    /// Draws `n` perturbations of mixed kinds, deterministic in `seed`.
    pub fn generate(wan: &Wan, seed: u64, n: usize) -> PerturbationPlan {
        Self::generate_kinds(wan, seed, n, &[0, 1, 2, 3])
    }

    /// Draws `n` perturbations that leave the IGP and all policies alone
    /// (origin edits only) — the workload where incremental re-verification
    /// shines.
    pub fn generate_local(wan: &Wan, seed: u64, n: usize) -> PerturbationPlan {
        Self::generate_kinds(wan, seed, n, &[0, 1])
    }

    fn generate_kinds(wan: &Wan, seed: u64, n: usize, kinds: &[u8]) -> PerturbationPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let pes: Vec<(Ipv4Prefix, String)> = wan
            .prefix_origin
            .iter()
            .filter(|(p, _, pe)| {
                // Only the pinned (first) prefix of each PE has a static.
                wan.config(pe)
                    .map(|c| c.static_routes.iter().any(|s| s.prefix == *p))
                    .unwrap_or(false)
            })
            .map(|(p, _, pe)| (*p, pe.clone()))
            .collect();
        let dcs: Vec<String> = wan
            .prefix_origin
            .iter()
            .map(|(_, dc, _)| dc.clone())
            .collect();
        let mans: Vec<String> = wan
            .hostnames()
            .into_iter()
            .filter(|h| h.starts_with("MAN"))
            .map(str::to_string)
            .collect();
        let core_pairs: Vec<(String, String)> = wan
            .hostnames()
            .into_iter()
            .filter(|h| h.starts_with("CR") && h.ends_with("x0"))
            .map(|h| (h.to_string(), h.replace("x0", "x1")))
            .collect();
        // AddOrigin prefixes are laid out in 10.240/12 (second octet
        // 240..=255, edit index spread over the third octet), which caps a
        // plan at 4096 edits before it would wrap back into the customer
        // range.
        assert!(n <= 4096, "perturbation plans cap at 4096 edits");
        let mut perturbations = Vec::with_capacity(n);
        for i in 0..n {
            // Each kind guards its own candidate list and skips the draw
            // when it is empty — an unavailable kind must never be silently
            // rewritten into another (a LinkMetric stand-in would break
            // `generate_local`'s leaves-the-IGP-alone contract).
            let p = match kinds[rng.gen_range(0..kinds.len())] {
                0 => {
                    if dcs.is_empty() {
                        continue;
                    }
                    let dc = dcs[rng.gen_range(0..dcs.len())].clone();
                    // 10.240/12 is outside the generator's customer
                    // (10.0/16-ish) and external (198.18/24) ranges, so each
                    // added origin is a fresh non-overlapping family.
                    let prefix = Ipv4Prefix::new(
                        Ipv4Addr::new(10, 240 + (i / 256) as u8, (i % 256) as u8, 0),
                        24,
                    );
                    Perturbation::AddOrigin { dc, prefix }
                }
                1 => {
                    if pes.is_empty() {
                        continue;
                    }
                    let (prefix, pe) = pes[rng.gen_range(0..pes.len())].clone();
                    // Generated statics all have preference 1; 2..=20 always
                    // differs yet still beats the PE's eBGP preference 255.
                    let preference: u32 = rng.gen_range(2..21);
                    Perturbation::StaticPreference {
                        pe,
                        prefix,
                        preference,
                    }
                }
                2 => {
                    if mans.is_empty() {
                        continue;
                    }
                    let man = mans[rng.gen_range(0..mans.len())].clone();
                    let local_pref: u32 = rng.gen_range(50..300);
                    Perturbation::PolicyLocalPref { man, local_pref }
                }
                _ => {
                    if core_pairs.is_empty() {
                        continue;
                    }
                    let (a, b) = core_pairs[rng.gen_range(0..core_pairs.len())].clone();
                    let metric: u32 = rng.gen_range(5..60);
                    Perturbation::LinkMetric { a, b, metric }
                }
            };
            perturbations.push(p);
        }
        PerturbationPlan { perturbations }
    }

    /// Applies the plan to a configuration snapshot, returning the edited
    /// copy. Unknown hostnames are ignored (the plan was drawn from the
    /// same WAN, so they only arise in hand-built tests).
    pub fn apply(&self, configs: &[DeviceConfig]) -> Vec<DeviceConfig> {
        let mut out: Vec<DeviceConfig> = configs.to_vec();
        let find = |out: &mut Vec<DeviceConfig>, name: &str| -> Option<usize> {
            out.iter().position(|c| c.hostname == name)
        };
        for p in &self.perturbations {
            match p {
                Perturbation::AddOrigin { dc, prefix } => {
                    if let Some(i) = find(&mut out, dc) {
                        if let Some(bgp) = out[i].bgp.as_mut() {
                            if !bgp.networks.contains(prefix) {
                                bgp.networks.push(*prefix);
                            }
                        }
                    }
                }
                Perturbation::StaticPreference {
                    pe,
                    prefix,
                    preference,
                } => {
                    if let Some(i) = find(&mut out, pe) {
                        for s in out[i].static_routes.iter_mut() {
                            if s.prefix == *prefix {
                                s.preference = *preference;
                            }
                        }
                    }
                }
                Perturbation::PolicyLocalPref { man, local_pref } => {
                    if let Some(i) = find(&mut out, man) {
                        if let Some(rm) = out[i].route_maps.get_mut("RM_ISP_IN") {
                            for e in rm.entries.iter_mut() {
                                for s in e.sets.iter_mut() {
                                    if let SetClause::LocalPref(v) = s {
                                        *v = *local_pref;
                                    }
                                }
                            }
                        }
                    }
                }
                Perturbation::LinkMetric { a, b, metric } => {
                    for (me, peer) in [(a, b), (b, a)] {
                        if let Some(i) = find(&mut out, me) {
                            for itf in out[i].interfaces.iter_mut() {
                                if itf.peer == *peer {
                                    itf.link_metric = *metric;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wan::WanSpec;

    #[test]
    fn deterministic_in_seed_and_applies() {
        let wan = WanSpec::tiny(11).build();
        let a = PerturbationPlan::generate(&wan, 3, 4);
        let b = PerturbationPlan::generate(&wan, 3, 4);
        assert_eq!(a, b);
        assert_eq!(a.perturbations.len(), 4);
        let edited = a.apply(&wan.configs);
        assert_eq!(edited.len(), wan.configs.len());
        // At least one device must actually differ.
        assert_ne!(edited, wan.configs);
    }

    #[test]
    fn local_plans_leave_igp_and_policy_alone() {
        let wan = WanSpec::tiny(11).build();
        let plan = PerturbationPlan::generate_local(&wan, 9, 6);
        for p in &plan.perturbations {
            assert!(matches!(
                p,
                Perturbation::AddOrigin { .. } | Perturbation::StaticPreference { .. }
            ));
        }
        let edited = plan.apply(&wan.configs);
        for (old, new) in wan.configs.iter().zip(&edited) {
            assert_eq!(old.interfaces, new.interfaces);
            assert_eq!(old.route_maps, new.route_maps);
        }
    }

    #[test]
    fn empty_candidate_kinds_skip_instead_of_falling_through() {
        // Strip every pinning static so kind 1 (StaticPreference) has no
        // candidates: those draws must be skipped, never rewritten into
        // another kind (a LinkMetric stand-in would violate generate_local's
        // leaves-the-IGP-alone contract).
        let mut wan = WanSpec::tiny(11).build();
        for c in wan.configs.iter_mut() {
            c.static_routes.clear();
        }
        let plan = PerturbationPlan::generate_local(&wan, 9, 40);
        assert!(!plan.perturbations.is_empty());
        let band: Ipv4Prefix = "10.240.0.0/12".parse().unwrap();
        let customer: Ipv4Prefix = "10.0.0.0/12".parse().unwrap();
        for p in &plan.perturbations {
            let Perturbation::AddOrigin { prefix, .. } = p else {
                panic!("empty-candidate draw leaked a non-local edit: {p}");
            };
            // Large plans must stay inside 10.240/12, clear of the
            // generator's customer range — no second-octet wraparound.
            assert!(band.contains(*prefix), "{prefix} escaped 10.240/12");
            assert!(!customer.contains(*prefix), "{prefix} collides with customer range");
        }
    }

    #[test]
    fn static_preference_hits_the_pinned_static() {
        let wan = WanSpec::tiny(2).build();
        let pe = wan.config("PE0x0").unwrap();
        let prefix = pe.static_routes[0].prefix;
        let plan = PerturbationPlan {
            perturbations: vec![Perturbation::StaticPreference {
                pe: "PE0x0".to_string(),
                prefix,
                preference: 7,
            }],
        };
        let edited = plan.apply(&wan.configs);
        let pe2 = edited.iter().find(|c| c.hostname == "PE0x0").unwrap();
        assert_eq!(pe2.static_routes[0].preference, 7);
    }
}
