#![warn(missing_docs)]

//! The formal-modeling substrate of Hoyan.
//!
//! The paper's "local formal modeling" attaches a *topology condition* — a
//! Boolean formula over link-aliveness variables — to every route update, RIB
//! rule, FIB rule and in-flight packet, and occasionally hands a small
//! formula to an SMT solver (the authors used Z3). Every formula Hoyan
//! builds is purely propositional, so this crate provides two from-scratch
//! engines that together cover all of Hoyan's queries:
//!
//! - [`bdd`]: a hash-consed reduced ordered BDD manager. Topology conditions
//!   are kept in canonical form, which gives the paper's three pruning
//!   optimizations for free: *impossible* conditions are the `false` node,
//!   *more-than-k-failure* conditions are detected with a weighted
//!   shortest-path walk ([`BddManager::min_failures_to_satisfy`]), and
//!   *simplification* is inherent in BDD reduction.
//! - [`sat`]: a CDCL SAT solver (watched literals, first-UIP learning, VSIDS
//!   activities, restarts) with model enumeration, used for route-update
//!   racing detection (ambiguity = more than one model, Appendix B) and by
//!   the Minesweeper-style monolithic baseline.
//! - [`formula`]: a small formula AST with a brute-force evaluator, bridging
//!   the two engines and serving as the test oracle.
//! - [`order`]: the static variable-ordering pass ([`BddOrdering`],
//!   [`VarOrder`]) that maps topology link ids to BDD variable indices.

pub mod bdd;
pub mod cnf;
pub mod formula;
pub mod order;
pub mod sat;

pub use bdd::{Bdd, BddBudget, BddManager, BddTallies, BudgetBreach};
pub use cnf::{Cnf, Lit, Var};
pub use formula::Formula;
pub use order::{BddOrdering, VarOrder};
pub use sat::{SatResult, Solver};
