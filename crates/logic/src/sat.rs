//! A CDCL SAT solver: two-literal watching, first-UIP clause learning,
//! VSIDS-style activities and Luby restarts.
//!
//! This is the "small-scale SMT" engine of the reproduction: all of Hoyan's
//! solver queries are propositional (link-aliveness Booleans and
//! route-selection indicator Booleans), so a SAT solver with model
//! enumeration covers them. Route-update racing detection (Appendix B)
//! literally asks "does this formula have more than one solution?", which is
//! [`Solver::count_models`] with a limit of 2.

use crate::cnf::{Cnf, Lit, Var};

/// Outcome of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model (`model[v]` = value of variable `v`).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<Vec<bool>> {
        match self {
            SatResult::Sat(m) => Some(m.clone()),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is UNSAT.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
}

type ClauseRef = u32;

const NO_REASON: ClauseRef = u32::MAX;

fn lit_value(assign: &[i8], l: Lit) -> i8 {
    match assign[l.var() as usize] {
        -1 => -1,
        v => {
            if l.is_neg() {
                1 - v
            } else {
                v
            }
        }
    }
}

/// A CDCL solver instance. Build one per query with [`Solver::from_cnf`];
/// incremental clause addition between solves is supported via
/// [`Solver::add_clause`] (used by model enumeration).
pub struct Solver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// watches[lit.0] = clause indices currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<i8>, // -1 unassigned, 0 false, 1 true
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    unsat: bool,
    conflicts: u64,
    /// Statistics: total conflicts seen over the solver's lifetime.
    pub total_conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    solves: u64,
}

impl Drop for Solver {
    // Per-solver tallies are plain integers (the CDCL loop stays
    // atomic-free) and fold into the process-wide registry once, here.
    fn drop(&mut self) {
        hoyan_obs::metric!(counter "sat.solves").add(self.solves);
        hoyan_obs::metric!(counter "sat.conflicts").add(self.total_conflicts);
        hoyan_obs::metric!(counter "sat.decisions").add(self.decisions);
        hoyan_obs::metric!(counter "sat.propagations").add(self.propagations);
        hoyan_obs::metric!(counter "sat.restarts").add(self.restarts);
    }
}

impl Solver {
    /// Builds a solver over `cnf`'s clauses.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::with_vars(cnf.num_vars);
        for c in &cnf.clauses {
            s.add_clause(c.clone());
        }
        s
    }

    /// An empty solver with `num_vars` variables.
    pub fn with_vars(num_vars: u32) -> Self {
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); (num_vars as usize) * 2],
            assign: vec![-1; num_vars as usize],
            level: vec![0; num_vars as usize],
            reason: vec![NO_REASON; num_vars as usize],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars as usize],
            var_inc: 1.0,
            unsat: false,
            conflicts: 0,
            total_conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
            solves: 0,
        }
    }

    /// Grows the variable space so variables `0..n` all exist.
    pub fn reserve_vars(&mut self, n: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        while self.num_vars < n {
            self.num_vars += 1;
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.assign.push(-1);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.activity.push(0.0);
        }
    }

    fn value(&self, l: Lit) -> i8 {
        lit_value(&self.assign, l)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Must be called at decision level 0 (between solves).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.unsat {
            return;
        }
        // Simplify: drop duplicate and false-at-level-0 literals; detect
        // tautologies and satisfied clauses.
        lits.sort();
        lits.dedup();
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return; // l and !l: tautology
            }
            i += 1;
        }
        lits.retain(|l| self.value(*l) != 0);
        if lits.iter().any(|l| self.value(*l) == 1) {
            return;
        }
        match lits.len() {
            0 => {
                self.unsat = true;
            }
            1 => {
                self.enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as ClauseRef;
                self.watches[lits[0].0 as usize].push(idx);
                self.watches[lits[1].0 as usize].push(idx);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value(l), -1);
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() { 0 } else { 1 };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.0 as usize]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Ensure false_lit is at position 1. Borrow clause storage
                // and the assignment separately so we can read values while
                // rearranging literals.
                let assign = &self.assign;
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if lit_value(assign, first) == 1 {
                    i += 1;
                    continue; // already satisfied
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..lits.len() {
                    if lit_value(assign, lits[k]) != 0 {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.0 as usize].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == 0 {
                    // Conflict: restore remaining watches.
                    self.watches[false_lit.0 as usize] = ws;
                    return Some(cref);
                }
                self.enqueue(first, cref);
                i += 1;
            }
            self.watches[false_lit.0 as usize] = ws;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for asserting lit
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let cur_level = self.decision_level();

        loop {
            let start = if p.is_some() { 1 } else { 0 };
            let clause_lits: Vec<Lit> = self.clauses[confl as usize].lits[start..].to_vec();
            for q in clause_lits {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[p.expect("resolution always finds a trail literal").var() as usize];
            debug_assert_ne!(confl, NO_REASON);
            // p is lits[0] of its reason clause by construction.
        }
        learned[0] = p.expect("first-UIP resolution yields an asserting literal").negate();

        let backjump = if learned.len() == 1 {
            0
        } else {
            // Second-highest level in the clause; move that literal to slot 1.
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var() as usize] > self.level[learned[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            self.level[learned[1].var() as usize]
        };
        (learned, backjump)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self
                .trail_lim
                .pop()
                .expect("decision_level > level implies a level limit to pop");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail longer than its level limit");
                self.assign[l.var() as usize] = -1;
                self.reason[l.var() as usize] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        for v in 0..self.num_vars {
            if self.assign[v as usize] == -1 && self.activity[v as usize] > best_act {
                best = Some(v);
                best_act = self.activity[v as usize];
            }
        }
        // Phase saving would go here; default to false (links-down-last is
        // irrelevant since callers interpret models themselves).
        best.map(Lit::neg)
    }

    /// The Luby restart sequence (1 1 2 1 1 2 4 ...), 1-indexed.
    fn luby(mut i: u64) -> u64 {
        debug_assert!(i >= 1);
        loop {
            let k = 64 - i.leading_zeros() as u64; // 2^(k-1) <= i < 2^k
            if i == (1 << k) - 1 {
                return 1 << (k - 1);
            }
            i = i - (1 << (k - 1)) + 1;
        }
    }

    /// Decides satisfiability, returning a total model when SAT.
    pub fn solve(&mut self) -> SatResult {
        self.solves += 1;
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_count = 1u64;
        let mut conflict_budget = 64 * Self::luby(restart_count);
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                self.total_conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learned, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                self.var_inc *= 1.0 / 0.95;
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    self.enqueue(assert_lit, NO_REASON);
                } else {
                    let idx = self.clauses.len() as ClauseRef;
                    self.watches[learned[0].0 as usize].push(idx);
                    self.watches[learned[1].0 as usize].push(idx);
                    self.clauses.push(Clause { lits: learned });
                    self.enqueue(assert_lit, idx);
                }
                if self.conflicts >= conflict_budget {
                    self.conflicts = 0;
                    self.restarts += 1;
                    restart_count += 1;
                    conflict_budget = 64 * Self::luby(restart_count);
                    self.cancel_until(0);
                }
            } else if let Some(decision) = self.decide() {
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, NO_REASON);
            } else {
                // All variables assigned: SAT.
                let model: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
                self.cancel_until(0);
                return SatResult::Sat(model);
            }
        }
    }

    /// Counts models projected onto `vars`, up to `limit`. Each discovered
    /// model is blocked with a clause over `vars` and the solver re-runs.
    ///
    /// Racing detection calls this with the route-selection indicator
    /// variables and `limit = 2`: two or more projected models mean the
    /// configuration converges differently under different arrival orders.
    pub fn count_models(&mut self, vars: &[Var], limit: usize) -> Vec<Vec<bool>> {
        if let Some(&max) = vars.iter().max() {
            self.reserve_vars(max + 1);
        }
        let mut found = Vec::new();
        while found.len() < limit {
            match self.solve() {
                SatResult::Unsat => break,
                SatResult::Sat(model) => {
                    let projected: Vec<bool> = vars.iter().map(|&v| model[v as usize]).collect();
                    // Block this projection.
                    let blocking: Vec<Lit> = vars
                        .iter()
                        .map(|&v| {
                            if model[v as usize] {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    found.push(projected);
                    if blocking.is_empty() {
                        break; // single possible projection
                    }
                    self.add_clause(blocking);
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::formula::Formula;

    fn lit(v: i32) -> Lit {
        if v < 0 {
            Lit::neg((-v - 1) as u32)
        } else {
            Lit::pos((v - 1) as u32)
        }
    }

    fn solver_with(clauses: &[&[i32]], nvars: u32) -> Solver {
        let mut s = Solver::with_vars(nvars);
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)).collect());
        }
        s
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = solver_with(&[&[1]], 1);
        assert_eq!(s.solve(), SatResult::Sat(vec![true]));
        let mut s = solver_with(&[&[1], &[-1]], 1);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::with_vars(1);
        s.add_clause(vec![]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautological_clause_is_dropped() {
        let mut s = Solver::with_vars(1);
        s.add_clause(vec![lit(1), lit(-1)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // x1, x1->x2, x2->x3 forces all true.
        let mut s = solver_with(&[&[1], &[-1, 2], &[-2, 3]], 3);
        assert_eq!(s.solve(), SatResult::Sat(vec![true, true, true]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars: 1..=6 as (i*2 + j + 1).
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![(i * 2 + 1) as i32, (i * 2 + 2) as i32]);
        }
        for j in 0..2i32 {
            for a in 0..3i32 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-(a * 2 + j + 1), -(b * 2 + j + 1)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs, 6);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn model_enumeration_counts_projections() {
        // x0 free, x1 = !x0: two models projected on (x0,x1).
        let f = Formula::iff(Formula::var(1), Formula::not(Formula::var(0)));
        let mut cnf = Cnf::new();
        cnf.assert_formula(&f);
        let mut s = Solver::from_cnf(&cnf);
        let models = s.count_models(&[0, 1], 10);
        assert_eq!(models.len(), 2);
        assert!(models.contains(&vec![true, false]));
        assert!(models.contains(&vec![false, true]));
    }

    #[test]
    fn model_enumeration_respects_limit() {
        let mut cnf = Cnf::new();
        for v in 0..4 {
            cnf.ensure_var(v);
        }
        let mut s = Solver::from_cnf(&cnf);
        let models = s.count_models(&[0, 1, 2, 3], 5);
        assert_eq!(models.len(), 5); // 16 exist, limit caps at 5
    }

    #[test]
    fn racing_formula_from_paper_has_two_solutions() {
        // Figure 1(c): I_DBA = I_DB, I_CA = !I_DBA, I_CAB = I_CA, I_DB = !I_CAB.
        // Vars: 0=I_DB, 1=I_DBA, 2=I_CA, 3=I_CAB.
        let f = Formula::And(vec![
            Formula::iff(Formula::var(1), Formula::var(0)),
            Formula::iff(Formula::var(2), Formula::not(Formula::var(1))),
            Formula::iff(Formula::var(3), Formula::var(2)),
            Formula::iff(Formula::var(0), Formula::not(Formula::var(3))),
        ]);
        let mut cnf = Cnf::new();
        cnf.assert_formula(&f);
        let mut s = Solver::from_cnf(&cnf);
        let models = s.count_models(&[0, 1, 2, 3], 3);
        assert_eq!(models.len(), 2, "ambiguous convergence has exactly two solutions");
        assert!(models.contains(&vec![false, false, true, true]));
        assert!(models.contains(&vec![true, true, false, false]));
    }
}
