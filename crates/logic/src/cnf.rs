//! Conjunctive normal form with a Tseitin translation from [`Formula`],
//! plus cardinality (`at-most-k`) constraints used by failure-bounded
//! queries in the Minesweeper-style baseline.

use crate::formula::Formula;

/// A propositional variable (0-based index).
pub type Var = u32;

/// A literal: a variable with a sign. Encoded as `2*var + sign` where
/// `sign == 1` means negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// A positive literal for `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// A negative literal for `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Whether the literal is satisfied by `value` of its variable.
    pub fn satisfied_by(self, value: bool) -> bool {
        value != self.is_neg()
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "!x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// A CNF instance under construction.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// Clauses; each is a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
    /// Number of variables allocated so far.
    pub num_vars: u32,
}

impl Cnf {
    /// An empty instance.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Ensures variables `0..=v` exist.
    pub fn ensure_var(&mut self, v: Var) {
        self.num_vars = self.num_vars.max(v + 1);
    }

    /// Adds a clause (empty clauses make the instance trivially UNSAT).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.ensure_var(l.var());
        }
        self.clauses.push(clause);
    }

    /// Adds unit clause `lit`.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Tseitin-encodes `f`, adding a definition for every connective, and
    /// returns the literal equivalent to `f`. Call [`Cnf::assert_lit`] on it
    /// to assert the formula.
    ///
    /// Formula variables map to CNF variables with identical indices.
    pub fn tseitin(&mut self, f: &Formula) -> Lit {
        if let Some(mv) = f.max_var() {
            self.ensure_var(mv);
        }
        self.tseitin_inner(f)
    }

    fn tseitin_inner(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::Const(c) => {
                let v = self.fresh_var();
                let lit = Lit::pos(v);
                self.add_unit(if *c { lit } else { lit.negate() });
                lit
            }
            Formula::Var(v) => Lit::pos(*v),
            Formula::Not(inner) => self.tseitin_inner(inner).negate(),
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|x| self.tseitin_inner(x)).collect();
                let out = Lit::pos(self.fresh_var());
                // out -> each lit
                for l in &lits {
                    self.add_clause([out.negate(), *l]);
                }
                // all lits -> out
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                clause.push(out);
                self.add_clause(clause);
                out
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|x| self.tseitin_inner(x)).collect();
                let out = Lit::pos(self.fresh_var());
                // each lit -> out
                for l in &lits {
                    self.add_clause([l.negate(), out]);
                }
                // out -> some lit
                let mut clause = lits;
                clause.push(out.negate());
                self.add_clause(clause);
                out
            }
            Formula::Imp(a, b) => {
                let fa = self.tseitin_inner(a);
                let fb = self.tseitin_inner(b);
                let out = Lit::pos(self.fresh_var());
                // out <-> (!fa | fb)
                self.add_clause([out.negate(), fa.negate(), fb]);
                self.add_clause([fa, out]);
                self.add_clause([fb.negate(), out]);
                out
            }
            Formula::Iff(a, b) => {
                let fa = self.tseitin_inner(a);
                let fb = self.tseitin_inner(b);
                let out = Lit::pos(self.fresh_var());
                self.add_clause([out.negate(), fa.negate(), fb]);
                self.add_clause([out.negate(), fa, fb.negate()]);
                self.add_clause([out, fa, fb]);
                self.add_clause([out, fa.negate(), fb.negate()]);
                out
            }
        }
    }

    /// Asserts that `lit` holds.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.add_unit(lit);
    }

    /// Asserts `f` via Tseitin translation, after constant folding.
    /// Asserting `Const(true)` adds nothing; `Const(false)` adds the empty
    /// clause (trivially UNSAT).
    pub fn assert_formula(&mut self, f: &Formula) {
        if let Some(mv) = f.max_var() {
            self.ensure_var(mv);
        }
        match f.fold_consts() {
            Formula::Const(true) => {}
            Formula::Const(false) => self.add_clause([]),
            folded => {
                let lit = self.tseitin(&folded);
                self.assert_lit(lit);
            }
        }
    }

    /// Adds a sequential-counter encoding of "at most `k` of `lits` are
    /// true". With `k = 0` it simply negates every literal.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        if k >= lits.len() {
            return;
        }
        if k == 0 {
            for l in lits {
                self.add_unit(l.negate());
            }
            return;
        }
        // Sinz 2005 sequential counter: registers s[i][j] = "at least j+1 of
        // the first i+1 literals are true".
        let n = lits.len();
        let mut s = vec![vec![0 as Var; k]; n];
        for (i, row) in s.iter_mut().enumerate().take(n) {
            for slot in row.iter_mut() {
                *slot = self.fresh_var();
            }
            let _ = i;
        }
        self.add_clause([lits[0].negate(), Lit::pos(s[0][0])]);
        for j in 1..k {
            self.add_unit(Lit::neg(s[0][j]));
        }
        for i in 1..n {
            self.add_clause([lits[i].negate(), Lit::pos(s[i][0])]);
            self.add_clause([Lit::neg(s[i - 1][0]), Lit::pos(s[i][0])]);
            for j in 1..k {
                self.add_clause([
                    lits[i].negate(),
                    Lit::neg(s[i - 1][j - 1]),
                    Lit::pos(s[i][j]),
                ]);
                self.add_clause([Lit::neg(s[i - 1][j]), Lit::pos(s[i][j])]);
            }
            self.add_clause([lits[i].negate(), Lit::neg(s[i - 1][k - 1])]);
        }
    }

    /// Total literal count across all clauses — the "formula size" metric
    /// used when comparing against the Minesweeper-style encoding (§8.2).
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatResult, Solver};

    fn solve(cnf: &Cnf) -> SatResult {
        Solver::from_cnf(cnf).solve()
    }

    #[test]
    fn lit_encoding() {
        let p = Lit::pos(5);
        let n = Lit::neg(5);
        assert_eq!(p.var(), 5);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert!(p.satisfied_by(true));
        assert!(n.satisfied_by(false));
        assert_eq!(p.to_string(), "x5");
        assert_eq!(n.to_string(), "!x5");
    }

    #[test]
    fn tseitin_preserves_satisfiability() {
        // (a | b) & (!a | !b): XOR, satisfiable.
        let f = Formula::and(
            Formula::or(Formula::var(0), Formula::var(1)),
            Formula::or(Formula::not(Formula::var(0)), Formula::not(Formula::var(1))),
        );
        let mut cnf = Cnf::new();
        cnf.assert_formula(&f);
        let res = solve(&cnf);
        let model = res.model().expect("should be SAT");
        assert!(f.eval(&model));
    }

    #[test]
    fn tseitin_unsat() {
        let f = Formula::and(Formula::var(0), Formula::not(Formula::var(0)));
        let mut cnf = Cnf::new();
        cnf.assert_formula(&f);
        assert!(solve(&cnf).is_unsat());
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut cnf = Cnf::new();
        let lits: Vec<Lit> = (0..4).map(Lit::pos).collect();
        for l in &lits {
            cnf.ensure_var(l.var());
        }
        cnf.at_most_k(&lits, 0);
        cnf.add_unit(Lit::pos(2));
        assert!(solve(&cnf).is_unsat());
    }

    #[test]
    fn at_most_k_bounds_count() {
        // Force 3 of 5 true with an at-most-2 constraint: UNSAT.
        let mut cnf = Cnf::new();
        let lits: Vec<Lit> = (0..5).map(Lit::pos).collect();
        for l in &lits {
            cnf.ensure_var(l.var());
        }
        cnf.at_most_k(&lits, 2);
        cnf.add_unit(Lit::pos(0));
        cnf.add_unit(Lit::pos(1));
        cnf.add_unit(Lit::pos(2));
        assert!(solve(&cnf).is_unsat());

        // Exactly 2 true is fine.
        let mut cnf = Cnf::new();
        for l in &lits {
            cnf.ensure_var(l.var());
        }
        cnf.at_most_k(&lits, 2);
        cnf.add_unit(Lit::pos(0));
        cnf.add_unit(Lit::pos(1));
        let res = solve(&cnf);
        let model = res.model().expect("SAT");
        let true_count = (0..5).filter(|&v| model[v]).count();
        assert!(true_count <= 2);
    }

    #[test]
    fn at_most_k_noop_when_k_ge_n() {
        let mut cnf = Cnf::new();
        let lits: Vec<Lit> = (0..3).map(Lit::pos).collect();
        cnf.at_most_k(&lits, 3);
        assert!(cnf.clauses.is_empty());
    }
}
